//! The deterministic soak harness: a seeded multi-tenant overload
//! schedule with a mid-run fault plan, plus the acceptance gate CI
//! runs over it.
//!
//! The schedule (one protocol line per entry, service driven by
//! explicit `step` ops so arrival and service rates are part of the
//! seed) covers roughly 30 simulated seconds and exercises:
//!
//! - a well-behaved tenant (`alpha`) that must sail through with zero
//!   sheds, zero failures, zero expiries;
//! - a victim tenant (`bravo`) whose NF is crashed mid-run by an
//!   injected `rx`/`nf-crash` fault: its queue freezes with a request
//!   still held, its later submissions shed `SERVE-FROZEN`, and an
//!   explicit `reclaim` tears the faulted NF down, sheds the held
//!   queue, thaws, and lets it resume service;
//! - an abusive tenant (`flood`) with a tight quota whose bursts shed
//!   `SERVE-OVERLOADED` and `SERVE-RATE-LIMITED` and whose
//!   tight-deadline request expires in queue;
//! - a NIC-OS crash injected in front of a launch, absorbed by the
//!   retry policy without any tenant-visible failure;
//! - a mid-run `snapshot`, a final `verify` (Pass 4 must be clean) and
//!   `drain`.
//!
//! [`SoakReport::gate`] encodes the acceptance criteria; the CI soak
//! gate (`snicctl soak --gate`) fails the build if any of them drifts.

use snic_crypto::sha256::{sha256, to_hex};
use snic_faults::{render_serve_transcript, ServeEventKind};
use snic_verify::Finding;

use crate::admission::TenantStats;
use crate::daemon::{Daemon, DaemonConfig};
use crate::snapshot;

/// What happened to the victim tenant, read back off the transcript.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VictimOutcome {
    /// The victim's queue was frozen after the injected NF crash.
    pub frozen: bool,
    /// `reclaim` thawed it again.
    pub thawed: bool,
    /// Requests still held in the frozen queue when it was reclaimed.
    pub held_shed: u32,
    /// The victim was served successfully again after the thaw.
    pub served_after_thaw: bool,
}

/// Everything a soak run produced, plus the acceptance gate.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Every response line, in order.
    pub responses: Vec<String>,
    /// The rendered [`snic_faults::ServeRecord`] transcript.
    pub transcript: String,
    /// The daemon's final state fingerprint.
    pub state: String,
    /// Final per-tenant accounting, in round-robin order.
    pub tenants: Vec<(String, TenantStats)>,
    /// Pass 4 findings over the transcript (must be empty).
    pub findings: Vec<Finding>,
    /// Victim-tenant lifecycle, from the transcript.
    pub victim: VictimOutcome,
}

impl SoakReport {
    /// A fixed-width per-tenant summary table (goes into
    /// EXPERIMENTS.md and the golden snapshot).
    pub fn table(&self) -> String {
        let mut out =
            String::from("tenant   submitted admitted served failed shed expired reclaimed\n");
        for (name, s) in &self.tenants {
            out.push_str(&format!(
                "{name:<8} {:>9} {:>8} {:>6} {:>6} {:>4} {:>7} {:>9}\n",
                s.submitted, s.admitted, s.served, s.failed, s.shed, s.expired, s.reclaimed
            ));
        }
        out
    }

    /// SHA-256 over responses, transcript and state — the one-line
    /// identity the byte-stability golden pins down.
    pub fn digest(&self) -> String {
        let mut bytes = Vec::new();
        for r in &self.responses {
            bytes.extend_from_slice(r.as_bytes());
            bytes.push(b'\n');
        }
        bytes.extend_from_slice(self.transcript.as_bytes());
        bytes.extend_from_slice(self.state.as_bytes());
        to_hex(&sha256(&bytes))
    }

    fn stats(&self, tenant: &str) -> TenantStats {
        self.tenants
            .iter()
            .find(|(n, _)| n == tenant)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// The acceptance gate: blast-radius containment at the serving
    /// layer, backpressure engaged, Pass 4 clean, drain completed.
    pub fn gate(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        if !self.findings.is_empty() {
            problems.push(format!(
                "Pass 4 found {} violation(s): {:?}",
                self.findings.len(),
                self.findings
                    .iter()
                    .map(|f| f.kind.code())
                    .collect::<Vec<_>>()
            ));
        }
        let alpha = self.stats("alpha");
        if alpha.failed != 0 || alpha.shed != 0 || alpha.expired != 0 {
            problems.push(format!(
                "non-faulted tenant 'alpha' was disrupted: failed={} shed={} expired={}",
                alpha.failed, alpha.shed, alpha.expired
            ));
        }
        let flood = self.stats("flood");
        if flood.failed != 0 {
            problems.push(format!(
                "non-faulted tenant 'flood' saw {} hard failures (sheds are fine, \
                 failures are not)",
                flood.failed
            ));
        }
        if flood.shed == 0 {
            problems.push("backpressure never engaged: 'flood' was never shed".to_string());
        }
        if flood.expired == 0 {
            problems.push("deadline expiry never exercised for 'flood'".to_string());
        }
        if !self.victim.frozen {
            problems.push("victim 'bravo' was never frozen".to_string());
        }
        if !self.victim.thawed {
            problems.push("victim 'bravo' was never thawed by reclaim".to_string());
        }
        if self.victim.held_shed == 0 {
            problems.push("reclaim shed no held requests from the frozen queue".to_string());
        }
        if !self.victim.served_after_thaw {
            problems.push("victim 'bravo' was not served again after the thaw".to_string());
        }
        if !self
            .responses
            .iter()
            .any(|r| r.contains("\"op\":\"drain\",\"ok\":true"))
        {
            problems.push("drain never completed".to_string());
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("\n"))
        }
    }
}

/// splitmix64 — the workspace's standard cheap deterministic mixer.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const ROUNDS: u32 = 36;

/// The daemon configuration the soak runs under: service is driven
/// entirely by the schedule's explicit `step` ops.
pub fn soak_config(seed: u64) -> DaemonConfig {
    DaemonConfig {
        seed,
        auto_steps: 0,
        ..DaemonConfig::default()
    }
}

/// Generate the seeded soak schedule (~30 simulated seconds).
pub fn schedule(seed: u64) -> Vec<String> {
    let mut mix = Mix(seed);
    let mut id = 0u64;
    let mut next_id = || {
        id += 1;
        id
    };
    let mut lines: Vec<String> = Vec::new();
    let mut l = |s: String| lines.push(s);

    l(format!(
        r#"{{"op":"register","tenant":"alpha","id":{}}}"#,
        next_id()
    ));
    l(format!(
        r#"{{"op":"register","tenant":"bravo","id":{}}}"#,
        next_id()
    ));
    l(format!(
        r#"{{"op":"register","tenant":"flood","id":{},"queue_depth":2,"burst":4,"refill_ps":2000000}}"#,
        next_id()
    ));
    l(format!(
        r#"{{"op":"launch","tenant":"alpha","id":{},"name":"fw","mem":8,"port":80}}"#,
        next_id()
    ));
    l(format!(r#"{{"op":"step","id":{},"n":1}}"#, next_id()));
    l(format!(
        r#"{{"op":"launch","tenant":"bravo","id":{},"name":"ids","mem":8,"port":81}}"#,
        next_id()
    ));
    l(format!(r#"{{"op":"step","id":{},"n":1}}"#, next_id()));

    let mut bravo_port = 81u16;
    for round in 0..ROUNDS {
        l(format!(
            r#"{{"op":"advance","id":{},"us":850000}}"#,
            next_id()
        ));
        let mut steps = 3u32;

        // The well-behaved tenant: one modest request per round.
        match round {
            5 => l(format!(
                r#"{{"op":"attest","tenant":"alpha","id":{},"name":"fw"}}"#,
                next_id()
            )),
            7 | 16 => l(format!(
                r#"{{"op":"stats","tenant":"alpha","id":{},"name":"fw"}}"#,
                next_id()
            )),
            _ => match mix.pick(3) {
                0 => l(format!(
                    r#"{{"op":"send","tenant":"alpha","id":{},"count":{},"port":80,"deadline_us":30000000}}"#,
                    next_id(),
                    3 + mix.pick(5)
                )),
                1 => l(format!(
                    r#"{{"op":"poll","tenant":"alpha","id":{},"name":"fw"}}"#,
                    next_id()
                )),
                _ => l(format!(
                    r#"{{"op":"stats","tenant":"alpha","id":{},"name":"fw"}}"#,
                    next_id()
                )),
            },
        }

        // The victim tenant.
        match round {
            16 => {
                // Crash the next NF to receive a packet — bravo's, by
                // construction: alpha does no rx this round and the
                // flood's port matches no rule.
                l(format!(
                    r#"{{"op":"inject-fault","id":{},"site":"rx","kind":"nf-crash","after":1}}"#,
                    next_id()
                ));
                l(format!(
                    r#"{{"op":"send","tenant":"bravo","id":{},"count":1,"port":81}}"#,
                    next_id()
                ));
                // A second request that will still be queued when the
                // freeze lands — reclaim must shed it.
                l(format!(
                    r#"{{"op":"send","tenant":"bravo","id":{},"count":1,"port":81}}"#,
                    next_id()
                ));
            }
            23 => {
                l(format!(
                    r#"{{"op":"reclaim","tenant":"bravo","id":{}}}"#,
                    next_id()
                ));
            }
            24 => {
                bravo_port = 82;
                l(format!(
                    r#"{{"op":"launch","tenant":"bravo","id":{},"name":"ids2","mem":8,"port":82}}"#,
                    next_id()
                ));
                steps += 1;
            }
            _ => l(format!(
                r#"{{"op":"send","tenant":"bravo","id":{},"count":{},"port":{bravo_port}}}"#,
                next_id(),
                1 + mix.pick(4)
            )),
        }

        // The abusive tenant: every third round, a burst past its
        // depth and rate; once, a deadline too tight to survive the
        // next round's time advance.
        if round % 3 == 0 {
            for _ in 0..5 {
                l(format!(
                    r#"{{"op":"send","tenant":"flood","id":{},"count":1,"port":99}}"#,
                    next_id()
                ));
            }
            steps += 1;
        }
        if round == 13 {
            // Admitted now, expired by round 14's `advance`.
            l(format!(
                r#"{{"op":"send","tenant":"flood","id":{},"count":1,"port":99,"deadline_us":1}}"#,
                next_id()
            ));
            steps = 0;
        }

        // The management plane.
        match round {
            7 => {
                // A NIC-OS crash in front of alpha's second launch:
                // absorbed by the retry policy, invisible to tenants.
                l(format!(
                    r#"{{"op":"inject-fault","id":{},"site":"nicos","kind":"nic-os-crash","after":1}}"#,
                    next_id()
                ));
                l(format!(
                    r#"{{"op":"launch","tenant":"alpha","id":{},"name":"lb","mem":4}}"#,
                    next_id()
                ));
                steps += 1;
            }
            10 => {
                l(format!(
                    r#"{{"op":"teardown","tenant":"alpha","id":{},"name":"lb"}}"#,
                    next_id()
                ));
                steps += 1;
            }
            30 => l(format!(r#"{{"op":"snapshot","id":{}}}"#, next_id())),
            _ => {}
        }

        if steps > 0 {
            l(format!(r#"{{"op":"step","id":{},"n":{steps}}}"#, next_id()));
        }
    }

    l(format!(r#"{{"op":"health","id":{}}}"#, next_id()));
    l(format!(r#"{{"op":"verify","id":{}}}"#, next_id()));
    l(format!(
        r#"{{"op":"telemetry-summary","id":{}}}"#,
        next_id()
    ));
    l(format!(r#"{{"op":"drain","id":{}}}"#, next_id()));
    lines
}

fn report_of(seed: u64, daemon: &Daemon, responses: Vec<String>) -> SoakReport {
    let mut victim = VictimOutcome::default();
    let mut thaw_seq = None;
    for r in daemon.transcript() {
        if r.tenant != "bravo" {
            continue;
        }
        match &r.kind {
            ServeEventKind::Frozen { .. } => victim.frozen = true,
            ServeEventKind::Thawed => {
                victim.thawed = true;
                thaw_seq = Some(r.seq);
            }
            ServeEventKind::Reclaimed { shed } => victim.held_shed += shed,
            ServeEventKind::Served { ok: true, .. } if thaw_seq.is_some_and(|t| r.seq > t) => {
                victim.served_after_thaw = true;
            }
            _ => {}
        }
    }
    SoakReport {
        seed,
        transcript: render_serve_transcript(daemon.transcript()),
        state: daemon.state_fingerprint(),
        tenants: daemon
            .tenant_names()
            .iter()
            .map(|n| (n.clone(), daemon.tenant_stats(n).unwrap_or_default()))
            .collect(),
        findings: daemon.lint(),
        victim,
        responses,
    }
}

/// Run the full soak schedule for `seed`.
pub fn run(seed: u64) -> SoakReport {
    let mut daemon = Daemon::new(soak_config(seed));
    let mut responses = Vec::new();
    for line in schedule(seed) {
        responses.extend(daemon.ingest(&line));
    }
    report_of(seed, &daemon, responses)
}

/// Run the soak with a snapshot/restart at line `split_at`: the first
/// daemon ingests the prefix and is discarded; a second daemon is
/// restored from its snapshot image and ingests the suffix. Returns
/// `(uninterrupted, restarted)` — the caller asserts the two reports
/// are byte-identical.
pub fn run_with_restart(seed: u64, split_at: usize) -> Result<(SoakReport, SoakReport), String> {
    let lines = schedule(seed);
    let split_at = split_at.min(lines.len());

    let uninterrupted = run(seed);

    let mut first = Daemon::new(soak_config(seed));
    let mut prefix_responses = Vec::new();
    for line in &lines[..split_at] {
        prefix_responses.extend(first.ingest(line));
    }
    let image = snapshot::render_image(&first);
    drop(first); // the "crash"

    let (mut second, replayed) = snapshot::restore(&image)?;
    if replayed != prefix_responses {
        return Err("replayed prefix responses diverge from the original".to_string());
    }
    let mut responses = replayed;
    for line in &lines[split_at..] {
        responses.extend(second.ingest(line));
    }
    Ok((uninterrupted, report_of(seed, &second, responses)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        assert_eq!(schedule(7), schedule(7));
        assert_ne!(schedule(7), schedule(8));
    }

    #[test]
    fn soak_passes_its_own_gate() {
        let report = run(0xBEEF);
        report.gate().expect("soak gate");
        assert_eq!(report.digest(), run(0xBEEF).digest(), "byte-stable");
    }

    #[test]
    fn restart_mid_soak_is_byte_identical() {
        let n = schedule(0xBEEF).len();
        let (a, b) = run_with_restart(0xBEEF, n / 2).expect("restart");
        assert_eq!(a.responses, b.responses);
        assert_eq!(a.transcript, b.transcript);
        assert_eq!(a.state, b.state);
        b.gate().expect("restarted run passes the gate too");
    }
}
