//! The resident daemon: a [`Daemon`] owns one [`SmartNic`] and serves
//! the line protocol of [`crate::protocol`].
//!
//! # Determinism contract
//!
//! Every observable output — response lines, the [`ServeRecord`]
//! transcript, device state — is a pure function of the
//! [`DaemonConfig`] and the sequence of ingested lines. The daemon
//! consults no wall clock and no OS entropy: time is the device's
//! simulated clock (one [`DaemonConfig::tick_ps`] per ingested line,
//! plus whatever operations cost), randomness is seeded from
//! [`DaemonConfig::seed`]. This is what makes snapshots cheap: a
//! snapshot is just the config plus the ingested line history, and a
//! restore is a replay (see [`crate::snapshot`]).
//!
//! # Serving model
//!
//! Tenant ops (`launch`, `teardown`, `attest`, `stats`, `send`,
//! `poll`) pass admission control — bounded per-tenant queue,
//! token-bucket rate limit — and wait in their tenant's queue; a
//! round-robin pump serves queues one request per step, so a bursty
//! tenant cannot starve the others. Management ops (`register`,
//! `health`, `telemetry-summary`, `verify`, `inject-fault`, `advance`,
//! `resume-scrubs`, `reclaim`, `snapshot`, `drain`) execute
//! immediately.
//!
//! When an executed op leaves one of a tenant's NFs in the `Faulted`
//! lifecycle state, the daemon freezes *that tenant's* queue — its
//! subsequent requests are rejected `SERVE-FROZEN`, its queued
//! requests wait — while every other tenant keeps being served
//! (§4.3/§4.6 blast-radius containment, lifted to the serving layer).
//! An explicit `reclaim` tears down the faulted NFs, sheds the frozen
//! queue, and thaws the tenant.

use std::collections::BTreeMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use snic_core::attest::{FunctionAttestation, Verifier};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_core::{NicOs, RetryError, RetryPolicy};
use snic_crypto::dh::DhParams;
use snic_crypto::keys::VendorCa;
use snic_crypto::sha256::{sha256, to_hex};
use snic_faults::{FaultKind, FaultPlan, FaultSite, ServeEventKind, ServeRecord};
use snic_pktio::rules::{RuleMatch, SwitchRule};
use snic_telemetry::{metrics, Json, Recorder, TelemetrySink};
use snic_types::packet::PacketBuilder;
use snic_types::{ByteSize, CoreId, NfId, NfState, Picos, Protocol};
use snic_verify::Finding;

use crate::admission::{Pending, QueuedOp, TenantQuota, TenantState};
use crate::protocol::{accept, codes, esc, parse_request, reject, Request};

/// Daemon configuration. Rendered canonically into snapshot images;
/// two daemons with equal configs and equal input histories are
/// byte-identical in every observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonConfig {
    /// Master seed: NIC config seed, vendor CA keys, retry jitter,
    /// attestation nonces all derive from it.
    pub seed: u64,
    /// Device personality.
    pub mode: NicMode,
    /// Simulated picoseconds added per ingested line.
    pub tick_ps: u64,
    /// Service-pump steps run after each ingested line.
    pub auto_steps: u32,
    /// Default relative deadline (µs) applied to queued requests that
    /// carry none; `0` means no default deadline.
    pub default_deadline_us: u64,
    /// Default per-tenant admission limits (override per tenant with
    /// the `register` op).
    pub quota: TenantQuota,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            seed: 0xD5EED,
            mode: NicMode::Snic,
            tick_ps: 1_000_000, // 1 µs per line
            auto_steps: 2,
            default_deadline_us: 0,
            quota: TenantQuota::default(),
        }
    }
}

impl DaemonConfig {
    /// Canonical one-line JSON form (the snapshot header).
    pub fn render(&self) -> String {
        let mode = match self.mode {
            NicMode::Snic => "snic",
            NicMode::Commodity => "commodity",
        };
        format!(
            "{{\"seed\":{},\"mode\":\"{mode}\",\"tick_ps\":{},\"auto_steps\":{},\
             \"default_deadline_us\":{},\"quota\":{{\"queue_depth\":{},\"max_live_nfs\":{},\
             \"burst\":{},\"refill_ps\":{}}}}}",
            self.seed,
            self.tick_ps,
            self.auto_steps,
            self.default_deadline_us,
            self.quota.queue_depth,
            self.quota.max_live_nfs,
            self.quota.burst,
            self.quota.refill_ps,
        )
    }

    /// Parse the canonical form back. Inverse of [`DaemonConfig::render`].
    pub fn parse(text: &str) -> Result<DaemonConfig, String> {
        let j = snic_telemetry::parse_json(text).map_err(|e| e.to_string())?;
        let num = |j: &Json, k: &str| -> Result<u64, String> {
            j.get(k)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("config: missing '{k}'"))
        };
        let mode = match j.get("mode").and_then(Json::as_str) {
            Some("snic") => NicMode::Snic,
            Some("commodity") => NicMode::Commodity,
            other => return Err(format!("config: bad mode {other:?}")),
        };
        let q = j.get("quota").ok_or("config: missing 'quota'")?;
        Ok(DaemonConfig {
            seed: num(&j, "seed")?,
            mode,
            tick_ps: num(&j, "tick_ps")?,
            auto_steps: num(&j, "auto_steps")? as u32,
            default_deadline_us: num(&j, "default_deadline_us")?,
            quota: TenantQuota {
                queue_depth: num(q, "queue_depth")? as u32,
                max_live_nfs: num(q, "max_live_nfs")? as u32,
                burst: num(q, "burst")?,
                refill_ps: num(q, "refill_ps")?,
            },
        })
    }
}

/// Deterministic per-request seed: splitmix64 over the daemon seed, an
/// FNV-1a hash of the tenant name, and the request id.
fn request_seed(seed: u64, tenant: &str, id: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in tenant.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = seed ^ h ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The resident serving daemon.
pub struct Daemon {
    cfg: DaemonConfig,
    vendor: VendorCa,
    nic: SmartNic,
    recorder: Arc<Recorder>,
    tenants: BTreeMap<String, TenantState>,
    /// Tenant names in first-contact order (round-robin schedule).
    order: Vec<String>,
    cursor: usize,
    /// Every ingested line, verbatim — the event source.
    history: Vec<String>,
    audit: Vec<ServeRecord>,
    seq: u64,
    draining: bool,
    served_total: u64,
    packet_seq: u32,
    snapshot_pending: bool,
    last_snapshot: Option<String>,
}

impl Daemon {
    /// Boot a daemon: fresh device, fresh vendor CA, empty tenant set.
    pub fn new(cfg: DaemonConfig) -> Daemon {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let vendor = VendorCa::new(&mut rng);
        let mut nic_cfg = NicConfig::small(cfg.mode);
        nic_cfg.seed = cfg.seed;
        let mut nic = SmartNic::new(nic_cfg, &vendor);
        let recorder = Arc::new(Recorder::new());
        nic.set_telemetry(recorder.clone());
        Daemon {
            cfg,
            vendor,
            nic,
            recorder,
            tenants: BTreeMap::new(),
            order: Vec::new(),
            cursor: 0,
            history: Vec::new(),
            audit: Vec::new(),
            seq: 0,
            draining: false,
            served_total: 0,
            packet_seq: 0,
            snapshot_pending: false,
            last_snapshot: None,
        }
    }

    /// The daemon's configuration.
    pub fn config(&self) -> &DaemonConfig {
        &self.cfg
    }

    /// The admission transcript so far.
    pub fn transcript(&self) -> &[ServeRecord] {
        &self.audit
    }

    /// The ingested line history (the event source a snapshot embeds).
    pub fn history(&self) -> &[String] {
        &self.history
    }

    /// Read access to the device, for tests and state digests.
    pub fn nic(&self) -> &SmartNic {
        &self.nic
    }

    /// Whether `tenant` is currently frozen (fault attributed, queue
    /// held until `reclaim`).
    pub fn is_frozen(&self, tenant: &str) -> bool {
        self.tenants.get(tenant).is_some_and(|t| t.frozen.is_some())
    }

    /// Per-tenant accounting, for gates and tables.
    pub fn tenant_stats(&self, tenant: &str) -> Option<crate::admission::TenantStats> {
        self.tenants.get(tenant).map(|t| t.stats)
    }

    /// Current queue depth of `tenant` (0 if unknown).
    pub fn queue_depth(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).map_or(0, |t| t.queue.len())
    }

    /// The configured queue bound of `tenant`, if registered.
    pub fn queue_bound(&self, tenant: &str) -> Option<u32> {
        self.tenants.get(tenant).map(|t| t.quota.queue_depth)
    }

    /// Tenant names in first-contact (round-robin) order.
    pub fn tenant_names(&self) -> Vec<String> {
        self.order.clone()
    }

    /// Run Pass 4 over the daemon's own transcript.
    pub fn lint(&self) -> Vec<Finding> {
        snic_verify::lint_serve_transcript(&self.audit)
    }

    /// The most recent snapshot image, rendered when a `snapshot` op
    /// was last ingested (`snicd --snapshot-out` writes this).
    pub fn last_snapshot(&self) -> Option<&str> {
        self.last_snapshot.as_deref()
    }

    /// A stable multi-line digest of everything that must survive a
    /// restart: simulated time, the full device resource snapshot
    /// (including pending scrub watermarks), and every tenant's
    /// admission state. Snapshot images embed its SHA-256; the
    /// differential restart tests compare it byte-for-byte.
    pub fn state_fingerprint(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!("now_ps {}\n", self.nic.now().0));
        s.push_str(&format!("resource {:?}\n", self.nic.resource_snapshot()));
        s.push_str(&format!(
            "daemon draining={} served_total={} seq={} cursor={} packet_seq={}\n",
            self.draining, self.served_total, self.seq, self.cursor, self.packet_seq
        ));
        for (name, t) in &self.tenants {
            s.push_str(&format!(
                "tenant {name} frozen={:?} stats={:?} nfs={:?} queue={:?} bucket={:?}\n",
                t.frozen, t.stats, t.nfs, t.queue, t.bucket
            ));
        }
        s
    }

    fn push_record(
        audit: &mut Vec<ServeRecord>,
        seq: &mut u64,
        at: Picos,
        tenant: &str,
        id: u64,
        kind: ServeEventKind,
    ) {
        audit.push(ServeRecord {
            seq: *seq,
            at,
            tenant: tenant.to_string(),
            id,
            kind,
        });
        *seq += 1;
    }

    fn record(&mut self, tenant: &str, id: u64, kind: ServeEventKind) {
        Self::push_record(
            &mut self.audit,
            &mut self.seq,
            self.nic.now(),
            tenant,
            id,
            kind,
        );
    }

    fn count(&self, metric: &'static str) {
        self.recorder.counter_add(0, metric, 1);
    }

    /// Feed one input line; returns every response line it produced
    /// (admission rejections plus whatever the auto pumps completed).
    /// Blank lines and `#` comments are recorded in history (so
    /// replays stay aligned) but otherwise ignored.
    pub fn ingest(&mut self, line: &str) -> Vec<String> {
        self.history.push(line.to_string());
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Vec::new();
        }
        self.nic.advance(Picos(self.cfg.tick_ps));
        let mut out = Vec::new();
        match parse_request(trimmed) {
            Err(e) => out.push(reject(0, "", "?", codes::BAD_REQUEST, &e)),
            Ok(req) => self.dispatch(req, &mut out),
        }
        for _ in 0..self.cfg.auto_steps {
            self.pump(&mut out);
        }
        if self.snapshot_pending {
            self.snapshot_pending = false;
            self.last_snapshot = Some(crate::snapshot::render_image(self));
        }
        out
    }

    /// Pump the scheduler until every unfrozen queue is empty.
    /// Returns how many requests were completed by this call.
    pub fn pump_dry(&mut self, out: &mut Vec<String>) -> u64 {
        let mut n = 0;
        while self.pump(out) {
            n += 1;
        }
        n
    }

    fn dispatch(&mut self, req: Request, out: &mut Vec<String>) {
        match req.op.as_str() {
            "register" => self.op_register(&req, out),
            "step" => self.op_step(&req, out),
            "health" => self.op_health(&req, out),
            "telemetry-summary" => self.op_telemetry_summary(&req, out),
            "verify" => self.op_verify(&req, out),
            "inject-fault" => self.op_inject_fault(&req, out),
            "advance" => self.op_advance(&req, out),
            "resume-scrubs" => self.op_resume_scrubs(&req, out),
            "reclaim" => self.op_reclaim(&req, out),
            "snapshot" => self.op_snapshot(&req, out),
            "drain" => self.op_drain(&req, out),
            "launch" | "teardown" | "attest" | "stats" | "send" | "poll" => self.admit(&req, out),
            other => out.push(reject(
                req.id,
                &req.tenant,
                other,
                codes::BAD_REQUEST,
                "unknown op",
            )),
        }
    }

    // --------------------------------------------------------------
    // Admission
    // --------------------------------------------------------------

    fn parse_queued(req: &Request) -> Result<QueuedOp, String> {
        let name = || -> Result<String, String> {
            Ok(req.str("name").ok_or("missing \"name\"")?.to_string())
        };
        match req.op.as_str() {
            "launch" => Ok(QueuedOp::Launch {
                name: name()?,
                core: req.num("core").map(|c| c as u16),
                mem_mib: req.num("mem").ok_or("missing \"mem\"")?,
                port: req.num("port").map(|p| p as u16),
            }),
            "teardown" => Ok(QueuedOp::Teardown { name: name()? }),
            "attest" => Ok(QueuedOp::Attest { name: name()? }),
            "stats" => Ok(QueuedOp::Stats { name: name()? }),
            "poll" => Ok(QueuedOp::Poll { name: name()? }),
            "send" => Ok(QueuedOp::Send {
                count: req.num("count").ok_or("missing \"count\"")? as u32,
                port: req.num("port").ok_or("missing \"port\"")? as u16,
            }),
            other => Err(format!("op '{other}' is not queueable")),
        }
    }

    fn admit(&mut self, req: &Request, out: &mut Vec<String>) {
        if req.tenant.is_empty() {
            out.push(reject(
                req.id,
                "",
                &req.op,
                codes::BAD_REQUEST,
                "tenant required",
            ));
            return;
        }
        let now = self.nic.now();
        let quota = self.cfg.quota;
        if !self.tenants.contains_key(&req.tenant) {
            self.tenants
                .insert(req.tenant.clone(), TenantState::new(quota, now));
            self.order.push(req.tenant.clone());
        }
        let op = match Self::parse_queued(req) {
            Ok(op) => op,
            Err(e) => {
                let t = self.tenants.get_mut(&req.tenant).expect("registered");
                t.stats.submitted += 1;
                t.stats.shed += 1;
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    now,
                    &req.tenant,
                    req.id,
                    ServeEventKind::Shed {
                        code: codes::BAD_REQUEST,
                    },
                );
                self.count(metrics::SERVE_SHED);
                out.push(reject(req.id, &req.tenant, &req.op, codes::BAD_REQUEST, &e));
                return;
            }
        };
        let draining = self.draining;
        let t = self.tenants.get_mut(&req.tenant).expect("registered");
        t.stats.submitted += 1;
        let verdict: Result<(), (&'static str, String)> = if draining {
            Err((codes::DRAINING, "daemon is draining".to_string()))
        } else if let Some(reason) = &t.frozen {
            Err((codes::FROZEN, format!("tenant frozen: {reason}")))
        } else if !t.bucket.try_take(&t.quota, now) {
            Err((
                codes::RATE_LIMITED,
                format!("token bucket empty (burst {})", t.quota.burst),
            ))
        } else if t.queue.len() >= t.quota.queue_depth as usize {
            Err((
                codes::OVERLOADED,
                format!("queue full at depth {}", t.quota.queue_depth),
            ))
        } else {
            Ok(())
        };
        match verdict {
            Err((code, error)) => {
                t.stats.shed += 1;
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    now,
                    &req.tenant,
                    req.id,
                    ServeEventKind::Shed { code },
                );
                self.count(metrics::SERVE_SHED);
                out.push(reject(req.id, &req.tenant, &req.op, code, &error));
            }
            Ok(()) => {
                let deadline = req
                    .num("deadline_us")
                    .or(match self.cfg.default_deadline_us {
                        0 => None,
                        us => Some(us),
                    })
                    .map(|us| Picos(now.0 + us * 1_000_000));
                let tag = op.tag();
                t.queue.push_back(Pending {
                    id: req.id,
                    op,
                    deadline,
                });
                t.stats.admitted += 1;
                let depth = t.queue.len() as u32;
                let bound = t.quota.queue_depth;
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    now,
                    &req.tenant,
                    req.id,
                    ServeEventKind::Admitted {
                        op: tag,
                        depth,
                        bound,
                    },
                );
                self.count(metrics::SERVE_ADMITTED);
                self.recorder
                    .record(0, metrics::SERVE_QUEUE_DEPTH, u64::from(depth));
            }
        }
    }

    // --------------------------------------------------------------
    // Service pump
    // --------------------------------------------------------------

    /// Serve at most one queued request, round-robin across unfrozen
    /// tenants. Returns whether anything was served.
    fn pump(&mut self, out: &mut Vec<String>) -> bool {
        let n = self.order.len();
        if n == 0 {
            return false;
        }
        for k in 0..n {
            let idx = (self.cursor + k) % n;
            let name = &self.order[idx];
            let ready = self
                .tenants
                .get(name)
                .is_some_and(|t| t.frozen.is_none() && !t.queue.is_empty());
            if !ready {
                continue;
            }
            let name = name.clone();
            self.cursor = (idx + 1) % n;
            let pending = self
                .tenants
                .get_mut(&name)
                .expect("in order")
                .queue
                .pop_front()
                .expect("checked non-empty");
            self.execute(&name, pending, out);
            return true;
        }
        false
    }

    fn execute(&mut self, tenant: &str, p: Pending, out: &mut Vec<String>) {
        let now = self.nic.now();
        if let Some(d) = p.deadline {
            if now > d {
                let t = self.tenants.get_mut(tenant).expect("serving");
                t.stats.expired += 1;
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    now,
                    tenant,
                    p.id,
                    ServeEventKind::Expired,
                );
                self.count(metrics::SERVE_EXPIRED);
                out.push(reject(
                    p.id,
                    tenant,
                    p.op.tag(),
                    codes::EXPIRED,
                    &format!("deadline {}ps passed while queued", d.0),
                ));
                return;
            }
        }
        let tag = p.op.tag();
        let result = match p.op {
            QueuedOp::Launch {
                name,
                core,
                mem_mib,
                port,
            } => self.exec_launch(tenant, p.id, &name, core, mem_mib, port, p.deadline),
            QueuedOp::Teardown { name } => self.exec_teardown(tenant, &name),
            QueuedOp::Attest { name } => self.exec_attest(tenant, p.id, &name),
            QueuedOp::Stats { name } => self.exec_stats(tenant, &name),
            QueuedOp::Send { count, port } => self.exec_send(count, port),
            QueuedOp::Poll { name } => self.exec_poll(tenant, &name),
        };
        self.served_total += 1;
        let t = self.tenants.get_mut(tenant).expect("serving");
        t.stats.served += 1;
        match result {
            Ok(extras) => {
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    self.nic.now(),
                    tenant,
                    p.id,
                    ServeEventKind::Served {
                        ok: true,
                        code: None,
                    },
                );
                self.count(metrics::SERVE_SERVED);
                out.push(accept(p.id, tenant, tag, &extras));
            }
            Err((code, error)) => {
                t.stats.failed += 1;
                Self::push_record(
                    &mut self.audit,
                    &mut self.seq,
                    self.nic.now(),
                    tenant,
                    p.id,
                    ServeEventKind::Served {
                        ok: false,
                        code: Some(code),
                    },
                );
                self.count(metrics::SERVE_SERVED);
                out.push(reject(p.id, tenant, tag, code, &error));
            }
        }
        self.scan_faults();
    }

    /// Attribute newly `Faulted` NFs to their owning tenants and freeze
    /// those tenants' queues. The serving layer's blast radius is
    /// exactly the faulted tenant: everyone else keeps being served.
    fn scan_faults(&mut self) {
        let mut newly: Vec<(String, String)> = Vec::new();
        for (tname, t) in &self.tenants {
            if t.frozen.is_some() {
                continue;
            }
            for (nf_name, nf) in &t.nfs {
                if matches!(self.nic.state_of(*nf), Ok(NfState::Faulted)) {
                    newly.push((tname.clone(), nf_name.clone()));
                    break;
                }
            }
        }
        for (tname, nf_name) in newly {
            let reason = format!("nf '{nf_name}' faulted");
            self.tenants.get_mut(&tname).expect("scanned above").frozen = Some(reason.clone());
            self.record(&tname, 0, ServeEventKind::Frozen { reason });
            self.count(metrics::SERVE_FROZEN);
        }
    }

    // --------------------------------------------------------------
    // Queued-op execution
    // --------------------------------------------------------------

    fn lookup(&self, tenant: &str, name: &str) -> Result<NfId, (&'static str, String)> {
        self.tenants
            .get(tenant)
            .and_then(|t| t.nfs.get(name).copied())
            .ok_or_else(|| {
                (
                    codes::UNKNOWN_NF,
                    format!("tenant '{tenant}' has no NF '{name}'"),
                )
            })
    }

    fn free_core(&self) -> Option<u16> {
        self.nic
            .resource_snapshot()
            .core_owner
            .iter()
            .position(Option::is_none)
            .map(|i| i as u16)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_launch(
        &mut self,
        tenant: &str,
        id: u64,
        name: &str,
        core: Option<u16>,
        mem_mib: u64,
        port: Option<u16>,
        deadline: Option<Picos>,
    ) -> ExecResult {
        let t = self.tenants.get(tenant).expect("serving");
        if t.nfs.len() >= t.quota.max_live_nfs as usize {
            return Err((
                codes::QUOTA,
                format!("live-NF quota {} reached", t.quota.max_live_nfs),
            ));
        }
        if t.nfs.contains_key(name) {
            return Err((
                codes::BAD_REQUEST,
                format!("NF '{name}' already exists for tenant '{tenant}'"),
            ));
        }
        let core = match core.or_else(|| self.free_core()) {
            Some(c) => c,
            None => return Err((codes::FAULT, "no free core".to_string())),
        };
        let mut request = LaunchRequest::minimal(
            CoreId(core),
            ByteSize::mib(mem_mib),
            NfImage {
                code: format!("{tenant}/{name}").into_bytes(),
                config: vec![],
            },
        );
        if let Some(p) = port {
            request.rules.push(SwitchRule {
                dst_port: RuleMatch::Exact(p),
                priority: 10,
                ..SwitchRule::any(NfId(0))
            });
        }
        let before = self.nic.resource_snapshot();
        let policy = RetryPolicy::jittered(request_seed(self.cfg.seed, tenant, id));
        match NicOs::new(&mut self.nic).nf_create_with_deadline(request, policy, deadline) {
            Ok(receipt) => {
                self.tenants
                    .get_mut(tenant)
                    .expect("serving")
                    .nfs
                    .insert(name.to_string(), receipt.nf_id);
                Ok(vec![
                    ("nf", receipt.nf_id.0.to_string()),
                    ("latency_ps", receipt.latency.total().0.to_string()),
                ])
            }
            Err(RetryError::DeadlineExceeded { attempts, deadline }) => {
                debug_assert_eq!(
                    before,
                    self.nic.resource_snapshot(),
                    "cancelled launch must leave no partial effects"
                );
                Err((
                    codes::EXPIRED,
                    format!(
                        "launch cancelled after {attempts} attempts: next backoff crosses \
                         deadline {}ps",
                        deadline.0
                    ),
                ))
            }
            Err(RetryError::Exhausted { attempts, last }) => {
                debug_assert_eq!(
                    before,
                    self.nic.resource_snapshot(),
                    "failed launch must leave no partial effects"
                );
                Err((
                    codes::RETRIES_EXHAUSTED,
                    format!("gave up after {attempts} attempts: {last}"),
                ))
            }
            Err(RetryError::Fatal(e)) => Err((codes::FAULT, e.to_string())),
        }
    }

    fn exec_teardown(&mut self, tenant: &str, name: &str) -> ExecResult {
        let nf = self.lookup(tenant, name)?;
        match self.nic.nf_teardown(nf) {
            Ok(receipt) => {
                self.tenants
                    .get_mut(tenant)
                    .expect("serving")
                    .nfs
                    .remove(name);
                Ok(vec![("scrub_ps", receipt.latency.scrub.0.to_string())])
            }
            Err(snic_types::SnicError::PowerLoss) => {
                // The scrub was interrupted: its watermark ticket
                // survives on the device; the region stays quarantined
                // until `resume-scrubs`. Power comes back immediately
                // (the daemon is the operator) and the NF is gone.
                self.nic.restore_power();
                self.tenants
                    .get_mut(tenant)
                    .expect("serving")
                    .nfs
                    .remove(name);
                Err((
                    codes::FAULT,
                    "power lost mid-scrub; region pending with watermark".to_string(),
                ))
            }
            Err(e) => Err((codes::FAULT, e.to_string())),
        }
    }

    fn exec_attest(&mut self, tenant: &str, id: u64, name: &str) -> ExecResult {
        let nf = self.lookup(tenant, name)?;
        let measurement = self
            .nic
            .measurement_of(nf)
            .map_err(|e| (codes::FAULT, e.to_string()))?;
        let seed = request_seed(self.cfg.seed, tenant, id);
        let params = DhParams::tiny_test_group();
        let mut verifier = Verifier::hello(&mut StdRng::seed_from_u64(seed ^ 0xA77E57));
        let nonce = verifier.nonce;
        let vendor_pub = self.vendor.public().clone();
        let f = FunctionAttestation::respond(
            &mut StdRng::seed_from_u64(seed ^ 0xF0),
            &mut self.nic,
            nf,
            &params,
            nonce,
        )
        .map_err(|e| (codes::FAULT, e.to_string()))?;
        let v_pub = verifier
            .accept(
                &mut StdRng::seed_from_u64(seed ^ 0xF1),
                &vendor_pub,
                &measurement,
                &f.quote,
            )
            .map_err(|e| (codes::FAULT, e.to_string()))?;
        let ok = f.session_key(&v_pub) == verifier.session_key(&f.quote.dh_public);
        Ok(vec![("verified", ok.to_string())])
    }

    fn exec_stats(&mut self, tenant: &str, name: &str) -> ExecResult {
        let nf = self.lookup(tenant, name)?;
        let r = self
            .nic
            .record_of(nf)
            .map_err(|e| (codes::FAULT, e.to_string()))?;
        Ok(vec![
            ("delivered", r.rx_delivered.to_string()),
            ("dropped", r.rx_dropped.to_string()),
            ("sent", r.tx_sent.to_string()),
        ])
    }

    fn exec_send(&mut self, count: u32, port: u16) -> ExecResult {
        let mut delivered = 0u32;
        for _ in 0..count {
            self.packet_seq += 1;
            let pkt = PacketBuilder::new(
                0x0a00_0000 + self.packet_seq,
                0xc633_0001,
                Protocol::Tcp,
                (1024 + self.packet_seq % 60_000) as u16,
                port,
            )
            .payload(b"snicd".to_vec())
            .build();
            match self.nic.rx_packet(&pkt) {
                Ok(Some(_)) => delivered += 1,
                Ok(None) => {}
                Err(e) => return Err((codes::FAULT, e.to_string())),
            }
        }
        Ok(vec![("delivered", delivered.to_string())])
    }

    fn exec_poll(&mut self, tenant: &str, name: &str) -> ExecResult {
        let nf = self.lookup(tenant, name)?;
        let mut n = 0u32;
        loop {
            match self.nic.poll_packet(nf) {
                Ok(Some(_)) => n += 1,
                Ok(None) => break,
                Err(e) => return Err((codes::FAULT, e.to_string())),
            }
        }
        Ok(vec![("polled", n.to_string())])
    }

    // --------------------------------------------------------------
    // Management ops
    // --------------------------------------------------------------

    fn op_register(&mut self, req: &Request, out: &mut Vec<String>) {
        if req.tenant.is_empty() {
            out.push(reject(
                req.id,
                "",
                "register",
                codes::BAD_REQUEST,
                "tenant required",
            ));
            return;
        }
        let now = self.nic.now();
        let mut quota = self.cfg.quota;
        if let Some(d) = req.num("queue_depth") {
            quota.queue_depth = d as u32;
        }
        if let Some(n) = req.num("max_live_nfs") {
            quota.max_live_nfs = n as u32;
        }
        if let Some(b) = req.num("burst") {
            quota.burst = b;
        }
        if let Some(r) = req.num("refill_ps") {
            quota.refill_ps = r;
        }
        match self.tenants.get_mut(&req.tenant) {
            Some(t) => t.quota = quota,
            None => {
                self.tenants
                    .insert(req.tenant.clone(), TenantState::new(quota, now));
                self.order.push(req.tenant.clone());
            }
        }
        out.push(accept(
            req.id,
            &req.tenant,
            "register",
            &[
                ("queue_depth", quota.queue_depth.to_string()),
                ("max_live_nfs", quota.max_live_nfs.to_string()),
                ("burst", quota.burst.to_string()),
                ("refill_ps", quota.refill_ps.to_string()),
            ],
        ));
    }

    /// `step {"n":k}`: run `k` service-pump steps explicitly. With
    /// `auto_steps: 0` in the config this is the only way queued work
    /// gets served, which lets schedules control the service rate —
    /// the soak harness and the admission property tests drive
    /// backpressure this way.
    fn op_step(&mut self, req: &Request, out: &mut Vec<String>) {
        let n = req.num("n").unwrap_or(1);
        let mut served = 0u64;
        for _ in 0..n {
            if self.pump(out) {
                served += 1;
            }
        }
        out.push(accept(
            req.id,
            "",
            "step",
            &[("served", served.to_string())],
        ));
    }

    fn op_health(&mut self, req: &Request, out: &mut Vec<String>) {
        let mut tenants = String::from("{");
        for (i, (name, t)) in self.tenants.iter().enumerate() {
            if i > 0 {
                tenants.push(',');
            }
            tenants.push_str(&format!(
                "\"{}\":{{\"frozen\":{},\"queued\":{},\"live\":{},\"submitted\":{},\
                 \"admitted\":{},\"served\":{},\"failed\":{},\"shed\":{},\"expired\":{},\
                 \"reclaimed\":{}}}",
                esc(name),
                t.frozen.is_some(),
                t.queue.len(),
                t.nfs.len(),
                t.stats.submitted,
                t.stats.admitted,
                t.stats.served,
                t.stats.failed,
                t.stats.shed,
                t.stats.expired,
                t.stats.reclaimed,
            ));
        }
        tenants.push('}');
        out.push(accept(
            req.id,
            "",
            "health",
            &[
                ("now_ps", self.nic.now().0.to_string()),
                ("draining", self.draining.to_string()),
                (
                    "pending_scrubs",
                    self.nic.pending_scrubs().len().to_string(),
                ),
                ("tenants", tenants),
            ],
        ));
    }

    fn op_telemetry_summary(&mut self, req: &Request, out: &mut Vec<String>) {
        let summary = self.recorder.summary();
        let mut counters = String::from("{");
        let mut first = true;
        for ((domain, metric), value) in &summary.counters {
            if *domain != 0 || !(metric.starts_with("serve.") || metric.starts_with("nicos.")) {
                continue;
            }
            if !first {
                counters.push(',');
            }
            first = false;
            counters.push_str(&format!("\"{}\":{value}", esc(metric)));
        }
        counters.push('}');
        out.push(accept(
            req.id,
            "",
            "telemetry-summary",
            &[("counters", counters)],
        ));
    }

    fn op_verify(&mut self, req: &Request, out: &mut Vec<String>) {
        let findings = self.lint();
        let codes_list = findings
            .iter()
            .map(|f| format!("\"{}\"", f.kind.code()))
            .collect::<Vec<_>>()
            .join(",");
        out.push(accept(
            req.id,
            "",
            "verify",
            &[
                ("findings", findings.len().to_string()),
                ("codes", format!("[{codes_list}]")),
            ],
        ));
    }

    fn op_inject_fault(&mut self, req: &Request, out: &mut Vec<String>) {
        let site = match req.str("site") {
            Some("launch") => FaultSite::Launch,
            Some("teardown") => FaultSite::Teardown,
            Some("scrub") => FaultSite::Scrub,
            Some("dma") => FaultSite::Dma,
            Some("rx") => FaultSite::Rx,
            Some("datapath") => FaultSite::DataPath,
            Some("accel") => FaultSite::Accel,
            Some("nicos") => FaultSite::NicOs,
            other => {
                out.push(reject(
                    req.id,
                    "",
                    "inject-fault",
                    codes::BAD_REQUEST,
                    &format!("bad site {other:?}"),
                ));
                return;
            }
        };
        let kind = match req.str("kind") {
            Some("nf-crash") => FaultKind::NfCrash,
            Some("accel-cluster-fault") => FaultKind::AccelClusterFault,
            Some("dma-bus-error") => FaultKind::DmaBusError,
            Some("dram-exhaustion") => FaultKind::DramExhaustion,
            Some("accel-pool-exhaustion") => FaultKind::AccelPoolExhaustion,
            Some("nic-os-crash") => FaultKind::NicOsCrash,
            Some("power-loss") => FaultKind::PowerLoss,
            other => {
                out.push(reject(
                    req.id,
                    "",
                    "inject-fault",
                    codes::BAD_REQUEST,
                    &format!("bad kind {other:?}"),
                ));
                return;
            }
        };
        // `after` counts from now: 1 = the very next event at `site`.
        let after = req.num("after").unwrap_or(1).max(1);
        let nth = self.nic.fault_site_count(site) + after;
        self.nic
            .arm_faults(FaultPlan::none().on_nth(site, nth, kind));
        out.push(accept(
            req.id,
            "",
            "inject-fault",
            &[("nth", nth.to_string())],
        ));
    }

    fn op_advance(&mut self, req: &Request, out: &mut Vec<String>) {
        let Some(us) = req.num("us") else {
            out.push(reject(
                req.id,
                "",
                "advance",
                codes::BAD_REQUEST,
                "missing \"us\"",
            ));
            return;
        };
        self.nic.advance(Picos(us * 1_000_000));
        out.push(accept(
            req.id,
            "",
            "advance",
            &[("now_ps", self.nic.now().0.to_string())],
        ));
    }

    fn op_resume_scrubs(&mut self, req: &Request, out: &mut Vec<String>) {
        let done = self.nic.resume_scrubs();
        out.push(accept(
            req.id,
            "",
            "resume-scrubs",
            &[
                ("completed", done.to_string()),
                ("pending", self.nic.pending_scrubs().len().to_string()),
            ],
        ));
    }

    fn op_reclaim(&mut self, req: &Request, out: &mut Vec<String>) {
        if req.tenant.is_empty() || !self.tenants.contains_key(&req.tenant) {
            out.push(reject(
                req.id,
                &req.tenant,
                "reclaim",
                codes::BAD_REQUEST,
                "unknown tenant",
            ));
            return;
        }
        // Tear down this tenant's faulted NFs (scrub + reclaim their
        // resources), then shed the held queue and thaw.
        let faulted: Vec<(String, NfId)> = self.tenants[&req.tenant]
            .nfs
            .iter()
            .filter(|(_, nf)| matches!(self.nic.state_of(**nf), Ok(NfState::Faulted)))
            .map(|(n, nf)| (n.clone(), *nf))
            .collect();
        let mut torn = 0u32;
        for (name, nf) in &faulted {
            match self.nic.nf_teardown(*nf) {
                Ok(_) => {}
                Err(snic_types::SnicError::PowerLoss) => self.nic.restore_power(),
                Err(_) => {}
            }
            self.tenants
                .get_mut(&req.tenant)
                .expect("checked")
                .nfs
                .remove(name);
            torn += 1;
        }
        let now = self.nic.now();
        let t = self.tenants.get_mut(&req.tenant).expect("checked");
        let shed = t.queue.len() as u32;
        let dropped: Vec<Pending> = t.queue.drain(..).collect();
        t.stats.reclaimed += u64::from(shed);
        for p in &dropped {
            out.push(reject(
                p.id,
                &req.tenant,
                p.op.tag(),
                codes::FROZEN,
                "queue reclaimed",
            ));
        }
        Self::push_record(
            &mut self.audit,
            &mut self.seq,
            now,
            &req.tenant,
            req.id,
            ServeEventKind::Reclaimed { shed },
        );
        let was_frozen = self
            .tenants
            .get_mut(&req.tenant)
            .expect("checked")
            .frozen
            .take();
        if was_frozen.is_some() {
            self.record(&req.tenant, req.id, ServeEventKind::Thawed);
        }
        out.push(accept(
            req.id,
            &req.tenant,
            "reclaim",
            &[
                ("torn_down", torn.to_string()),
                ("shed", shed.to_string()),
                ("thawed", was_frozen.is_some().to_string()),
            ],
        ));
    }

    fn op_snapshot(&mut self, req: &Request, out: &mut Vec<String>) {
        // The digest covers the config and the full input history
        // (including this very line): both are known before any effect
        // of the op, so a replayed `snapshot` line reproduces it
        // bit-for-bit.
        let mut pre = self.cfg.render();
        pre.push('\n');
        for l in &self.history {
            pre.push_str(l);
            pre.push('\n');
        }
        let digest = to_hex(&sha256(pre.as_bytes()));
        self.record(
            "",
            req.id,
            ServeEventKind::SnapshotTaken {
                digest: digest.clone(),
            },
        );
        self.snapshot_pending = true;
        out.push(accept(
            req.id,
            "",
            "snapshot",
            &[
                ("digest", format!("\"{digest}\"")),
                ("lines", self.history.len().to_string()),
            ],
        ));
    }

    fn op_drain(&mut self, req: &Request, out: &mut Vec<String>) {
        if self.draining {
            out.push(reject(
                req.id,
                "",
                "drain",
                codes::DRAINING,
                "already draining",
            ));
            return;
        }
        self.draining = true;
        self.record("", req.id, ServeEventKind::DrainStarted);
        self.pump_dry(out);
        self.record(
            "",
            req.id,
            ServeEventKind::DrainCompleted {
                served: self.served_total,
            },
        );
        let frozen_pending: usize = self
            .tenants
            .values()
            .filter(|t| t.frozen.is_some())
            .map(|t| t.queue.len())
            .sum();
        out.push(accept(
            req.id,
            "",
            "drain",
            &[
                ("served", self.served_total.to_string()),
                ("frozen_pending", frozen_pending.to_string()),
            ],
        ));
    }
}

/// Outcome of one queued-op execution: response extras, or a typed
/// rejection.
type ExecResult = Result<Vec<(&'static str, String)>, (&'static str, String)>;
