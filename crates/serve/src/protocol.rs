//! The `snicd` wire protocol: line-delimited JSON requests and
//! responses.
//!
//! One request per line, one response per completed request. Requests
//! are parsed with the workspace's own `snic_telemetry::parse_json`
//! (there is no serde); responses are hand-rendered in a canonical
//! member order (`id`, `tenant`, `op`, `ok`, then op-specific fields)
//! so transcripts are byte-stable and diffable.
//!
//! Every rejection carries a typed, stable `code` from [`codes`]; the
//! human-readable `error` text may evolve, the codes may not (CI and
//! the exit-code table in the README key off them).

use snic_telemetry::{parse_json, Json};

/// Stable rejection codes. These are API: tests, the soak gate, and
/// `snicctl serve` exit codes key off them.
pub mod codes {
    /// The tenant's bounded queue is full; the request was shed.
    pub const OVERLOADED: &str = "SERVE-OVERLOADED";
    /// The tenant's token bucket is empty; slow down.
    pub const RATE_LIMITED: &str = "SERVE-RATE-LIMITED";
    /// The tenant's queue is frozen after a fault attributed to it;
    /// `reclaim` thaws it.
    pub const FROZEN: &str = "SERVE-FROZEN";
    /// The request's deadline passed — either while queued (never
    /// executed) or mid-launch (cancelled between retries, with the
    /// device rolled back to its pre-call resource snapshot).
    pub const EXPIRED: &str = "SERVE-EXPIRED";
    /// The tenant is at its live-NF quota.
    pub const QUOTA: &str = "SERVE-QUOTA";
    /// Malformed request: bad JSON, unknown op, missing field.
    pub const BAD_REQUEST: &str = "SERVE-BAD-REQUEST";
    /// The daemon is draining and admits no new work.
    pub const DRAINING: &str = "SERVE-DRAINING";
    /// The device refused the operation (a `SnicError` that is neither
    /// transient nor a deadline); the `error` field carries it.
    pub const FAULT: &str = "SERVE-FAULT";
    /// Every retry attempt in the policy budget failed transiently.
    pub const RETRIES_EXHAUSTED: &str = "SERVE-RETRIES-EXHAUSTED";
    /// The named NF does not exist for this tenant.
    pub const UNKNOWN_NF: &str = "SERVE-UNKNOWN-NF";
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub struct Request {
    /// The operation name (`launch`, `send`, `drain`, ...).
    pub op: String,
    /// The requesting tenant; empty for daemon-wide management ops.
    pub tenant: String,
    /// Client-chosen correlation id, echoed in the response.
    pub id: u64,
    /// The full parsed body, for op-specific parameters.
    pub body: Json,
}

impl Request {
    /// An op-specific `u64` parameter.
    pub fn num(&self, key: &str) -> Option<u64> {
        self.body.get(key).and_then(Json::as_u64)
    }

    /// An op-specific string parameter.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.body.get(key).and_then(Json::as_str)
    }
}

/// Parse one request line. `Err` carries text for a
/// [`codes::BAD_REQUEST`] response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let body = parse_json(line).map_err(|e| e.to_string())?;
    let op = body
        .get("op")
        .and_then(Json::as_str)
        .ok_or("missing \"op\"")?
        .to_string();
    let tenant = body
        .get("tenant")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let id = body.get("id").and_then(Json::as_u64).unwrap_or(0);
    Ok(Request {
        op,
        tenant,
        id,
        body,
    })
}

/// Escape a string for inclusion in a JSON literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn head(id: u64, tenant: &str, op: &str) -> String {
    let mut s = format!("{{\"id\":{id}");
    if !tenant.is_empty() {
        s.push_str(&format!(",\"tenant\":\"{}\"", esc(tenant)));
    }
    s.push_str(&format!(",\"op\":\"{}\"", esc(op)));
    s
}

/// Render a success response. `extras` are `(key, raw JSON fragment)`
/// pairs appended in order — the caller is responsible for fragment
/// validity (use [`esc`] for strings).
pub fn accept(id: u64, tenant: &str, op: &str, extras: &[(&str, String)]) -> String {
    let mut s = head(id, tenant, op);
    s.push_str(",\"ok\":true");
    for (k, v) in extras {
        s.push_str(&format!(",\"{k}\":{v}"));
    }
    s.push('}');
    s
}

/// Render a typed rejection response.
pub fn reject(id: u64, tenant: &str, op: &str, code: &str, error: &str) -> String {
    let mut s = head(id, tenant, op);
    s.push_str(&format!(
        ",\"ok\":false,\"code\":\"{code}\",\"error\":\"{}\"}}",
        esc(error)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let r = parse_request(r#"{"op":"launch","tenant":"a","id":7,"mem":8,"name":"fw"}"#)
            .expect("parse");
        assert_eq!(r.op, "launch");
        assert_eq!(r.tenant, "a");
        assert_eq!(r.id, 7);
        assert_eq!(r.num("mem"), Some(8));
        assert_eq!(r.str("name"), Some("fw"));
        assert_eq!(r.num("missing"), None);
    }

    #[test]
    fn missing_op_is_an_error() {
        assert!(parse_request(r#"{"tenant":"a"}"#).is_err());
        assert!(parse_request("not json").is_err());
    }

    #[test]
    fn responses_are_canonical_and_parse_back() {
        let ok = accept(3, "a", "launch", &[("nf", "5".into())]);
        assert_eq!(
            ok,
            r#"{"id":3,"tenant":"a","op":"launch","ok":true,"nf":5}"#
        );
        let no = reject(4, "", "drain", codes::DRAINING, "already draining");
        assert_eq!(
            no,
            r#"{"id":4,"op":"drain","ok":false,"code":"SERVE-DRAINING","error":"already draining"}"#
        );
        for line in [&ok, &no] {
            parse_json(line).expect("responses must be valid JSON");
        }
    }

    #[test]
    fn escapes_are_applied() {
        let r = reject(1, "t\"x", "op", codes::FAULT, "line\nbreak\t\"q\"");
        let parsed = parse_json(&r).expect("valid");
        assert_eq!(parsed.get("tenant").and_then(Json::as_str), Some("t\"x"));
        assert_eq!(
            parsed.get("error").and_then(Json::as_str),
            Some("line\nbreak\t\"q\"")
        );
    }
}
