//! Crash-safe snapshot images: event-sourced, integrity-checked,
//! byte-stable.
//!
//! Because the daemon is a pure function of `(config, input lines)`
//! (see [`crate::daemon`]), a snapshot does not serialize the device —
//! it serializes the *cause*: the canonical config plus every ingested
//! line, in order. Restoring replays the lines through a fresh daemon
//! and then checks two SHA-256 digests recorded at snapshot time:
//!
//! - `transcript-sha256` over the rendered [`ServeRecord`] transcript,
//! - `state-sha256` over [`Daemon::state_fingerprint`] — simulated
//!   time, the full resource snapshot **including pending scrub
//!   watermarks**, and per-tenant admission state.
//!
//! A restore that replays to different digests fails loudly instead of
//! resuming from divergent state (a corrupted image, a config edit, a
//! non-deterministic regression — the differential tests exist to keep
//! that last set empty).
//!
//! # Format (version 1)
//!
//! ```text
//! # snicd snapshot v1
//! config <canonical one-line JSON>
//! lines <n>
//! <n raw input lines>
//! transcript-sha256 <64 hex chars>
//! state-sha256 <64 hex chars>
//! ```
//!
//! The version line is a hard gate: readers refuse images whose header
//! they do not know, so the format can evolve by bumping `v1` without
//! silent misparses.

use snic_crypto::sha256::{sha256, to_hex};
use snic_faults::render_serve_transcript;

use crate::daemon::{Daemon, DaemonConfig};

/// The version-1 header line.
pub const HEADER_V1: &str = "# snicd snapshot v1";

/// Digest of the daemon's serve transcript, as recorded in images.
pub fn transcript_digest(daemon: &Daemon) -> String {
    to_hex(&sha256(
        render_serve_transcript(daemon.transcript()).as_bytes(),
    ))
}

/// Digest of the daemon's state fingerprint, as recorded in images.
pub fn state_digest(daemon: &Daemon) -> String {
    to_hex(&sha256(daemon.state_fingerprint().as_bytes()))
}

/// Render a version-1 snapshot image of `daemon` as it stands.
pub fn render_image(daemon: &Daemon) -> String {
    let mut out = String::new();
    out.push_str(HEADER_V1);
    out.push('\n');
    out.push_str("config ");
    out.push_str(&daemon.config().render());
    out.push('\n');
    out.push_str(&format!("lines {}\n", daemon.history().len()));
    for line in daemon.history() {
        out.push_str(line);
        out.push('\n');
    }
    out.push_str(&format!(
        "transcript-sha256 {}\n",
        transcript_digest(daemon)
    ));
    out.push_str(&format!("state-sha256 {}\n", state_digest(daemon)));
    out
}

/// Restore a daemon from a snapshot image: parse, replay, verify.
///
/// Returns the restored daemon plus every response line the replay
/// produced — byte-identical to what the original daemon emitted for
/// the same prefix, which is exactly what the differential restart
/// tests assert.
pub fn restore(image: &str) -> Result<(Daemon, Vec<String>), String> {
    let mut lines = image.lines();
    match lines.next() {
        Some(h) if h == HEADER_V1 => {}
        Some(h) => return Err(format!("unknown snapshot header '{h}'")),
        None => return Err("empty snapshot image".to_string()),
    }
    let config_line = lines.next().ok_or("truncated image: missing config")?;
    let cfg_text = config_line
        .strip_prefix("config ")
        .ok_or("malformed config line")?;
    let cfg = DaemonConfig::parse(cfg_text)?;
    let count_line = lines.next().ok_or("truncated image: missing line count")?;
    let n: usize = count_line
        .strip_prefix("lines ")
        .and_then(|s| s.parse().ok())
        .ok_or("malformed lines count")?;
    let mut history = Vec::with_capacity(n);
    for i in 0..n {
        history.push(
            lines
                .next()
                .ok_or_else(|| format!("truncated image: {i} of {n} history lines"))?
                .to_string(),
        );
    }
    let want_transcript = lines
        .next()
        .and_then(|l| l.strip_prefix("transcript-sha256 "))
        .ok_or("truncated image: missing transcript digest")?
        .to_string();
    let want_state = lines
        .next()
        .and_then(|l| l.strip_prefix("state-sha256 "))
        .ok_or("truncated image: missing state digest")?
        .to_string();

    let mut daemon = Daemon::new(cfg);
    let mut replayed = Vec::new();
    for line in &history {
        replayed.extend(daemon.ingest(line));
    }
    let got_transcript = transcript_digest(&daemon);
    if got_transcript != want_transcript {
        return Err(format!(
            "transcript digest mismatch after replay: image {want_transcript}, \
             replay {got_transcript}"
        ));
    }
    let got_state = state_digest(&daemon);
    if got_state != want_state {
        return Err(format!(
            "state digest mismatch after replay: image {want_state}, replay {got_state}"
        ));
    }
    Ok((daemon, replayed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seeded_daemon() -> Daemon {
        let mut d = Daemon::new(DaemonConfig::default());
        for line in [
            r#"{"op":"launch","tenant":"a","id":1,"name":"fw","mem":8,"port":80}"#,
            r#"{"op":"send","tenant":"a","id":2,"count":5,"port":80}"#,
            r#"{"op":"stats","tenant":"a","id":3,"name":"fw"}"#,
        ] {
            d.ingest(line);
        }
        d
    }

    #[test]
    fn image_round_trips_and_verifies() {
        let d = seeded_daemon();
        let image = render_image(&d);
        assert!(image.starts_with(HEADER_V1));
        let (restored, _) = restore(&image).expect("restore");
        assert_eq!(restored.state_fingerprint(), d.state_fingerprint());
        assert_eq!(
            render_serve_transcript(restored.transcript()),
            render_serve_transcript(d.transcript())
        );
        // And the image of the restored daemon is byte-identical.
        assert_eq!(render_image(&restored), image);
    }

    #[test]
    fn replay_reproduces_responses() {
        let mut d = Daemon::new(DaemonConfig::default());
        let mut original = Vec::new();
        for line in [
            r#"{"op":"launch","tenant":"a","id":1,"name":"fw","mem":8}"#,
            r#"{"op":"bogus","tenant":"a","id":2}"#,
        ] {
            original.extend(d.ingest(line));
        }
        let (_, replayed) = restore(&render_image(&d)).expect("restore");
        assert_eq!(replayed, original);
    }

    #[test]
    fn corrupt_images_are_refused() {
        let d = seeded_daemon();
        let image = render_image(&d);
        assert!(restore("# snicd snapshot v9\n").is_err(), "unknown version");
        assert!(restore("").is_err(), "empty");
        // Tamper with one history line: the transcript digest must
        // catch the divergent replay.
        let tampered = image.replace("\"count\":5", "\"count\":6");
        assert_ne!(tampered, image);
        let err = match restore(&tampered) {
            Err(e) => e,
            Ok(_) => panic!("tampered image must fail"),
        };
        assert!(err.contains("digest mismatch"), "{err}");
        // Truncation is refused before any replay.
        let cut: String = image.lines().take(3).collect::<Vec<_>>().join("\n");
        assert!(restore(&cut).is_err());
    }
}
