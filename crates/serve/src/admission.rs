//! Per-tenant admission control: bounded queues, token-bucket rate
//! limits, live-NF quotas.
//!
//! Everything here is integer arithmetic over simulated time
//! ([`Picos`]) — no wall clock, no floats in state — so admission
//! decisions replay bit-identically from a request history.

use std::collections::{BTreeMap, VecDeque};

use snic_types::{NfId, Picos};

/// Per-tenant admission limits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Maximum queued (admitted, not yet served) requests. Admissions
    /// past this depth are shed with `SERVE-OVERLOADED`.
    pub queue_depth: u32,
    /// Maximum concurrently live NFs; launches past this fail with
    /// `SERVE-QUOTA` at execution time.
    pub max_live_nfs: u32,
    /// Token-bucket capacity (burst allowance).
    pub burst: u64,
    /// Simulated picoseconds to mint one token. `0` disables rate
    /// limiting.
    pub refill_ps: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota {
            queue_depth: 4,
            max_live_nfs: 2,
            burst: 6,
            refill_ps: 500_000, // 2 tokens per 1 µs tick
        }
    }
}

/// A deterministic token bucket over simulated time, with integer
/// remainder carry (no fractional tokens are ever lost or invented).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    tokens: u64,
    carry_ps: u64,
    last: Picos,
}

impl TokenBucket {
    /// A bucket born full at `now`.
    pub fn full(quota: &TenantQuota, now: Picos) -> TokenBucket {
        TokenBucket {
            tokens: quota.burst,
            carry_ps: 0,
            last: now,
        }
    }

    fn refill(&mut self, quota: &TenantQuota, now: Picos) {
        if quota.refill_ps == 0 {
            self.last = now;
            return;
        }
        let elapsed = now.0.saturating_sub(self.last.0) + self.carry_ps;
        let minted = elapsed / quota.refill_ps;
        self.tokens = (self.tokens + minted).min(quota.burst);
        // Remainder only carries while the bucket is filling; a full
        // bucket does not bank time.
        self.carry_ps = if self.tokens < quota.burst {
            elapsed % quota.refill_ps
        } else {
            0
        };
        self.last = now;
    }

    /// Take one token if available.
    pub fn try_take(&mut self, quota: &TenantQuota, now: Picos) -> bool {
        self.refill(quota, now);
        if self.tokens > 0 {
            self.tokens -= 1;
            true
        } else {
            false
        }
    }

    /// Tokens currently available (after refilling to `now`).
    pub fn available(&mut self, quota: &TenantQuota, now: Picos) -> u64 {
        self.refill(quota, now);
        self.tokens
    }
}

/// A queued, admitted request awaiting service.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Client correlation id.
    pub id: u64,
    /// The operation to execute.
    pub op: QueuedOp,
    /// Absolute simulated-time deadline; a request popped after this
    /// instant is expired, never executed.
    pub deadline: Option<Picos>,
}

/// The tenant-scoped operations that go through the queue. Management
/// ops (`health`, `snapshot`, `drain`, ...) execute immediately and
/// never appear here.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueuedOp {
    /// Launch an NF (named per tenant).
    Launch {
        /// Tenant-scoped NF name.
        name: String,
        /// Explicit core, or auto-assign.
        core: Option<u16>,
        /// Region size in MiB.
        mem_mib: u64,
        /// Optional switch-rule destination port.
        port: Option<u16>,
    },
    /// Tear an NF down (scrub + reclaim).
    Teardown {
        /// Tenant-scoped NF name.
        name: String,
    },
    /// Run the attestation protocol against an NF.
    Attest {
        /// Tenant-scoped NF name.
        name: String,
    },
    /// Read an NF's packet counters.
    Stats {
        /// Tenant-scoped NF name.
        name: String,
    },
    /// Push packets at a destination port through the switch.
    Send {
        /// Packet count.
        count: u32,
        /// Destination port.
        port: u16,
    },
    /// Poll an NF's delivered packets.
    Poll {
        /// Tenant-scoped NF name.
        name: String,
    },
}

impl QueuedOp {
    /// The op tag as it appears in the protocol and the serve
    /// transcript.
    pub fn tag(&self) -> &'static str {
        match self {
            QueuedOp::Launch { .. } => "launch",
            QueuedOp::Teardown { .. } => "teardown",
            QueuedOp::Attest { .. } => "attest",
            QueuedOp::Stats { .. } => "stats",
            QueuedOp::Send { .. } => "send",
            QueuedOp::Poll { .. } => "poll",
        }
    }
}

/// Per-tenant request accounting, reported by the `health` op. The
/// invariant `submitted == admitted + shed` and
/// `admitted == served + expired + reclaimed + queue.len()` is what
/// the admission property tests pin down.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Requests that reached admission.
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests rejected at admission (overload, rate, frozen, ...).
    pub shed: u64,
    /// Requests executed (ok or typed failure).
    pub served: u64,
    /// Requests whose deadline passed while queued.
    pub expired: u64,
    /// Queued requests dropped by a `reclaim`.
    pub reclaimed: u64,
    /// Served requests that failed with a typed code.
    pub failed: u64,
}

/// Everything the daemon tracks per tenant.
#[derive(Debug)]
pub struct TenantState {
    /// Admission limits.
    pub quota: TenantQuota,
    /// The bounded queue.
    pub queue: VecDeque<Pending>,
    /// Rate limiter.
    pub bucket: TokenBucket,
    /// Freeze reason, when a fault has been attributed to this tenant.
    pub frozen: Option<String>,
    /// Live NFs by tenant-scoped name.
    pub nfs: BTreeMap<String, NfId>,
    /// Request accounting.
    pub stats: TenantStats,
}

impl TenantState {
    /// A fresh tenant under `quota`, bucket full at `now`.
    pub fn new(quota: TenantQuota, now: Picos) -> TenantState {
        TenantState {
            quota,
            queue: VecDeque::new(),
            bucket: TokenBucket::full(&quota, now),
            frozen: None,
            nfs: BTreeMap::new(),
            stats: TenantStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_burst_then_rate() {
        let quota = TenantQuota {
            burst: 2,
            refill_ps: 1_000,
            ..TenantQuota::default()
        };
        let mut b = TokenBucket::full(&quota, Picos(0));
        assert!(b.try_take(&quota, Picos(0)));
        assert!(b.try_take(&quota, Picos(0)));
        assert!(!b.try_take(&quota, Picos(0)), "burst spent");
        assert!(!b.try_take(&quota, Picos(999)), "not yet minted");
        assert!(b.try_take(&quota, Picos(1_000)), "one token minted");
        assert!(!b.try_take(&quota, Picos(1_500)));
        assert!(b.try_take(&quota, Picos(2_000)), "carry accumulates");
    }

    #[test]
    fn bucket_remainder_carries_exactly() {
        let quota = TenantQuota {
            burst: 10,
            refill_ps: 1_000,
            ..TenantQuota::default()
        };
        let mut b = TokenBucket::full(&quota, Picos(0));
        for _ in 0..10 {
            assert!(b.try_take(&quota, Picos(0)));
        }
        // 3 × 700 ps = 2100 ps = 2 tokens + 100 ps carry.
        assert_eq!(b.available(&quota, Picos(700)), 0);
        assert_eq!(b.available(&quota, Picos(1_400)), 1);
        assert_eq!(b.available(&quota, Picos(2_100)), 2);
    }

    #[test]
    fn full_bucket_does_not_bank_time() {
        let quota = TenantQuota {
            burst: 1,
            refill_ps: 1_000,
            ..TenantQuota::default()
        };
        let mut b = TokenBucket::full(&quota, Picos(0));
        // Idle for a long time at capacity...
        assert_eq!(b.available(&quota, Picos(1_000_000)), 1);
        assert!(b.try_take(&quota, Picos(1_000_000)));
        // ...must not have banked a second token.
        assert!(!b.try_take(&quota, Picos(1_000_000)));
        assert!(b.try_take(&quota, Picos(1_001_000)));
    }

    #[test]
    fn zero_refill_disables_rate_limiting_refill() {
        let quota = TenantQuota {
            burst: 1,
            refill_ps: 0,
            ..TenantQuota::default()
        };
        let mut b = TokenBucket::full(&quota, Picos(0));
        assert!(b.try_take(&quota, Picos(0)));
        // Never refills: the burst is the lifetime allowance.
        assert!(!b.try_take(&quota, Picos(u64::MAX / 2)));
    }
}
