//! Differential test for the flat (structure-of-arrays) cache.
//!
//! The hot-path cache keeps its lines in three contiguous set-major
//! arrays with encoded validity, precomputed set maps, and a SIMD-lane
//! hit scan. This suite pits it against a deliberately naive reference
//! model written straight from the spec — one `Vec` of line records per
//! set, linear scans, explicit `valid` flags — over random geometries,
//! all three sharing disciplines, and random interleaved multi-tenant
//! access sequences. The hit/miss outcome of *every individual access*
//! must match, as must the final per-tenant counters. A second property
//! pits the four-lane tag-match scan against its scalar specification
//! over random way widths, and a third holds the strict-domain contract:
//! any out-of-range tenant id under a partitioned discipline must refuse
//! (the old wrap/clamp lookups silently shared a slice instead).

use proptest::prelude::*;
use proptest::TestRng;
use snic_uarch::cache::{Cache, CacheConfig, Partition};
use snic_uarch::simd;

/// One line record of the reference model; validity is an explicit flag
/// rather than the flat cache's sentinel encoding.
#[derive(Clone, Copy)]
struct RefLine {
    valid: bool,
    tag: u64,
    owner: u32,
    stamp: u64,
}

/// The naive reference: per-set vectors of line records, way ranges
/// re-derived from the [`Partition`] on every access, early-exit linear
/// scans. Slow and obvious on purpose.
struct RefCache {
    nsets: u64,
    ways: usize,
    line: u64,
    partition: Partition,
    sets: Vec<Vec<RefLine>>,
    clock: u64,
    hits: Vec<u64>,
    misses: Vec<u64>,
}

impl RefCache {
    fn new(config: CacheConfig, partition: Partition) -> RefCache {
        let nsets = config.sets();
        let empty = RefLine {
            valid: false,
            tag: 0,
            owner: 0,
            stamp: 0,
        };
        RefCache {
            nsets,
            ways: config.ways as usize,
            line: u64::from(config.line),
            partition,
            sets: vec![vec![empty; config.ways as usize]; nsets as usize],
            clock: 0,
            hits: vec![0; 64],
            misses: vec![0; 64],
        }
    }

    /// The way range `[lo, hi)` tenant `t` may occupy, straight from the
    /// discipline definition (strict domains: a tenant without a slice
    /// is a hard error, the last static slice absorbs remainder ways).
    fn range(&self, t: u32) -> (usize, usize) {
        match &self.partition {
            Partition::Shared => (0, self.ways),
            Partition::StaticWays { tenants } => {
                assert!(t < *tenants, "tenant {t} has no static slice");
                let per = self.ways / *tenants as usize;
                let slot = t as usize;
                let lo = slot * per;
                let hi = if slot == *tenants as usize - 1 {
                    self.ways
                } else {
                    lo + per
                };
                (lo, hi)
            }
            Partition::SecDcp { allocation } => {
                assert!(
                    (t as usize) < allocation.len(),
                    "tenant {t} has no SecDCP slot"
                );
                let slot = t as usize;
                let lo: u32 = allocation[..slot].iter().sum();
                (lo as usize, (lo + allocation[slot]) as usize)
            }
        }
    }

    fn access(&mut self, t: u32, addr: u64) -> bool {
        self.clock += 1;
        let line_addr = addr / self.line;
        let set = (line_addr % self.nsets) as usize;
        let tag = line_addr / self.nsets;
        let (lo, hi) = self.range(t);
        let shared = matches!(self.partition, Partition::Shared);
        let lines = &mut self.sets[set];
        // Hit: first matching way. Shared hits are tag-only (any owner —
        // the leak that makes soft partitioning bypassable); partitioned
        // hits require ownership.
        for slot in lines[lo..hi].iter_mut() {
            if slot.valid && slot.tag == tag && (shared || slot.owner == t) {
                slot.stamp = self.clock;
                self.hits[t as usize] += 1;
                return true;
            }
        }
        // Miss: fill the first invalid way, else the first least-
        // recently-used way.
        let victim = match lines[lo..hi].iter().position(|l| !l.valid) {
            Some(w) => lo + w,
            None => {
                let mut victim = lo;
                for w in lo..hi {
                    if lines[w].stamp < lines[victim].stamp {
                        victim = w;
                    }
                }
                victim
            }
        };
        lines[victim] = RefLine {
            valid: true,
            tag,
            owner: t,
            stamp: self.clock,
        };
        self.misses[t as usize] += 1;
        false
    }
}

/// Random geometry: non-power-of-two set counts and lines included, so
/// both `SetMap` arms are exercised; every dimension kept small enough
/// that sets actually fill and evict.
fn geometry(rng: &mut TestRng) -> CacheConfig {
    let ways = 1 + rng.below(8) as u32;
    let line = [32u32, 48, 64][rng.below(3) as usize];
    let nsets = 1 + rng.below(12);
    CacheConfig {
        size: nsets * u64::from(ways) * u64::from(line),
        ways,
        line,
    }
}

/// Random discipline legal for the geometry (static tenant counts no
/// larger than the way count; SecDCP allocations of ≥1 way per tenant
/// summing exactly to `ways`).
fn discipline(rng: &mut TestRng, ways: u32) -> Partition {
    match rng.below(3) {
        0 => Partition::Shared,
        1 => Partition::StaticWays {
            tenants: 1 + rng.below(u64::from(ways)) as u32,
        },
        _ => {
            let tenants = 1 + rng.below(u64::from(ways)) as usize;
            let mut allocation = vec![1u32; tenants];
            for _ in 0..ways as usize - tenants {
                let slot = rng.below(tenants as u64) as usize;
                allocation[slot] += 1;
            }
            Partition::SecDcp { allocation }
        }
    }
}

/// Tenant-id bound for a discipline: exactly the configured domain
/// count. Ids beyond it are construction-time errors now (covered by
/// `out_of_range_tenants_always_refuse` below), not a shared-slice path
/// to exercise.
fn tenant_bound(partition: &Partition) -> u64 {
    match partition {
        Partition::Shared => 5,
        Partition::StaticWays { tenants } => u64::from(*tenants),
        Partition::SecDcp { allocation } => allocation.len() as u64,
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn flat_cache_matches_naive_reference(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let config = geometry(&mut rng);
        let partition = discipline(&mut rng, config.ways);

        let mut flat = Cache::new(config, partition.clone());
        let mut naive = RefCache::new(config, partition.clone());

        // A working set a few times the cache's line count keeps the
        // hit/miss mix interesting; random in-line offsets make sure
        // offset bits never leak into set or tag.
        let lines_total = config.sets() * u64::from(config.ways);
        let distinct = 1 + rng.below(3 * lines_total.max(2));
        let tenants = tenant_bound(&partition);
        let accesses = 2_000;

        for step in 0..accesses {
            let t = rng.below(tenants) as u32;
            let addr =
                rng.below(distinct) * u64::from(config.line) + rng.below(u64::from(config.line));
            let f = flat.access(t, addr);
            let n = naive.access(t, addr);
            prop_assert_eq!(
                f, n,
                "access #{} diverged (tenant {}, addr {:#x}, {:?})",
                step, t, addr, partition
            );
        }
        for t in 0..tenants as u32 {
            // The checked accessors: every in-domain tenant must be
            // `Some`, and the counts must match the reference.
            let h = flat.try_hits(t);
            let m = flat.try_misses(t);
            prop_assert_eq!(h, Some(naive.hits[t as usize]));
            prop_assert_eq!(m, Some(naive.misses[t as usize]));
        }
    }

    /// The four-lane tag-match scan against its scalar specification:
    /// random way widths (including non-multiples of the lane count),
    /// random tag values with planted duplicates, random needles.
    #[test]
    fn simd_lane_scan_matches_scalar_scan(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let ways = 1 + rng.below(24) as usize;
        // A small tag universe plants plenty of duplicates and misses.
        let universe = 1 + rng.below(6);
        let tags: Vec<u64> = (0..ways).map(|_| rng.below(universe)).collect();
        for _ in 0..16 {
            let needle = rng.below(universe + 2);
            let lane = simd::match_mask(&tags, needle);
            let scalar = simd::match_mask_scalar(&tags, needle);
            prop_assert_eq!(
                lane, scalar,
                "lane/scalar divergence: ways={} needle={}", ways, needle
            );
            // The mask's bits must be exactly the matching positions.
            for (w, &t) in tags.iter().enumerate() {
                prop_assert_eq!((lane >> w) & 1 == 1, t == needle);
            }
        }
        // The LRU victim pick agrees with a naive first-minimum scan.
        let stamps: Vec<u64> = (0..ways).map(|_| rng.below(8)).collect();
        let naive = stamps
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(w, _)| w)
            .unwrap_or(0);
        prop_assert_eq!(simd::min_stamp_way(&stamps), naive);
    }

    /// Strict domains: any tenant id at or beyond the configured count
    /// must refuse under a partitioned discipline, for every geometry.
    /// (Before the fix, static wrapped into `t % tenants`' slice and
    /// SecDCP clamped into the last slice — both silently shared ways.)
    #[test]
    fn out_of_range_tenants_always_refuse(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let config = geometry(&mut rng);
        let partition = discipline(&mut rng, config.ways);
        let Some(domains) = Cache::new(config, partition.clone()).domains() else {
            return Ok(()); // Shared: every tenant id is legal.
        };
        let bad = domains + rng.below(1000) as u32;
        let mut cache = Cache::new(config, partition);
        let refused = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.access(bad, 0x40)
        }))
        .is_err();
        prop_assert!(refused, "tenant {} accepted on a {}-domain cache", bad, domains);
    }
}
