//! The central security property of §4 as a property-based test:
//! under the S-NIC discipline (static cache partition + temporal bus),
//! a victim's microarchitectural timing is a pure function of its own
//! stream — for *any* victim workload and *any* attacker workload.

use proptest::prelude::*;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::run_colocated;
use snic_uarch::stream::{EventSource, SyntheticStream};

fn streams(
    victim: (u64, u32, u32, u64, u64),
    attacker: (u64, u32, u32, u64, u64),
) -> Vec<EventSource> {
    let v = SyntheticStream::new(victim.0, victim.1, victim.2, victim.3, victim.4);
    let a = SyntheticStream::new(attacker.0, attacker.1, attacker.2, attacker.3, attacker.4);
    vec![v.into(), a.into()]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn snic_victim_timing_independent_of_any_attacker(
        v_ws in 1u64..(8 << 20),
        v_insns in 1u32..20,
        v_seed in any::<u64>(),
        a1_ws in 1u64..(64 << 20),
        a1_events in 0u64..60_000,
        a1_seed in any::<u64>(),
        a2_ws in 1u64..(64 << 20),
        a2_events in 0u64..60_000,
        a2_seed in any::<u64>(),
    ) {
        let cfg = MachineConfig::snic(2, 2 << 20);
        let victim = (v_ws.max(64), v_insns, 4u32, 8_000u64, v_seed);
        let run1 = run_colocated(&cfg, streams(victim, (a1_ws.max(64), 1, 1, a1_events.max(1), a1_seed)));
        let run2 = run_colocated(&cfg, streams(victim, (a2_ws.max(64), 1, 1, a2_events.max(1), a2_seed)));
        prop_assert_eq!(run1.nfs[0].cycles, run2.nfs[0].cycles,
            "victim cycles must not depend on attacker behaviour");
        prop_assert_eq!(run1.nfs[0].l2_misses, run2.nfs[0].l2_misses);
        prop_assert_eq!(run1.nfs[0].l1_misses, run2.nfs[0].l1_misses);
    }

    #[test]
    fn commodity_ipc_never_negative_and_bounded(
        ws in 64u64..(32 << 20),
        insns in 1u32..30,
        events in 100u64..20_000,
        seed in any::<u64>(),
    ) {
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let out = run_colocated(&cfg, streams((ws, insns, 3, events, seed), (ws, insns, 3, events, seed ^ 1)));
        for nf in &out.nfs {
            let ipc = nf.ipc();
            prop_assert!(ipc > 0.0 && ipc <= 1.0, "ipc {ipc}");
            prop_assert!(nf.cycles >= nf.insns);
        }
    }

    #[test]
    fn snic_is_never_faster_than_its_own_baseline_much(
        ws in 64u64..(8 << 20),
        seed in any::<u64>(),
    ) {
        // Degradation can be slightly negative (partitioning shields a
        // tenant from a thrashing neighbor) but must stay in a sane band.
        let mk = |seed2: u64| streams((ws, 8, 4, 10_000, seed), (8 << 20, 1, 1, 40_000, seed2));
        let base = run_colocated(&MachineConfig::commodity(2, 4 << 20), mk(3));
        let snic = run_colocated(&MachineConfig::snic(2, 4 << 20), mk(3));
        let deg = snic.ipc_degradation_vs(&base, 0);
        prop_assert!(deg > -50.0 && deg < 90.0, "degradation {deg}%");
    }
}
