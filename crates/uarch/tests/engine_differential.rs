//! Differential test: two-phase production engine vs the per-event
//! reference engine.
//!
//! The production engine ([`snic_uarch::engine`]) probes private L1s in
//! bulk branch-free chunks and only schedules *L2 events* through the
//! global interleaved loop; the reference ([`snic_uarch::reference`])
//! processes every event one at a time in the documented
//! `(local clock, stream index)` order. The restructuring is only legal
//! if nothing observable distinguishes the two, so this suite replays
//! random machine configurations (all three cache disciplines × both
//! bus disciplines), random stream mixes, and random warmup boundaries
//! through both engines and requires bit-identical statistics — plus
//! identical telemetry streams when a recording sink is attached.

use proptest::prelude::*;
use proptest::TestRng;
use snic_telemetry::Recorder;
use snic_uarch::engine::run_colocated_sink;
use snic_uarch::reference::run_reference_sink;
use snic_uarch::stream::{Access, AccessKind, EventSource, ReplayStream, SyntheticStream};
use snic_uarch::{BusKind, CacheConfig, MachineConfig, Partition};

/// Random but legal machine configuration: every cache discipline and
/// both bus kinds, with geometries small enough that sets fill, evict,
/// and contend within a few thousand events.
fn machine(rng: &mut TestRng, tenants: u32) -> MachineConfig {
    let l2_bytes = [128u64 << 10, 256 << 10, 512 << 10][rng.below(3) as usize];
    let mut cfg = match rng.below(3) {
        0 => MachineConfig::commodity(tenants, l2_bytes),
        1 => MachineConfig::snic(tenants, l2_bytes),
        _ => {
            // Random SecDCP split of 16 ways with ≥1 way per tenant.
            let mut allocation = vec![1u32; tenants as usize];
            for _ in 0..16 - tenants {
                let slot = rng.below(u64::from(tenants)) as usize;
                allocation[slot] += 1;
            }
            MachineConfig::snic_secdcp(allocation, l2_bytes)
        }
    };
    // Cross the bus discipline independently of the cache discipline so
    // commodity-cache + temporal-bus (and vice versa) get covered too.
    if rng.below(4) == 0 {
        cfg.bus = match cfg.bus {
            BusKind::Fcfs => BusKind::Temporal { domains: tenants },
            BusKind::Temporal { .. } => BusKind::Fcfs,
        };
    }
    // Occasionally shrink the L1 so its miss stream (the only traffic
    // the schedulers actually interleave) gets dense.
    if rng.below(3) == 0 {
        cfg.l1 = CacheConfig {
            size: 4 << 10,
            ways: 4,
            line: 64,
        };
    }
    cfg
}

/// Random stream: synthetic walker or a literal random replay trace
/// (replay covers partial batches, single-event streams, and insns > 1
/// mixes the synthetic walker never produces).
fn stream(rng: &mut TestRng) -> EventSource {
    if rng.below(4) == 0 {
        let len = rng.below(3_000) as usize; // May be zero: empty stream.
        let accesses: Vec<Access> = (0..len)
            .map(|_| Access {
                insns: 1 + rng.below(12) as u32,
                addr: rng.below(1 << 22),
                kind: AccessKind::Load,
            })
            .collect();
        EventSource::from(ReplayStream::new(accesses))
    } else {
        let ws = 1u64 << (10 + rng.below(12));
        EventSource::from(SyntheticStream::new(
            ws,
            1 + rng.below(8) as u32,
            rng.below(8) as u32,
            1 + rng.below(6_000),
            rng.below(u64::MAX),
        ))
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn engine_matches_reference(seed in any::<u64>()) {
        let mut rng = TestRng::new(seed);
        let tenants = 1 + rng.below(6) as u32;
        let cfg = machine(&mut rng, tenants);
        // Build both stream sets from the same RNG draws.
        let seeds: Vec<u64> = (0..tenants).map(|_| rng.below(u64::MAX)).collect();
        let mk = |s: &[u64]| -> Vec<EventSource> {
            s.iter().map(|&x| stream(&mut TestRng::new(x))).collect()
        };
        let warmups: Vec<u64> = (0..tenants).map(|_| rng.below(2_000)).collect();

        let fast_rec = Recorder::new();
        let slow_rec = Recorder::new();
        let fast = run_colocated_sink(&cfg, mk(&seeds), &warmups, &fast_rec);
        let slow = run_reference_sink(&cfg, mk(&seeds), &warmups, &slow_rec);

        prop_assert_eq!(
            &fast.nfs, &slow.nfs,
            "engines diverged under {:?} warmups {:?}", cfg, warmups
        );
        // The telemetry stream must match too: same counters, same
        // histograms, same spans, in the same deterministic order.
        prop_assert_eq!(
            fast_rec.summary().render(),
            slow_rec.summary().render(),
            "telemetry diverged under {:?}", cfg
        );
    }

    /// Sharding fidelity: every contiguous tenant subset of an S-NIC
    /// colocation, simulated alone with its global ids, reproduces the
    /// full run's per-tenant statistics bit-for-bit.
    #[test]
    fn snic_tenant_subsets_reproduce_full_run(seed in any::<u64>()) {
        use snic_telemetry::NullSink;
        use snic_uarch::run_colocated_ids_sink;
        let mut rng = TestRng::new(seed);
        let tenants = 2 + rng.below(5) as u32;
        let mut cfg = MachineConfig::snic(tenants, 256 << 10);
        if rng.below(2) == 0 {
            let mut allocation = vec![1u32; tenants as usize];
            for _ in 0..16 - tenants {
                allocation[rng.below(u64::from(tenants)) as usize] += 1;
            }
            cfg.l2_partition = Partition::SecDcp { allocation };
        }
        let seeds: Vec<u64> = (0..tenants).map(|_| rng.below(u64::MAX)).collect();
        let warmups: Vec<u64> = (0..tenants).map(|_| rng.below(1_000)).collect();
        let mk = |s: &[u64]| -> Vec<EventSource> {
            s.iter().map(|&x| stream(&mut TestRng::new(x))).collect()
        };
        let full = run_colocated_sink(&cfg, mk(&seeds), &warmups, &NullSink);

        let lo = rng.below(u64::from(tenants)) as usize;
        let hi = lo + 1 + rng.below(u64::from(tenants) - lo as u64) as usize;
        let ids: Vec<u32> = (lo as u32..hi as u32).collect();
        let shard = run_colocated_ids_sink(
            &cfg,
            mk(&seeds[lo..hi]),
            &warmups[lo..hi],
            &ids,
            &NullSink,
        );
        for (off, t) in (lo..hi).enumerate() {
            prop_assert_eq!(
                &shard.nfs[off], &full.nfs[t],
                "tenant {} diverged when simulated as shard [{}, {}) of {:?}",
                t, lo, hi, cfg
            );
        }
    }
}
