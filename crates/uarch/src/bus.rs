//! The internal IO bus and its arbiters (§4.5 of the paper).
//!
//! Cache misses travel to DRAM over the NIC's internal bus. On commodity
//! NICs there is "no trusted hardware-level arbiter to guarantee fair
//! access" — requests are served first-come-first-served, so one tenant's
//! traffic delays another's (the Agilio bus-DoS attack exploits exactly
//! this). S-NIC inserts a temporal-partitioning arbiter: time is divided
//! into epochs, each owned by one security domain; a domain may only
//! *issue* during the early part of its own epoch so that in-flight
//! operations finish before the epoch ends.

/// Which arbiter a simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusKind {
    /// First-come-first-served (commodity baseline).
    Fcfs,
    /// Temporal partitioning across `domains` (S-NIC).
    Temporal {
        /// Number of security domains sharing the bus.
        domains: u32,
    },
}

/// A bus arbiter: answers "when may this request occupy the bus?".
pub trait Arbiter {
    /// Given a request from `domain` that becomes ready at cycle `ready`
    /// and occupies the bus for `duration` cycles, return the cycle at
    /// which the transfer *starts*.
    fn grant(&mut self, domain: u32, ready: u64, duration: u64) -> u64;
}

/// First-come-first-served arbiter: a single busy-until register.
///
/// Contention couples tenants: the grant time depends on every prior
/// request from every domain, which is both unfair and a timing side
/// channel.
#[derive(Debug, Default)]
pub struct FcfsArbiter {
    busy_until: u64,
}

impl FcfsArbiter {
    /// A fresh, idle bus.
    pub fn new() -> FcfsArbiter {
        FcfsArbiter::default()
    }
}

impl Arbiter for FcfsArbiter {
    fn grant(&mut self, _domain: u32, ready: u64, duration: u64) -> u64 {
        let start = ready.max(self.busy_until);
        self.busy_until = start + duration;
        start
    }
}

/// The engine's devirtualized arbiter: a closed enum over the two bus
/// disciplines so the per-L2-miss grant is a direct (inlinable) call
/// instead of a `Box<dyn Arbiter>` vtable dispatch. The [`Arbiter`]
/// trait remains the extension point for the attack/verify harnesses,
/// which drive arbiters generically.
#[derive(Debug)]
pub enum BusArbiter {
    /// First-come-first-served (commodity baseline).
    Fcfs(FcfsArbiter),
    /// Temporal partitioning (S-NIC).
    Temporal(TemporalArbiter),
}

impl BusArbiter {
    /// Build the arbiter a [`BusKind`] describes.
    pub fn for_kind(kind: BusKind, epoch_cycles: u64) -> BusArbiter {
        match kind {
            BusKind::Fcfs => BusArbiter::Fcfs(FcfsArbiter::new()),
            BusKind::Temporal { domains } => {
                BusArbiter::Temporal(TemporalArbiter::new(domains, epoch_cycles))
            }
        }
    }

    /// See [`Arbiter::grant`].
    #[inline]
    pub fn grant(&mut self, domain: u32, ready: u64, duration: u64) -> u64 {
        match self {
            BusArbiter::Fcfs(a) => a.grant(domain, ready, duration),
            BusArbiter::Temporal(a) => a.grant(domain, ready, duration),
        }
    }
}

impl Arbiter for BusArbiter {
    fn grant(&mut self, domain: u32, ready: u64, duration: u64) -> u64 {
        BusArbiter::grant(self, domain, ready, duration)
    }
}

/// Temporal-partitioning arbiter.
///
/// Time is sliced into epochs of `epoch` cycles; epoch `k` belongs to
/// domain `k % domains`. A request from domain `d` may start only inside
/// one of `d`'s epochs, and only early enough that it finishes before the
/// epoch ends (the "dead time" rule). Crucially, the grant time is a pure
/// function of `(domain, ready, duration)` and the static schedule — it
/// does not depend on other domains' traffic, which is what eliminates
/// the timing channel.
#[derive(Debug)]
pub struct TemporalArbiter {
    epoch: u64,
    domains: u64,
    /// Per-domain busy-until registers (a domain can still queue behind
    /// *its own* earlier requests).
    own_busy_until: Vec<u64>,
    /// Start of the most recent epoch each domain was granted in
    /// (initially the domain's first owned epoch). Purely a memo for
    /// [`Arbiter::grant`]'s fast path: grants that land inside the
    /// remembered window skip [`TemporalArbiter::next_window`]'s
    /// divisions entirely. Invariant: `win_start[d]` is always a
    /// multiple of `epoch` whose epoch index is owned by `d`.
    win_start: Vec<u64>,
}

impl TemporalArbiter {
    /// Create an arbiter with `domains` domains and `epoch`-cycle epochs.
    ///
    /// # Panics
    ///
    /// Panics if `domains == 0` or `epoch == 0`.
    pub fn new(domains: u32, epoch: u64) -> TemporalArbiter {
        assert!(domains > 0 && epoch > 0, "degenerate temporal arbiter");
        TemporalArbiter {
            epoch,
            domains: u64::from(domains),
            own_busy_until: vec![0; domains as usize],
            // Epoch `d` is owned by domain `d % domains = d`.
            win_start: (0..u64::from(domains)).map(|d| d * epoch).collect(),
        }
    }

    /// Earliest start ≥ `t` inside one of `domain`'s issue windows that
    /// leaves room for `duration` cycles before the epoch boundary.
    fn next_window(&self, domain: u64, t: u64, duration: u64) -> u64 {
        // Requests longer than an epoch can never be granted; callers
        // split long transfers into line-sized beats.
        assert!(duration <= self.epoch, "transfer longer than an epoch");
        let mut candidate = t;
        loop {
            let epoch_idx = candidate / self.epoch;
            let owner = epoch_idx % self.domains;
            let epoch_end = (epoch_idx + 1) * self.epoch;
            if owner == domain && candidate + duration <= epoch_end {
                return candidate;
            }
            // Jump to the start of the next epoch owned by `domain`.
            let next_owned = if owner < domain {
                epoch_idx + (domain - owner)
            } else if owner == domain {
                // Same epoch but too late to finish: next round.
                epoch_idx + self.domains
            } else {
                epoch_idx + (self.domains - owner + domain)
            };
            candidate = next_owned * self.epoch;
        }
    }
}

impl Arbiter for TemporalArbiter {
    /// # Panics
    ///
    /// Panics if `domain` is outside the configured schedule. Wrapping
    /// it (the old `domain % domains` behaviour) would silently hand
    /// two NFs the *same* epoch slot, coupling their grant times and
    /// masking exactly the interference this arbiter exists to prevent.
    fn grant(&mut self, domain: u32, ready: u64, duration: u64) -> u64 {
        let d = u64::from(domain);
        assert!(
            d < self.domains,
            "domain {domain} out of range for a {}-domain temporal schedule: \
             wrapping would share one epoch slot between two NFs",
            self.domains
        );
        let earliest = ready.max(self.own_busy_until[d as usize]);
        // Fast path: the request falls inside the same owned epoch as
        // the previous grant (or the domain's first epoch) and finishes
        // before its boundary, so `next_window` would return `earliest`
        // unchanged — no division needed. Oversized transfers can never
        // satisfy the fit check, so they still reach the slow path's
        // duration assert.
        let ws = self.win_start[d as usize];
        let start = if earliest >= ws
            && earliest < ws + self.epoch
            && earliest + duration <= ws + self.epoch
        {
            earliest
        } else {
            let start = self.next_window(d, earliest, duration);
            self.win_start[d as usize] = start - start % self.epoch;
            start
        };
        self.own_busy_until[d as usize] = start + duration;
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_serializes_requests() {
        let mut a = FcfsArbiter::new();
        assert_eq!(a.grant(0, 0, 10), 0);
        assert_eq!(
            a.grant(1, 0, 10),
            10,
            "second request waits behind the first"
        );
        assert_eq!(a.grant(0, 100, 10), 100, "idle bus grants immediately");
    }

    #[test]
    fn fcfs_leaks_cross_domain_timing() {
        // The victim's grant time depends on the attacker's traffic.
        let mut quiet = FcfsArbiter::new();
        let victim_alone = quiet.grant(0, 5, 10);

        let mut noisy = FcfsArbiter::new();
        let _ = noisy.grant(1, 0, 50); // Attacker floods first.
        let victim_contended = noisy.grant(0, 5, 10);
        assert_ne!(victim_alone, victim_contended);
    }

    #[test]
    fn temporal_grants_only_in_own_epoch() {
        let mut a = TemporalArbiter::new(4, 100);
        // Domain 0 owns [0,100); granted immediately.
        assert_eq!(a.grant(0, 0, 10), 0);
        // Domain 1 owns [100,200); a request ready at 0 waits.
        assert_eq!(a.grant(1, 0, 10), 100);
        // Domain 3 owns [300,400).
        assert_eq!(a.grant(3, 0, 10), 300);
    }

    #[test]
    fn temporal_dead_time_pushes_late_requests() {
        let mut a = TemporalArbiter::new(2, 100);
        // Domain 0 owns [0,100) and [200,300). A 20-cycle transfer ready
        // at cycle 90 cannot finish by 100, so it starts at 200.
        assert_eq!(a.grant(0, 90, 20), 200);
        // But a 10-cycle transfer ready at 90 fits exactly.
        let mut b = TemporalArbiter::new(2, 100);
        assert_eq!(b.grant(0, 90, 10), 90);
    }

    #[test]
    fn temporal_is_independent_of_other_domains() {
        // The S-NIC non-interference property: victim grants are identical
        // whether or not the attacker issues traffic.
        let victim_requests = [(0u64, 8u64), (30, 8), (95, 16), (480, 8)];

        let mut quiet = TemporalArbiter::new(4, 100);
        let quiet_grants: Vec<u64> = victim_requests
            .iter()
            .map(|&(r, d)| quiet.grant(0, r, d))
            .collect();

        let mut noisy = TemporalArbiter::new(4, 100);
        for i in 0..50 {
            let _ = noisy.grant(1, i, 90);
            let _ = noisy.grant(2, i * 3, 50);
        }
        let noisy_grants: Vec<u64> = victim_requests
            .iter()
            .map(|&(r, d)| noisy.grant(0, r, d))
            .collect();

        assert_eq!(quiet_grants, noisy_grants);
    }

    #[test]
    fn temporal_own_queueing_still_applies() {
        let mut a = TemporalArbiter::new(2, 100);
        assert_eq!(a.grant(0, 0, 40), 0);
        // Same domain's next request queues behind its first.
        assert_eq!(a.grant(0, 0, 40), 40);
        // Third one no longer fits epoch [0,100): 80+40 > 100 → wait 200.
        assert_eq!(a.grant(0, 0, 40), 200);
    }

    #[test]
    #[should_panic(expected = "longer than an epoch")]
    fn oversized_transfer_panics() {
        let mut a = TemporalArbiter::new(2, 100);
        let _ = a.grant(0, 0, 101);
    }

    #[test]
    #[should_panic(expected = "out of range for a 2-domain temporal schedule")]
    fn out_of_range_domain_rejected() {
        // Before the fix this wrapped to domain 0 and silently shared
        // its epoch slot (and its busy-until register) with domain 2.
        let mut a = TemporalArbiter::new(2, 100);
        let _ = a.grant(2, 0, 10);
    }

    #[test]
    fn last_domain_still_granted() {
        let mut a = TemporalArbiter::new(4, 100);
        // Domain 3 owns [300,400): the bound check is strict, not
        // off-by-one.
        assert_eq!(a.grant(3, 0, 10), 300);
    }

    #[test]
    fn temporal_schedule_wraps_correctly() {
        let mut a = TemporalArbiter::new(3, 10);
        // Domain 2 owns [20,30), [50,60), ...
        assert_eq!(a.grant(2, 31, 5), 50);
        assert_eq!(a.grant(2, 31, 5), 55);
        assert_eq!(a.grant(2, 31, 5), 80);
    }

    // Epoch-seam audit (ISSUE 9 satellite): the boundary cycle between
    // two epochs must not leak one domain's activity into the next
    // owner's grant times. The four tests below pin the seam accounting.

    #[test]
    fn seam_transfer_may_end_exactly_on_the_boundary() {
        // A transfer that finishes exactly at the epoch boundary is legal
        // ("finish before the epoch ends" is inclusive of the end cycle:
        // the bus is busy over [84, 100) and free at 100).
        let mut a = TemporalArbiter::new(2, 100);
        assert_eq!(a.grant(0, 84, 16), 84);
        // The next owner starts its own epoch on time, boundary cycle
        // included, regardless of that last-cycle transfer.
        assert_eq!(a.grant(1, 0, 16), 100);
    }

    #[test]
    fn seam_request_ready_on_the_boundary_waits_a_full_round() {
        // Ready exactly at its epoch's end cycle: the epoch is over, and
        // the next one belongs to the other domain — off-by-one here
        // would grant inside the co-tenant's slot.
        let mut a = TemporalArbiter::new(2, 100);
        assert_eq!(a.grant(0, 100, 16), 200);
    }

    #[test]
    fn seam_own_backlog_at_epoch_end_spills_to_next_owned_epoch() {
        // A domain whose own busy-until lands exactly on its epoch's end
        // must queue its next transfer in its *next owned* epoch, not at
        // the boundary cycle (which opens the co-tenant's epoch).
        let mut a = TemporalArbiter::new(2, 100);
        assert_eq!(a.grant(0, 84, 16), 84); // busy-until == 100
        assert_eq!(a.grant(0, 84, 16), 200);
    }

    #[test]
    fn seam_is_pure_across_the_boundary() {
        // Non-interference at the seam specifically: domain 1's grants
        // around an epoch boundary are identical whether or not domain 0
        // saturated the final cycles of the preceding epoch.
        let requests = [(99u64, 16u64), (100, 16), (101, 16), (199, 16)];

        let mut quiet = TemporalArbiter::new(2, 100);
        let quiet_grants: Vec<u64> = requests
            .iter()
            .map(|&(r, d)| quiet.grant(1, r, d))
            .collect();

        let mut noisy = TemporalArbiter::new(2, 100);
        for ready in [0u64, 52, 68, 84] {
            let _ = noisy.grant(0, ready, 16); // Fills [0,100) to the brim.
        }
        let noisy_grants: Vec<u64> = requests
            .iter()
            .map(|&(r, d)| noisy.grant(1, r, d))
            .collect();

        assert_eq!(quiet_grants, noisy_grants);
    }
}
