//! Memory-reference streams.
//!
//! The engine is trace-driven: each network function supplies a stream of
//! [`Access`] events derived from its real per-packet data-structure
//! walks (hash-bucket probes, Aho-Corasick node chases, DIR-24-8 table
//! lookups). An event carries the instructions executed since the
//! previous event, so the engine can charge compute cycles between
//! memory stalls.

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// One event of a reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Instructions retired since the previous event (including this
    /// access instruction itself; must be ≥ 1).
    pub insns: u32,
    /// Byte address within the NF's private address space.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
}

/// A source of reference-stream events.
pub trait AccessStream {
    /// Produce the next event, or `None` when the workload is exhausted.
    fn next_access(&mut self) -> Option<Access>;
}

/// Replays a pre-recorded vector of accesses.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    accesses: Vec<Access>,
    pos: usize,
}

impl ReplayStream {
    /// Wrap a recorded access vector.
    pub fn new(accesses: Vec<Access>) -> ReplayStream {
        ReplayStream { accesses, pos: 0 }
    }

    /// Number of events remaining.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.pos
    }
}

impl AccessStream for ReplayStream {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }
}

/// Replays a shared, immutable recording without copying it.
///
/// Reference traces are recorded once and replayed many times — every
/// colocation of a §5.3 sweep replays the same six NF recordings, and
/// the parallel pool replays them from many threads at once. Wrapping
/// the recording in an [`Arc`] slice means each replay costs one
/// refcount bump instead of a full `Vec<Access>` clone. `passes > 1`
/// loops the recording, which is how the figure sweeps express "replay
/// once to warm the caches, then measure the second pass" without
/// materialising a doubled trace.
#[derive(Debug, Clone)]
pub struct SharedReplayStream {
    accesses: std::sync::Arc<[Access]>,
    pos: usize,
    passes_left: u32,
}

impl SharedReplayStream {
    /// Replay the shared recording once.
    pub fn new(accesses: std::sync::Arc<[Access]>) -> SharedReplayStream {
        SharedReplayStream::repeated(accesses, 1)
    }

    /// Replay the shared recording `passes` times back to back.
    pub fn repeated(accesses: std::sync::Arc<[Access]>, passes: u32) -> SharedReplayStream {
        SharedReplayStream {
            accesses,
            pos: 0,
            passes_left: passes,
        }
    }

    /// Number of events remaining across all passes.
    pub fn remaining(&self) -> usize {
        if self.passes_left == 0 {
            return 0;
        }
        (self.accesses.len() - self.pos) + (self.passes_left as usize - 1) * self.accesses.len()
    }
}

impl AccessStream for SharedReplayStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.accesses.is_empty() || self.passes_left == 0 {
            return None;
        }
        let a = self.accesses[self.pos];
        self.pos += 1;
        if self.pos == self.accesses.len() {
            self.pos = 0;
            self.passes_left -= 1;
        }
        Some(a)
    }
}

/// A synthetic stream with a configurable working set and access mix —
/// used for engine unit tests and for modeling the NIC OS's background
/// activity. Addresses cycle pseudo-randomly (LCG) through `working_set`
/// bytes.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    working_set: u64,
    state: u64,
    insns_per_access: u32,
    store_every: u32,
    produced: u64,
    limit: u64,
}

impl SyntheticStream {
    /// Create a stream of `limit` events over a `working_set`-byte window.
    ///
    /// `insns_per_access` compute instructions are charged per event;
    /// every `store_every`-th event is a store (0 = never).
    pub fn new(
        working_set: u64,
        insns_per_access: u32,
        store_every: u32,
        limit: u64,
        seed: u64,
    ) -> SyntheticStream {
        assert!(
            working_set > 0 && insns_per_access > 0,
            "degenerate synthetic stream"
        );
        SyntheticStream {
            working_set,
            state: seed | 1,
            insns_per_access,
            store_every,
            produced: 0,
            limit,
        }
    }
}

impl AccessStream for SyntheticStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.produced >= self.limit {
            return None;
        }
        self.produced += 1;
        // LCG step (Numerical Recipes constants).
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let addr = self.state % self.working_set;
        let kind =
            if self.store_every > 0 && self.produced.is_multiple_of(u64::from(self.store_every)) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
        Some(Access {
            insns: self.insns_per_access,
            addr,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_replays_in_order() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 2,
                addr: 64,
                kind: AccessKind::Store,
            },
        ];
        let mut s = ReplayStream::new(v.clone());
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_access(), Some(v[0]));
        assert_eq!(s.next_access(), Some(v[1]));
        assert_eq!(s.next_access(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn synthetic_respects_limit_and_bounds() {
        let mut s = SyntheticStream::new(4096, 5, 4, 100, 42);
        let mut n = 0;
        let mut stores = 0;
        while let Some(a) = s.next_access() {
            assert!(a.addr < 4096);
            assert_eq!(a.insns, 5);
            if a.kind == AccessKind::Store {
                stores += 1;
            }
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(stores, 25);
    }

    #[test]
    fn shared_replay_matches_owned_replay() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 2,
                addr: 64,
                kind: AccessKind::Store,
            },
        ];
        let shared: std::sync::Arc<[Access]> = v.clone().into();
        let mut owned = ReplayStream::new(v);
        let mut s = SharedReplayStream::new(shared);
        assert_eq!(s.remaining(), 2);
        while let Some(a) = owned.next_access() {
            assert_eq!(s.next_access(), Some(a));
        }
        assert_eq!(s.next_access(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn repeated_replay_loops_without_copying() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 3,
                addr: 128,
                kind: AccessKind::Load,
            },
        ];
        let shared: std::sync::Arc<[Access]> = v.clone().into();
        let mut s = SharedReplayStream::repeated(shared, 3);
        assert_eq!(s.remaining(), 6);
        let mut seen = Vec::new();
        while let Some(a) = s.next_access() {
            seen.push(a);
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(&seen[..2], &v[..]);
        assert_eq!(&seen[2..4], &v[..]);
        assert_eq!(&seen[4..], &v[..]);
    }

    #[test]
    fn empty_shared_replay_terminates() {
        let shared: std::sync::Arc<[Access]> = Vec::new().into();
        let mut s = SharedReplayStream::repeated(shared, 1_000_000);
        assert_eq!(s.next_access(), None);
    }

    #[test]
    fn synthetic_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = SyntheticStream::new(1 << 20, 3, 0, 50, seed);
            let mut v = Vec::new();
            while let Some(a) = s.next_access() {
                v.push(a.addr);
            }
            v
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }
}
