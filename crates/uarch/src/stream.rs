//! Memory-reference streams.
//!
//! The engine is trace-driven: each network function supplies a stream of
//! [`Access`] events derived from its real per-packet data-structure
//! walks (hash-bucket probes, Aho-Corasick node chases, DIR-24-8 table
//! lookups). An event carries the instructions executed since the
//! previous event, so the engine can charge compute cycles between
//! memory stalls.
//!
//! **Modeling choice:** the engine ignores [`AccessKind`] — loads and
//! stores cost the same number of cycles, and stores allocate into the
//! cache exactly like loads (write-allocate, no write-back traffic).
//! The kind still rides along on every event because the `snic-verify`
//! trace linters and the blast-radius perturbations distinguish reads
//! from writes; only the *timing* model treats them uniformly.
//!
//! Streams reach the engine as [`EventSource`] values — a closed enum
//! over the three concrete stream types (plus a boxed escape hatch) —
//! so the hot loop dispatches on an enum tag instead of a vtable, and
//! pulls events in batches via [`AccessStream::next_batch`] rather than
//! one virtual call per event.

/// Load or store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// One event of a reference stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Instructions retired since the previous event (including this
    /// access instruction itself; must be ≥ 1).
    pub insns: u32,
    /// Byte address within the NF's private address space.
    pub addr: u64,
    /// Load or store. The engine's timing model does **not** consult
    /// this (loads and stores cost the same; see the module docs) —
    /// it exists for trace linting and stream perturbation.
    pub kind: AccessKind,
}

/// A re-windable generator of reference-stream events.
///
/// This is the streaming counterpart of a materialized recording: a
/// `TraceSource` produces its event sequence chunk by chunk into a
/// caller buffer, holding only O(chunk) state resident, and can
/// [`TraceSource::rewind`] to the start to replay the identical
/// sequence (seeded generators rebuild their state; the multi-pass
/// warm-then-measure pattern of the figure sweeps becomes a rewind at
/// the pass boundary instead of a second materialized copy).
///
/// The contract mirrors [`AccessStream::next_batch`]: a partial fill is
/// legal only at end of sequence, and a zero fill means the current
/// pass is exhausted. After `rewind`, the source must reproduce its
/// event sequence bit-identically — that is what lets a streamed run
/// replace a materialized `Arc<[Access]>` under every golden snapshot.
pub trait TraceSource: Send {
    /// Fill `out` with the next events of the sequence, returning how
    /// many were written; 0 exactly when the sequence is exhausted.
    fn fill(&mut self, out: &mut [Access]) -> usize;

    /// Restart the sequence from its beginning. The events produced
    /// after a rewind must be bit-identical to the first pass.
    fn rewind(&mut self);
}

/// Adapts a [`TraceSource`] generator to the engine's [`EventSource`]
/// interface: an internal chunk buffer is refilled from the generator
/// on demand, and the engine borrows runs straight out of that buffer
/// (the same zero-copy `next_slice` path replay-backed sources take).
///
/// `passes > 1` replays the generated sequence back to back by
/// rewinding the generator at each pass boundary — the streaming
/// equivalent of [`SharedReplayStream::repeated`], at O(chunk) resident
/// memory instead of O(trace).
pub struct StreamedSource {
    src: Box<dyn TraceSource>,
    buf: Box<[Access]>,
    /// Next unconsumed event in `buf`.
    lo: usize,
    /// Events valid in `buf`.
    hi: usize,
    passes_left: u32,
    passes: u32,
}

/// Default chunk size of a [`StreamedSource`]: large enough that the
/// generator's per-call overhead amortizes away, small enough that a
/// 64-tenant sweep's chunk buffers stay within a few megabytes.
pub const STREAM_CHUNK: usize = 4096;

impl StreamedSource {
    /// Stream one pass of `src` through a [`STREAM_CHUNK`]-event buffer.
    pub fn new(src: Box<dyn TraceSource>) -> StreamedSource {
        StreamedSource::repeated(src, 1)
    }

    /// Stream `passes` back-to-back passes of `src`, rewinding the
    /// generator at each pass boundary.
    pub fn repeated(src: Box<dyn TraceSource>, passes: u32) -> StreamedSource {
        StreamedSource::with_chunk(src, passes, STREAM_CHUNK)
    }

    /// Like [`StreamedSource::repeated`] with an explicit chunk size
    /// (the differential suite sweeps this to prove chunk-boundary
    /// invariance).
    pub fn with_chunk(src: Box<dyn TraceSource>, passes: u32, chunk: usize) -> StreamedSource {
        assert!(chunk > 0, "degenerate chunk size");
        StreamedSource {
            src,
            buf: vec![
                Access {
                    insns: 1,
                    addr: 0,
                    kind: AccessKind::Load,
                };
                chunk
            ]
            .into_boxed_slice(),
            lo: 0,
            hi: 0,
            passes_left: passes,
            passes,
        }
    }

    /// Ensure the chunk buffer holds at least one unconsumed event,
    /// pulling from the generator (and crossing pass boundaries) as
    /// needed. Returns `false` when every pass is exhausted.
    fn ensure(&mut self) -> bool {
        while self.lo == self.hi {
            if self.passes_left == 0 {
                return false;
            }
            let n = self.src.fill(&mut self.buf);
            if n == 0 {
                // Pass exhausted: consume it and rewind for the next
                // one. An empty generator burns through its passes here
                // and terminates (no infinite loop).
                self.passes_left -= 1;
                if self.passes_left > 0 {
                    self.src.rewind();
                }
                continue;
            }
            self.lo = 0;
            self.hi = n;
        }
        true
    }

    /// Restart the whole stream: generator rewound, buffer dropped,
    /// pass budget restored.
    pub fn rewind(&mut self) {
        self.src.rewind();
        self.lo = 0;
        self.hi = 0;
        self.passes_left = self.passes;
    }
}

impl AccessStream for StreamedSource {
    fn next_access(&mut self) -> Option<Access> {
        if !self.ensure() {
            return None;
        }
        let a = self.buf[self.lo];
        self.lo += 1;
        Some(a)
    }

    fn next_batch(&mut self, out: &mut [Access]) -> usize {
        let mut n = 0;
        while n < out.len() {
            if !self.ensure() {
                break;
            }
            let take = (out.len() - n).min(self.hi - self.lo);
            out[n..n + take].copy_from_slice(&self.buf[self.lo..self.lo + take]);
            self.lo += take;
            n += take;
        }
        n
    }
}

impl std::fmt::Debug for StreamedSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamedSource")
            .field("chunk", &self.buf.len())
            .field("buffered", &(self.hi - self.lo))
            .field("passes_left", &self.passes_left)
            .finish_non_exhaustive()
    }
}

/// A source of reference-stream events.
pub trait AccessStream {
    /// Produce the next event, or `None` when the workload is exhausted.
    fn next_access(&mut self) -> Option<Access>;

    /// Fill `out` with as many events as are available, returning how
    /// many were written. Returns 0 exactly when the stream is
    /// exhausted (partial fills are allowed only at end of stream, so a
    /// short count means "almost done", never "try again").
    ///
    /// The default implementation loops [`AccessStream::next_access`];
    /// replay streams override it with bulk copies so the engine can
    /// refill a stack buffer at memcpy speed.
    fn next_batch(&mut self, out: &mut [Access]) -> usize {
        let mut n = 0;
        while n < out.len() {
            match self.next_access() {
                Some(a) => {
                    out[n] = a;
                    n += 1;
                }
                None => break,
            }
        }
        n
    }
}

/// Replays a pre-recorded vector of accesses.
#[derive(Debug, Clone)]
pub struct ReplayStream {
    accesses: Vec<Access>,
    pos: usize,
}

impl ReplayStream {
    /// Wrap a recorded access vector.
    pub fn new(accesses: Vec<Access>) -> ReplayStream {
        ReplayStream { accesses, pos: 0 }
    }

    /// Number of events remaining.
    pub fn remaining(&self) -> usize {
        self.accesses.len() - self.pos
    }
}

impl AccessStream for ReplayStream {
    fn next_access(&mut self) -> Option<Access> {
        let a = self.accesses.get(self.pos).copied();
        if a.is_some() {
            self.pos += 1;
        }
        a
    }

    fn next_batch(&mut self, out: &mut [Access]) -> usize {
        let n = out.len().min(self.accesses.len() - self.pos);
        out[..n].copy_from_slice(&self.accesses[self.pos..self.pos + n]);
        self.pos += n;
        n
    }
}

/// Replays a shared, immutable recording without copying it.
///
/// Reference traces are recorded once and replayed many times — every
/// colocation of a §5.3 sweep replays the same six NF recordings, and
/// the parallel pool replays them from many threads at once. Wrapping
/// the recording in an [`Arc`](std::sync::Arc) slice means each replay costs one
/// refcount bump instead of a full `Vec<Access>` clone. `passes > 1`
/// loops the recording, which is how the figure sweeps express "replay
/// once to warm the caches, then measure the second pass" without
/// materialising a doubled trace.
#[derive(Debug, Clone)]
pub struct SharedReplayStream {
    accesses: std::sync::Arc<[Access]>,
    pos: usize,
    passes_left: u32,
    passes: u32,
}

impl SharedReplayStream {
    /// Replay the shared recording once.
    pub fn new(accesses: std::sync::Arc<[Access]>) -> SharedReplayStream {
        SharedReplayStream::repeated(accesses, 1)
    }

    /// Replay the shared recording `passes` times back to back.
    pub fn repeated(accesses: std::sync::Arc<[Access]>, passes: u32) -> SharedReplayStream {
        SharedReplayStream {
            accesses,
            pos: 0,
            passes_left: passes,
            passes,
        }
    }

    /// Number of events remaining across all passes.
    pub fn remaining(&self) -> usize {
        if self.passes_left == 0 {
            return 0;
        }
        (self.accesses.len() - self.pos) + (self.passes_left as usize - 1) * self.accesses.len()
    }
}

impl AccessStream for SharedReplayStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.accesses.is_empty() || self.passes_left == 0 {
            return None;
        }
        let a = self.accesses[self.pos];
        self.pos += 1;
        if self.pos == self.accesses.len() {
            self.pos = 0;
            self.passes_left -= 1;
        }
        Some(a)
    }

    fn next_batch(&mut self, out: &mut [Access]) -> usize {
        if self.accesses.is_empty() {
            return 0;
        }
        let mut n = 0;
        while n < out.len() && self.passes_left > 0 {
            let take = (out.len() - n).min(self.accesses.len() - self.pos);
            out[n..n + take].copy_from_slice(&self.accesses[self.pos..self.pos + take]);
            n += take;
            self.pos += take;
            if self.pos == self.accesses.len() {
                self.pos = 0;
                self.passes_left -= 1;
            }
        }
        n
    }
}

/// A synthetic stream with a configurable working set and access mix —
/// used for engine unit tests and for modeling the NIC OS's background
/// activity. Addresses cycle pseudo-randomly (LCG) through `working_set`
/// bytes.
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    working_set: u64,
    state: u64,
    seed: u64,
    insns_per_access: u32,
    store_every: u32,
    produced: u64,
    limit: u64,
}

impl SyntheticStream {
    /// Create a stream of `limit` events over a `working_set`-byte window.
    ///
    /// `insns_per_access` compute instructions are charged per event;
    /// every `store_every`-th event is a store (0 = never).
    pub fn new(
        working_set: u64,
        insns_per_access: u32,
        store_every: u32,
        limit: u64,
        seed: u64,
    ) -> SyntheticStream {
        assert!(
            working_set > 0 && insns_per_access > 0,
            "degenerate synthetic stream"
        );
        SyntheticStream {
            working_set,
            state: seed | 1,
            seed,
            insns_per_access,
            store_every,
            produced: 0,
            limit,
        }
    }
}

impl AccessStream for SyntheticStream {
    fn next_access(&mut self) -> Option<Access> {
        if self.produced >= self.limit {
            return None;
        }
        self.produced += 1;
        // LCG step (Numerical Recipes constants).
        self.state = self
            .state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        let addr = self.state % self.working_set;
        let kind =
            if self.store_every > 0 && self.produced.is_multiple_of(u64::from(self.store_every)) {
                AccessKind::Store
            } else {
                AccessKind::Load
            };
        Some(Access {
            insns: self.insns_per_access,
            addr,
            kind,
        })
    }
}

/// A seeded synthetic workload is trivially re-windable: reset the LCG
/// to its seed and the identical sequence replays.
impl TraceSource for SyntheticStream {
    fn fill(&mut self, out: &mut [Access]) -> usize {
        self.next_batch(out)
    }

    fn rewind(&mut self) {
        self.state = self.seed | 1;
        self.produced = 0;
    }
}

/// A devirtualized stream: the closed set of event sources the engine
/// knows how to drain without a vtable.
///
/// The engine's hot loop used to pay one `Box<dyn AccessStream>` call
/// per trace event. [`EventSource`] replaces that with enum dispatch —
/// the three concrete stream types are matched directly (and their
/// [`AccessStream::next_batch`] bulk pulls statically resolved) — while
/// [`EventSource::Dyn`] keeps the trait-object escape hatch for
/// exotic callers at the old per-event cost.
pub enum EventSource {
    /// An owned recording ([`ReplayStream`]).
    Replay(ReplayStream),
    /// A shared, possibly looped recording ([`SharedReplayStream`]).
    Shared(SharedReplayStream),
    /// A seeded synthetic workload ([`SyntheticStream`]).
    Synthetic(SyntheticStream),
    /// A chunk-buffered generator ([`StreamedSource`]) — O(chunk)
    /// resident memory, bit-identical replays via [`TraceSource::rewind`].
    Streamed(StreamedSource),
    /// Any other stream, at one virtual call per batch element.
    Dyn(Box<dyn AccessStream + Send>),
}

impl EventSource {
    /// Bulk-pull into `out`; see [`AccessStream::next_batch`].
    #[inline]
    pub fn next_batch(&mut self, out: &mut [Access]) -> usize {
        match self {
            EventSource::Replay(s) => s.next_batch(out),
            EventSource::Shared(s) => s.next_batch(out),
            EventSource::Synthetic(s) => s.next_batch(out),
            EventSource::Streamed(s) => s.next_batch(out),
            EventSource::Dyn(s) => s.next_batch(out),
        }
    }

    /// Restart the source from its beginning so a second drain yields
    /// the bit-identical event sequence — the primitive `snic-sim`'s
    /// re-windable job specs are built on. Returns `false` for
    /// [`EventSource::Dyn`], whose boxed stream exposes no reset hook
    /// (callers there must rebuild the source instead).
    pub fn rewind(&mut self) -> bool {
        match self {
            EventSource::Replay(s) => {
                s.pos = 0;
                true
            }
            EventSource::Shared(s) => {
                s.pos = 0;
                s.passes_left = s.passes;
                true
            }
            EventSource::Synthetic(s) => {
                s.state = s.seed | 1;
                s.produced = 0;
                true
            }
            EventSource::Streamed(s) => {
                s.rewind();
                true
            }
            EventSource::Dyn(_) => false,
        }
    }

    /// Borrow the next run of up to `max` events straight out of a
    /// replay backing store, advancing the cursor — the zero-copy
    /// counterpart of [`EventSource::next_batch`]. Returns `None` for
    /// sources that must synthesize events into a caller buffer
    /// (synthetic and boxed streams); callers fall back to
    /// `next_batch` there. An exhausted replay source returns
    /// `Some(&[])`, and a shared recording's runs never span a pass
    /// boundary (the next call resumes at the front), so a short run —
    /// unlike `next_batch`'s contract — does *not* imply end of stream;
    /// only an empty one does.
    #[inline]
    pub fn next_slice(&mut self, max: usize) -> Option<&[Access]> {
        match self {
            EventSource::Replay(s) => {
                let n = max.min(s.accesses.len() - s.pos);
                let lo = s.pos;
                s.pos += n;
                Some(&s.accesses[lo..lo + n])
            }
            EventSource::Shared(s) => {
                if s.passes_left == 0 || s.accesses.is_empty() {
                    return Some(&[]);
                }
                let n = max.min(s.accesses.len() - s.pos);
                let lo = s.pos;
                s.pos += n;
                if s.pos == s.accesses.len() {
                    s.pos = 0;
                    s.passes_left -= 1;
                }
                Some(&s.accesses[lo..lo + n])
            }
            EventSource::Streamed(s) => {
                if !s.ensure() {
                    return Some(&[]);
                }
                let n = max.min(s.hi - s.lo);
                let lo = s.lo;
                s.lo += n;
                Some(&s.buf[lo..lo + n])
            }
            EventSource::Synthetic(_) | EventSource::Dyn(_) => None,
        }
    }

    /// Warm the host cache for the next `events` upcoming events of a
    /// replay-backed source (no-op otherwise) — a pure performance
    /// hint with no stream-visible effect. The engine pulls the trace
    /// in chunk-sized bursts separated by simulation work, which is
    /// exactly the pattern hardware stream prefetchers lose; touching
    /// the next burst's cache lines while the current chunk simulates
    /// hides the memory latency. (`black_box` keeps the otherwise-dead
    /// loads from being elided.)
    #[inline]
    pub fn prefetch_ahead(&self, events: usize) {
        let (accesses, pos) = match self {
            EventSource::Replay(s) => (&s.accesses[..], s.pos),
            EventSource::Shared(s) => (&s.accesses[..], s.pos),
            // A streamed source's buffer is small and recently written —
            // already cache-hot — so there is nothing useful to warm.
            EventSource::Streamed(_) | EventSource::Synthetic(_) | EventSource::Dyn(_) => return,
        };
        let hi = accesses.len().min(pos + events);
        let mut i = pos;
        // One touch per 64-byte line (four 16-byte events).
        while i < hi {
            std::hint::black_box(accesses[i].addr);
            i += 4;
        }
    }
}

impl AccessStream for EventSource {
    fn next_access(&mut self) -> Option<Access> {
        match self {
            EventSource::Replay(s) => s.next_access(),
            EventSource::Shared(s) => s.next_access(),
            EventSource::Synthetic(s) => s.next_access(),
            EventSource::Streamed(s) => s.next_access(),
            EventSource::Dyn(s) => s.next_access(),
        }
    }

    fn next_batch(&mut self, out: &mut [Access]) -> usize {
        EventSource::next_batch(self, out)
    }
}

impl std::fmt::Debug for EventSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventSource::Replay(s) => f.debug_tuple("Replay").field(s).finish(),
            EventSource::Shared(s) => f.debug_tuple("Shared").field(s).finish(),
            EventSource::Synthetic(s) => f.debug_tuple("Synthetic").field(s).finish(),
            EventSource::Streamed(s) => f.debug_tuple("Streamed").field(s).finish(),
            EventSource::Dyn(_) => f.write_str("Dyn(..)"),
        }
    }
}

impl From<ReplayStream> for EventSource {
    fn from(s: ReplayStream) -> EventSource {
        EventSource::Replay(s)
    }
}

impl From<SharedReplayStream> for EventSource {
    fn from(s: SharedReplayStream) -> EventSource {
        EventSource::Shared(s)
    }
}

impl From<SyntheticStream> for EventSource {
    fn from(s: SyntheticStream) -> EventSource {
        EventSource::Synthetic(s)
    }
}

impl From<StreamedSource> for EventSource {
    fn from(s: StreamedSource) -> EventSource {
        EventSource::Streamed(s)
    }
}

impl From<Box<dyn AccessStream + Send>> for EventSource {
    fn from(s: Box<dyn AccessStream + Send>) -> EventSource {
        EventSource::Dyn(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_replays_in_order() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 2,
                addr: 64,
                kind: AccessKind::Store,
            },
        ];
        let mut s = ReplayStream::new(v.clone());
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_access(), Some(v[0]));
        assert_eq!(s.next_access(), Some(v[1]));
        assert_eq!(s.next_access(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn synthetic_respects_limit_and_bounds() {
        let mut s = SyntheticStream::new(4096, 5, 4, 100, 42);
        let mut n = 0;
        let mut stores = 0;
        while let Some(a) = s.next_access() {
            assert!(a.addr < 4096);
            assert_eq!(a.insns, 5);
            if a.kind == AccessKind::Store {
                stores += 1;
            }
            n += 1;
        }
        assert_eq!(n, 100);
        assert_eq!(stores, 25);
    }

    #[test]
    fn shared_replay_matches_owned_replay() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 2,
                addr: 64,
                kind: AccessKind::Store,
            },
        ];
        let shared: std::sync::Arc<[Access]> = v.clone().into();
        let mut owned = ReplayStream::new(v);
        let mut s = SharedReplayStream::new(shared);
        assert_eq!(s.remaining(), 2);
        while let Some(a) = owned.next_access() {
            assert_eq!(s.next_access(), Some(a));
        }
        assert_eq!(s.next_access(), None);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn repeated_replay_loops_without_copying() {
        let v = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            },
            Access {
                insns: 3,
                addr: 128,
                kind: AccessKind::Load,
            },
        ];
        let shared: std::sync::Arc<[Access]> = v.clone().into();
        let mut s = SharedReplayStream::repeated(shared, 3);
        assert_eq!(s.remaining(), 6);
        let mut seen = Vec::new();
        while let Some(a) = s.next_access() {
            seen.push(a);
        }
        assert_eq!(seen.len(), 6);
        assert_eq!(&seen[..2], &v[..]);
        assert_eq!(&seen[2..4], &v[..]);
        assert_eq!(&seen[4..], &v[..]);
    }

    #[test]
    fn empty_shared_replay_terminates() {
        let shared: std::sync::Arc<[Access]> = Vec::new().into();
        let mut s = SharedReplayStream::repeated(shared, 1_000_000);
        assert_eq!(s.next_access(), None);
    }

    /// Drain a stream one event at a time.
    fn drain_single(s: &mut dyn AccessStream) -> Vec<Access> {
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
        }
        v
    }

    /// Drain a stream via `next_batch` with an awkward buffer size.
    fn drain_batched(s: &mut dyn AccessStream, chunk: usize) -> Vec<Access> {
        let mut v = Vec::new();
        let mut buf = vec![
            Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            };
            chunk
        ];
        loop {
            let n = s.next_batch(&mut buf);
            if n == 0 {
                break;
            }
            v.extend_from_slice(&buf[..n]);
        }
        v
    }

    #[test]
    fn batched_pull_matches_single_pull_for_every_stream_type() {
        let v: Vec<Access> = (0..97u64)
            .map(|i| Access {
                insns: 1 + (i % 7) as u32,
                addr: i * 64,
                kind: if i % 3 == 0 {
                    AccessKind::Store
                } else {
                    AccessKind::Load
                },
            })
            .collect();
        let shared: std::sync::Arc<[Access]> = v.clone().into();
        for chunk in [1usize, 3, 64, 200] {
            assert_eq!(
                drain_batched(&mut ReplayStream::new(v.clone()), chunk),
                drain_single(&mut ReplayStream::new(v.clone())),
                "replay, chunk={chunk}"
            );
            assert_eq!(
                drain_batched(
                    &mut SharedReplayStream::repeated(std::sync::Arc::clone(&shared), 3),
                    chunk
                ),
                drain_single(&mut SharedReplayStream::repeated(
                    std::sync::Arc::clone(&shared),
                    3
                )),
                "shared x3, chunk={chunk}"
            );
            assert_eq!(
                drain_batched(&mut SyntheticStream::new(4096, 5, 4, 100, 42), chunk),
                drain_single(&mut SyntheticStream::new(4096, 5, 4, 100, 42)),
                "synthetic, chunk={chunk}"
            );
        }
    }

    #[test]
    fn batch_short_count_only_at_end_of_stream() {
        // A 5-event shared recording looped twice into a 4-slot buffer:
        // full, full, then the 2-event tail, then 0.
        let v: Vec<Access> = (0..5u64)
            .map(|i| Access {
                insns: 1,
                addr: i,
                kind: AccessKind::Load,
            })
            .collect();
        let mut s = SharedReplayStream::repeated(v.into(), 2);
        let mut buf = [Access {
            insns: 1,
            addr: 0,
            kind: AccessKind::Load,
        }; 4];
        assert_eq!(s.next_batch(&mut buf), 4);
        assert_eq!(s.next_batch(&mut buf), 4);
        assert_eq!(s.next_batch(&mut buf), 2);
        assert_eq!(s.next_batch(&mut buf), 0);
    }

    #[test]
    fn event_source_dispatches_and_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let mut es = EventSource::from(SyntheticStream::new(4096, 5, 0, 10, 1));
        assert_send(&es);
        let direct = drain_single(&mut SyntheticStream::new(4096, 5, 0, 10, 1));
        assert_eq!(drain_single(&mut es), direct);
        let boxed: Box<dyn AccessStream + Send> = Box::new(SyntheticStream::new(4096, 5, 0, 10, 1));
        let mut dynamic = EventSource::from(boxed);
        assert_eq!(drain_batched(&mut dynamic, 3), direct);
        assert!(format!("{dynamic:?}").contains("Dyn"));
    }

    /// The synthetic workload the streaming tests generate and compare
    /// against: non-trivial length, mixed kinds, varied insns.
    fn synth() -> SyntheticStream {
        SyntheticStream::new(1 << 16, 3, 5, 1000, 0xabc)
    }

    /// Drain an [`EventSource`] through the zero-copy `next_slice`
    /// path, falling back to `next_batch` like the engine does.
    fn drain_sliced(es: &mut EventSource, max: usize) -> Vec<Access> {
        let mut v = Vec::new();
        loop {
            match es.next_slice(max) {
                Some([]) => break,
                Some(run) => v.extend_from_slice(run),
                None => {
                    let mut buf = vec![
                        Access {
                            insns: 1,
                            addr: 0,
                            kind: AccessKind::Load,
                        };
                        max
                    ];
                    loop {
                        let n = es.next_batch(&mut buf);
                        if n == 0 {
                            return v;
                        }
                        v.extend_from_slice(&buf[..n]);
                    }
                }
            }
        }
        v
    }

    #[test]
    fn streamed_source_matches_its_generator_for_every_chunk_size() {
        let direct = drain_single(&mut synth());
        assert_eq!(direct.len(), 1000);
        for chunk in [1usize, 7, 256, 333, 4096, 10_000] {
            let mut es = EventSource::from(StreamedSource::with_chunk(Box::new(synth()), 1, chunk));
            assert_eq!(drain_single(&mut es), direct, "single, chunk={chunk}");
            let mut es = EventSource::from(StreamedSource::with_chunk(Box::new(synth()), 1, chunk));
            assert_eq!(drain_sliced(&mut es, 100), direct, "sliced, chunk={chunk}");
        }
    }

    #[test]
    fn streamed_repeated_matches_shared_repeated() {
        let trace: std::sync::Arc<[Access]> = drain_single(&mut synth()).into();
        let mut shared = EventSource::from(SharedReplayStream::repeated(trace, 3));
        let mut streamed = EventSource::from(StreamedSource::with_chunk(Box::new(synth()), 3, 333));
        assert_eq!(
            drain_sliced(&mut streamed, 97),
            drain_sliced(&mut shared, 97)
        );
    }

    #[test]
    fn empty_streamed_generator_terminates() {
        let empty = SyntheticStream::new(64, 1, 0, 0, 1);
        let mut es = EventSource::from(StreamedSource::repeated(Box::new(empty), 1_000_000));
        assert_eq!(es.next_access(), None);
        assert_eq!(es.next_slice(16), Some(&[][..]));
    }

    #[test]
    fn rewind_restores_every_rewindable_source() {
        let trace: Vec<Access> = drain_single(&mut synth());
        let shared: std::sync::Arc<[Access]> = trace.clone().into();
        let mut sources: Vec<EventSource> = vec![
            ReplayStream::new(trace).into(),
            SharedReplayStream::repeated(shared, 2).into(),
            synth().into(),
            StreamedSource::with_chunk(Box::new(synth()), 2, 61).into(),
        ];
        for es in &mut sources {
            let first = drain_single(es);
            assert!(!first.is_empty());
            assert_eq!(drain_single(es), Vec::new(), "{es:?} not exhausted");
            assert!(es.rewind(), "{es:?} should rewind");
            assert_eq!(drain_single(es), first, "{es:?} replay differs");
            // Rewind is idempotent: rewinding twice (and mid-stream)
            // still restarts from the exact beginning.
            assert!(es.rewind());
            let _ = es.next_access();
            assert!(es.rewind());
            assert_eq!(drain_single(es), first, "{es:?} second rewind differs");
        }
        let boxed: Box<dyn AccessStream + Send> = Box::new(synth());
        let mut dynamic = EventSource::from(boxed);
        assert!(!dynamic.rewind(), "Dyn cannot rewind");
    }

    #[test]
    fn synthetic_deterministic_per_seed() {
        let collect = |seed| {
            let mut s = SyntheticStream::new(1 << 20, 3, 0, 50, seed);
            let mut v = Vec::new();
            while let Some(a) = s.next_access() {
                v.push(a.addr);
            }
            v
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }
}
