//! Set-associative cache models with isolation-aware sharing disciplines.
//!
//! Three disciplines are modeled (§4.2 of the paper):
//!
//! - [`Partition::Shared`]: ordinary LRU sharing — the commodity baseline.
//!   Co-tenants evict each other's lines, which both hurts performance
//!   and creates Prime+Probe-style side channels.
//! - [`Partition::StaticWays`]: each tenant owns a fixed slice of the
//!   ways in every set. No line is ever shared, so no cross-tenant
//!   eviction is possible — the side-channel-free configuration S-NIC
//!   evaluates.
//! - [`Partition::SecDcp`]: SecDCP-style dynamic partitioning — way
//!   allocations can be resized between *phases* (never mid-phase), which
//!   permits a one-way channel from the NIC OS to functions but not the
//!   reverse (§4.2).

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (a zero dimension) or
    /// non-dividing (`size` not a multiple of `ways * line`). A
    /// non-dividing size used to be accepted and silently truncated to
    /// `size / (ways * line)` sets — a "4.5 MB" cache quietly modeled
    /// only 4 MB — so it is now rejected outright.
    pub fn sets(&self) -> u64 {
        assert!(
            self.size > 0 && self.ways > 0 && self.line > 0,
            "degenerate cache geometry"
        );
        let per_way_bytes = u64::from(self.ways) * u64::from(self.line);
        assert!(
            self.size.is_multiple_of(per_way_bytes),
            "cache size {} is not a multiple of ways*line = {} bytes: a non-dividing \
             geometry would silently truncate the modeled capacity",
            self.size,
            per_way_bytes
        );
        self.size / per_way_bytes
    }
}

/// The sharing discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partition {
    /// Free-for-all LRU (commodity).
    Shared,
    /// Static equal way slices for `tenants` tenants.
    StaticWays {
        /// Number of co-located tenants.
        tenants: u32,
    },
    /// SecDCP-style allocation: explicit per-tenant way counts.
    SecDcp {
        /// Ways assigned to each tenant (index = tenant id).
        allocation: Vec<u32>,
    },
}

/// Tag sentinel for invalid lines; a real tag is an address shifted
/// *right*, so it can only reach `u64::MAX` from an address within one
/// line of `u64::MAX` (debug-asserted out in [`Cache::access`]).
pub(crate) const TAG_INVALID: u64 = u64::MAX;

/// Precomputed per-tenant way slices, so the hot path indexes a table
/// instead of re-deriving prefix sums from the [`Partition`] on every
/// access.
#[derive(Debug, Clone)]
enum WaySlices {
    /// Every tenant may occupy every way.
    Shared,
    /// `slices[t]`, one slice per configured tenant. Out-of-range
    /// tenants are rejected — wrapping (`t % slices.len()`), as this
    /// lookup used to do, silently parks two tenants in one slice.
    Static(Box<[(u32, u32)]>),
    /// `slices[t]`, one slice per allocation entry. Out-of-range
    /// tenants are rejected — clamping (`min(t, len - 1)`), as this
    /// lookup used to do, silently merged every mis-numbered tenant
    /// into the last tenant's partition: a cross-tenant sharing bug in
    /// the isolation model itself.
    SecDcp(Box<[(u32, u32)]>),
}

impl WaySlices {
    fn build(config: &CacheConfig, partition: &Partition) -> WaySlices {
        match partition {
            Partition::Shared => WaySlices::Shared,
            Partition::StaticWays { tenants } => {
                let per = config.ways / tenants;
                let slices = (0..*tenants)
                    .map(|t| {
                        let lo = t * per;
                        // Last tenant absorbs any remainder ways.
                        let hi = if t == tenants - 1 {
                            config.ways
                        } else {
                            lo + per
                        };
                        (lo, hi)
                    })
                    .collect();
                WaySlices::Static(slices)
            }
            Partition::SecDcp { allocation } => {
                let mut lo = 0u32;
                let slices = allocation
                    .iter()
                    .map(|&w| {
                        let s = (lo, lo + w);
                        lo += w;
                        s
                    })
                    .collect();
                WaySlices::SecDcp(slices)
            }
        }
    }
}

/// Address-to-set mapping, precomputed from the geometry. Every shipped
/// configuration has power-of-two line size and set count, so the hot
/// path is two shifts and a mask; non-power-of-two geometries (legal,
/// e.g. 3 sets from a `3 * ways * line` size) take the division path.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SetMap {
    /// `line` and the set count are both powers of two.
    Pow2 {
        line_shift: u32,
        set_mask: u64,
        set_shift: u32,
    },
    /// General geometry: divide by `line`, then split by set count.
    Div { line: u64, nsets: u64 },
}

impl SetMap {
    pub(crate) fn build(config: &CacheConfig) -> SetMap {
        let nsets = config.sets();
        if config.line.is_power_of_two() && nsets.is_power_of_two() {
            SetMap::Pow2 {
                line_shift: config.line.trailing_zeros(),
                set_mask: nsets - 1,
                set_shift: nsets.trailing_zeros(),
            }
        } else {
            SetMap::Div {
                line: u64::from(config.line),
                nsets,
            }
        }
    }

    /// `(set index, tag)` of `addr`.
    #[inline]
    pub(crate) fn locate(self, addr: u64) -> (usize, u64) {
        match self {
            SetMap::Pow2 {
                line_shift,
                set_mask,
                set_shift,
            } => {
                let line_addr = addr >> line_shift;
                ((line_addr & set_mask) as usize, line_addr >> set_shift)
            }
            SetMap::Div { line, nsets } => {
                let line_addr = addr / line;
                ((line_addr % nsets) as usize, line_addr / nsets)
            }
        }
    }
}

/// A set-associative cache.
///
/// Line bookkeeping is stored structure-of-arrays in three contiguous
/// set-major arrays (`sets * ways` entries each) — the nested
/// `Vec<Vec<Line>>` plus `HashMap` layout this replaced cost a pointer
/// chase and two
/// SipHash lookups per access, and even a flat array-of-structs layout
/// drags the LRU stamps and owners through the host cache on every hit
/// scan. Split out, a 16-way hit check touches 128 bytes of tags
/// instead of 384 bytes of line records, and the stamps are only read
/// on a miss (the victim scan).
///
/// Validity is encoded rather than stored: an invalid line has
/// `tag == TAG_INVALID` (which no real address can produce, so the hit
/// scan is a single compare per way) and `stamp == 0` (below every
/// valid stamp — the access clock pre-increments, so live lines stamp
/// from 1 — which makes invalid lines win LRU victim selection with no
/// extra branch).
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    partition: Partition,
    /// Line tags; `TAG_INVALID` marks an invalid line.
    tags: Box<[u64]>,
    /// LRU stamps (larger = more recent; 0 = invalid).
    stamps: Box<[u64]>,
    /// Filling tenant of each line.
    owners: Box<[u32]>,
    set_map: SetMap,
    slices: WaySlices,
    clock: u64,
    /// Counters indexed by tenant id, grown on demand (tenant ids are
    /// small: stream indices or partition slots).
    hits: Vec<u64>,
    misses: Vec<u64>,
}

/// Bump `counters[t]`, growing the array the first time tenant `t`
/// appears.
#[inline]
fn bump(counters: &mut Vec<u64>, t: u32) {
    let t = t as usize;
    if t >= counters.len() {
        counters.resize(t + 1, 0);
    }
    counters[t] += 1;
}

impl Cache {
    /// Build a cache.
    ///
    /// # Panics
    ///
    /// Panics if a partitioned configuration cannot give every tenant at
    /// least one way.
    pub fn new(config: CacheConfig, partition: Partition) -> Cache {
        match &partition {
            Partition::StaticWays { tenants } => {
                assert!(
                    *tenants > 0 && *tenants <= config.ways,
                    "more tenants than ways"
                );
            }
            Partition::SecDcp { allocation } => {
                let total: u32 = allocation.iter().sum();
                assert!(total <= config.ways, "SecDCP allocation exceeds ways");
                assert!(allocation.iter().all(|&w| w > 0), "SecDCP zero-way tenant");
            }
            Partition::Shared => {}
        }
        assert!(
            config.ways <= 64,
            "associativity above 64 is unsupported (the hit scan packs \
             way matches into a u64 bitmask)"
        );
        let sets = config.sets();
        let set_map = SetMap::build(&config);
        let slices = WaySlices::build(&config, &partition);
        let n = (sets * u64::from(config.ways)) as usize;
        Cache {
            config,
            partition,
            tags: vec![TAG_INVALID; n].into_boxed_slice(),
            stamps: vec![0; n].into_boxed_slice(),
            owners: vec![0; n].into_boxed_slice(),
            set_map,
            slices,
            clock: 0,
            hits: Vec::new(),
            misses: Vec::new(),
        }
    }

    /// The way range `[lo, hi)` tenant `t` may occupy.
    ///
    /// # Panics
    ///
    /// Panics when `t` has no slice under a partitioned discipline.
    /// Static partitioning used to *wrap* (`t % tenants`) and SecDCP
    /// used to *clamp* (`min(t, last)`): both silently co-located an
    /// out-of-range tenant with a legitimate one in the same way slice,
    /// handing them mutual eviction visibility — exactly the channel
    /// partitioning exists to close. Mirroring `TemporalArbiter::grant`,
    /// a mis-numbered tenant is now a hard error (kept as a release
    /// assert: this guards an isolation claim, not a perf invariant).
    #[inline]
    fn way_range(&self, t: u32) -> (usize, usize) {
        match &self.slices {
            WaySlices::Shared => (0, self.config.ways as usize),
            WaySlices::Static(slices) => {
                assert!(
                    (t as usize) < slices.len(),
                    "tenant {t} out of range for a {}-tenant static way partition \
                     (wrapping would silently share a slice across tenants)",
                    slices.len()
                );
                let (lo, hi) = slices[t as usize];
                (lo as usize, hi as usize)
            }
            WaySlices::SecDcp(slices) => {
                assert!(
                    (t as usize) < slices.len(),
                    "tenant {t} out of range for a {}-tenant SecDCP allocation \
                     (clamping would silently merge it into the last tenant's slice)",
                    slices.len()
                );
                let (lo, hi) = slices[t as usize];
                (lo as usize, hi as usize)
            }
        }
    }

    /// Number of tenant domains the discipline distinguishes, or `None`
    /// for [`Partition::Shared`] (any tenant id is legal there).
    pub fn domains(&self) -> Option<u32> {
        match &self.slices {
            WaySlices::Shared => None,
            WaySlices::Static(slices) | WaySlices::SecDcp(slices) => Some(slices.len() as u32),
        }
    }

    /// Warm the *host* cache for an upcoming [`Cache::access`] to
    /// `addr` — a pure performance hint with no model-visible effect.
    /// The engine discovers L2 events a whole chunk ahead of consuming
    /// them, so touching the set's tag and stamp lines early hides the
    /// host-memory latency that otherwise dominates the miss path.
    /// (`black_box` keeps the otherwise-dead loads from being elided;
    /// there is no stable safe prefetch intrinsic.)
    #[inline]
    pub fn prefetch(&self, addr: u64) {
        let (set_idx, _) = self.set_map.locate(addr);
        let lo = set_idx * self.config.ways as usize;
        std::hint::black_box(self.tags[lo]);
        std::hint::black_box(self.stamps[lo]);
    }

    /// Access `addr` on behalf of tenant `t`; returns `true` on hit.
    ///
    /// `inline(always)`: the partition-discipline branches inside
    /// predict perfectly only when each call site (the engine's L1
    /// probe vs its L2 probe) gets its own copy.
    #[inline(always)]
    pub fn access(&mut self, t: u32, addr: u64) -> bool {
        self.clock += 1;
        let (set_idx, tag) = self.set_map.locate(addr);
        debug_assert!(
            tag != TAG_INVALID,
            "address {addr:#x} maps to the invalid-line tag sentinel"
        );
        let ways = self.config.ways as usize;
        let shared = matches!(self.slices, WaySlices::Shared);
        let (lo, hi) = if shared {
            (set_idx * ways, (set_idx + 1) * ways)
        } else {
            let (rlo, rhi) = self.way_range(t);
            (set_idx * ways + rlo, set_idx * ways + rhi)
        };

        // Hit scan over the tag array only — the LRU stamps stay out of
        // the host cache until a miss actually needs them. The scan
        // accumulates a match bitmask instead of branching per way:
        // whether and where a lookup hits is data-dependent (i.e.
        // unpredictable), so an early-exit loop eats a misprediction on
        // nearly every access, while the lane form runs branch-free
        // four ways per step (see `simd::match_mask`). Matching ways
        // are then visited lowest-first (`trailing_zeros`), preserving
        // the old first-match order.
        //
        // Under Shared, a hit may be satisfied from any way regardless
        // of owner (this is what makes soft partitioning like Intel CAT
        // leaky — see §4.2 footnote). Under hard partitioning only the
        // tenant's own slice is searched and `way_range` rejects ids
        // without a slice, so the owner check is defense-in-depth (it
        // would catch a slice-table bug); it sits behind the rare tag
        // match, off the scan itself.
        let mut mask = crate::simd::match_mask(&self.tags[lo..hi], tag);
        while mask != 0 {
            let w = lo + mask.trailing_zeros() as usize;
            if shared || self.owners[w] == t {
                self.stamps[w] = self.clock;
                bump(&mut self.hits, t);
                return true;
            }
            mask &= mask - 1;
        }

        // Miss: fill the LRU way — the first way with the smallest
        // stamp; invalid lines carry stamp 0, below every live stamp,
        // so they are chosen first.
        let victim = lo + crate::simd::min_stamp_way(&self.stamps[lo..hi]);
        self.tags[victim] = tag;
        self.stamps[victim] = self.clock;
        self.owners[victim] = t;
        bump(&mut self.misses, t);
        false
    }

    /// Hits recorded for tenant `t`.
    ///
    /// Debug-asserts that `t` is a domain the partition knows about —
    /// a silent 0 for a mis-numbered tenant masks indexing bugs in
    /// sweep code. Sweeps probing tenants that may legitimately be
    /// absent should use [`Cache::try_hits`].
    pub fn hits(&self, t: u32) -> u64 {
        debug_assert!(
            self.try_hits(t).is_some(),
            "tenant {t} outside the partition's domain range"
        );
        self.hits.get(t as usize).copied().unwrap_or(0)
    }

    /// Misses recorded for tenant `t`; see [`Cache::hits`] for the
    /// range contract.
    pub fn misses(&self, t: u32) -> u64 {
        debug_assert!(
            self.try_misses(t).is_some(),
            "tenant {t} outside the partition's domain range"
        );
        self.misses.get(t as usize).copied().unwrap_or(0)
    }

    /// Hits recorded for tenant `t`, or `None` when the partition has
    /// no such domain (the checked form of [`Cache::hits`]). A tenant
    /// inside the domain range that simply never accessed the cache
    /// reports `Some(0)`.
    pub fn try_hits(&self, t: u32) -> Option<u64> {
        match self.domains() {
            Some(n) if t >= n => None,
            _ => Some(self.hits.get(t as usize).copied().unwrap_or(0)),
        }
    }

    /// Misses recorded for tenant `t`, or `None` when the partition has
    /// no such domain (the checked form of [`Cache::misses`]).
    pub fn try_misses(&self, t: u32) -> Option<u64> {
        match self.domains() {
            Some(n) if t >= n => None,
            _ => Some(self.misses.get(t as usize).copied().unwrap_or(0)),
        }
    }

    /// Miss ratio for tenant `t` (0 when no accesses).
    pub fn miss_ratio(&self, t: u32) -> f64 {
        let h = self.hits(t);
        let m = self.misses(t);
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }

    /// Invalidate every line owned by tenant `t` (teardown zeroization,
    /// §4.6: "The instruction also zeroes out the registers and cache
    /// lines used by F").
    pub fn flush_owner(&mut self, t: u32) -> u64 {
        let mut flushed = 0;
        for idx in 0..self.tags.len() {
            if self.stamps[idx] != 0 && self.owners[idx] == t {
                self.tags[idx] = TAG_INVALID;
                self.stamps[idx] = 0;
                self.owners[idx] = 0;
                flushed += 1;
            }
        }
        flushed
    }

    /// Resize a SecDCP allocation between phases.
    ///
    /// # Panics
    ///
    /// Panics if the cache is not SecDCP-partitioned or the new allocation
    /// is invalid. Lines stranded outside a tenant's new slice are
    /// invalidated (they may not be probed, which would leak).
    pub fn secdcp_resize(&mut self, allocation: Vec<u32>) {
        assert!(
            matches!(self.partition, Partition::SecDcp { .. }),
            "not a SecDCP cache"
        );
        let total: u32 = allocation.iter().sum();
        assert!(total <= self.config.ways && allocation.iter().all(|&w| w > 0));
        self.partition = Partition::SecDcp { allocation };
        self.slices = WaySlices::build(&self.config, &self.partition);
        // Invalidate lines that now sit outside their owner's slice.
        let ways = self.config.ways as usize;
        for idx in 0..self.tags.len() {
            if self.stamps[idx] != 0 {
                let (lo, hi) = self.way_range(self.owners[idx]);
                let way = idx % ways;
                if way < lo || way >= hi {
                    self.tags[idx] = TAG_INVALID;
                    self.stamps[idx] = 0;
                    self.owners[idx] = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(partition: Partition) -> Cache {
        // 4 sets x 4 ways x 64B lines = 1 KiB.
        Cache::new(
            CacheConfig {
                size: 1024,
                ways: 4,
                line: 64,
            },
            partition,
        )
    }

    #[test]
    fn geometry() {
        assert_eq!(
            CacheConfig {
                size: 1024,
                ways: 4,
                line: 64
            }
            .sets(),
            4
        );
        assert_eq!(
            CacheConfig {
                size: 4 << 20,
                ways: 16,
                line: 64
            }
            .sets(),
            4096
        );
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(Partition::Shared);
        assert!(!c.access(0, 0x1000));
        assert!(c.access(0, 0x1000));
        assert!(c.access(0, 0x103f)); // Same line.
        assert!(!c.access(0, 0x1040)); // Next line.
        assert_eq!(c.hits(0), 2);
        assert_eq!(c.misses(0), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(Partition::Shared);
        // Fill all 4 ways of set 0 (addresses with same set index).
        for i in 0..4u64 {
            c.access(0, i * 4 * 64 * 4); // Stride = sets*line = 256; x4 ways.
        }
        // Re-touch line 0 so line 1 becomes LRU.
        c.access(0, 0);
        // A 5th distinct line evicts line 1, not line 0.
        c.access(0, 4 * 1024);
        assert!(c.access(0, 0), "recently used line must survive");
        assert!(!c.access(0, 1024), "LRU line must have been evicted");
    }

    #[test]
    fn shared_cache_lets_tenants_evict_each_other() {
        let mut c = tiny(Partition::Shared);
        for i in 0..4u64 {
            c.access(0, i * 256);
        }
        // Tenant 1 thrashes the same set.
        for i in 10..14u64 {
            c.access(1, i * 256);
        }
        // Tenant 0's lines are gone: the cross-tenant side channel.
        assert!(!c.access(0, 0));
    }

    #[test]
    fn static_partition_prevents_cross_tenant_eviction() {
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        for i in 0..2u64 {
            c.access(0, i * 256);
        }
        // Tenant 1 thrashes hard — far more lines than its slice holds.
        for i in 10..30u64 {
            c.access(1, i * 256);
        }
        // Tenant 0's two lines (fitting its 2-way slice) are untouched.
        assert!(c.access(0, 0));
        assert!(c.access(0, 256));
    }

    #[test]
    fn static_partition_shrinks_effective_capacity() {
        let mut shared = tiny(Partition::Shared);
        let mut part = tiny(Partition::StaticWays { tenants: 2 });
        // A working set of 4 lines in one set: fits shared (4 ways), not
        // a 2-way slice.
        for rounds in 0..8 {
            for i in 0..4u64 {
                shared.access(0, i * 256);
                part.access(0, i * 256);
            }
            let _ = rounds;
        }
        assert!(part.miss_ratio(0) > shared.miss_ratio(0));
    }

    #[test]
    fn flush_owner_removes_lines() {
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        c.access(0, 0);
        c.access(1, 512);
        assert_eq!(c.flush_owner(0), 1);
        assert!(!c.access(0, 0), "flushed line must miss");
        assert!(c.access(1, 512), "other tenant's line must survive");
    }

    #[test]
    fn secdcp_resize_invalidates_stranded_lines() {
        let mut c = tiny(Partition::SecDcp {
            allocation: vec![3, 1],
        });
        c.access(0, 0);
        c.access(0, 256);
        c.access(0, 512);
        c.secdcp_resize(vec![1, 3]);
        // Tenant 0 now owns only way 0; at most one of its lines survives.
        let survivors = [0u64, 256, 512].iter().filter(|&&a| c.access(0, a)).count();
        assert!(
            survivors <= 1,
            "{survivors} lines survived a shrink to 1 way"
        );
    }

    #[test]
    #[should_panic(expected = "more tenants than ways")]
    fn too_many_tenants_panics() {
        let _ = tiny(Partition::StaticWays { tenants: 5 });
    }

    #[test]
    fn last_tenant_absorbs_remainder_ways() {
        // 4 ways, 3 tenants: slices are 1,1,2.
        let c = tiny(Partition::StaticWays { tenants: 3 });
        assert_eq!(c.way_range(0), (0, 1));
        assert_eq!(c.way_range(1), (1, 2));
        assert_eq!(c.way_range(2), (2, 4));
    }

    #[test]
    #[should_panic(expected = "out of range for a 2-tenant static way partition")]
    fn static_rejects_out_of_range_tenant() {
        // Regression: tenant 2 of a 2-tenant split used to wrap to
        // tenant 0's slice (t % tenants) and share its ways.
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        c.access(2, 0x1000);
    }

    #[test]
    #[should_panic(expected = "out of range for a 2-tenant SecDCP allocation")]
    fn secdcp_rejects_out_of_range_tenant() {
        // Regression: tenant 7 used to clamp into the *last* tenant's
        // slice (min(t, len-1)) — it could fill, evict, and probe
        // tenant 1's ways as if they were its own.
        let mut c = tiny(Partition::SecDcp {
            allocation: vec![2, 2],
        });
        c.access(7, 0x1000);
    }

    #[test]
    fn secdcp_clamp_no_longer_shares_the_last_slice() {
        // The concrete leak the clamp enabled: out-of-range tenant 5
        // priming tenant 1's slice and then observing tenant 1's
        // evictions. Under strict domains the prime itself refuses.
        let mut c = tiny(Partition::SecDcp {
            allocation: vec![2, 2],
        });
        c.access(1, 0x1000);
        let primed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.access(5, 0x2000);
        }));
        assert!(
            primed.is_err(),
            "mis-numbered tenant must not reach a slice"
        );
    }

    #[test]
    fn domains_reflect_discipline() {
        assert_eq!(tiny(Partition::Shared).domains(), None);
        assert_eq!(
            tiny(Partition::StaticWays { tenants: 3 }).domains(),
            Some(3)
        );
        assert_eq!(
            tiny(Partition::SecDcp {
                allocation: vec![2, 1, 1],
            })
            .domains(),
            Some(3)
        );
    }

    #[test]
    fn try_stats_distinguish_absent_from_zero() {
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        c.access(0, 0x1000);
        assert_eq!(c.try_hits(0), Some(0));
        assert_eq!(c.try_misses(0), Some(1));
        // In-range tenant with no traffic: a real zero.
        assert_eq!(c.try_hits(1), Some(0));
        assert_eq!(c.try_misses(1), Some(0));
        // Out-of-range tenant: no such domain.
        assert_eq!(c.try_hits(2), None);
        assert_eq!(c.try_misses(2), None);
        // Shared caches accept any id (no domain table to violate).
        let s = tiny(Partition::Shared);
        assert_eq!(s.try_hits(1000), Some(0));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn unchecked_stats_assert_range_in_debug() {
        let c = tiny(Partition::StaticWays { tenants: 2 });
        let hit = std::panic::catch_unwind(|| c.hits(9));
        assert!(
            hit.is_err(),
            "hits(9) must debug-assert on a 2-tenant cache"
        );
        let miss = std::panic::catch_unwind(|| c.misses(9));
        assert!(miss.is_err());
    }
}
