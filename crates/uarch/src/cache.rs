//! Set-associative cache models with isolation-aware sharing disciplines.
//!
//! Three disciplines are modeled (§4.2 of the paper):
//!
//! - [`Partition::Shared`]: ordinary LRU sharing — the commodity baseline.
//!   Co-tenants evict each other's lines, which both hurts performance
//!   and creates Prime+Probe-style side channels.
//! - [`Partition::StaticWays`]: each tenant owns a fixed slice of the
//!   ways in every set. No line is ever shared, so no cross-tenant
//!   eviction is possible — the side-channel-free configuration S-NIC
//!   evaluates.
//! - [`Partition::SecDcp`]: SecDCP-style dynamic partitioning — way
//!   allocations can be resized between *phases* (never mid-phase), which
//!   permits a one-way channel from the NIC OS to functions but not the
//!   reverse (§4.2).

use std::collections::HashMap;

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero or non-dividing sizes).
    pub fn sets(&self) -> u64 {
        assert!(
            self.size > 0 && self.ways > 0 && self.line > 0,
            "degenerate cache geometry"
        );
        let per_way_bytes = u64::from(self.ways) * u64::from(self.line);
        assert!(
            self.size.is_multiple_of(per_way_bytes) || self.size >= per_way_bytes,
            "cache size must hold at least one set"
        );
        (self.size / per_way_bytes).max(1)
    }
}

/// The sharing discipline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Partition {
    /// Free-for-all LRU (commodity).
    Shared,
    /// Static equal way slices for `tenants` tenants.
    StaticWays {
        /// Number of co-located tenants.
        tenants: u32,
    },
    /// SecDCP-style allocation: explicit per-tenant way counts.
    SecDcp {
        /// Ways assigned to each tenant (index = tenant id).
        allocation: Vec<u32>,
    },
}

/// One cache line's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    owner: u32,
    /// LRU timestamp (larger = more recent).
    stamp: u64,
    valid: bool,
}

/// A set-associative cache.
#[derive(Debug)]
pub struct Cache {
    config: CacheConfig,
    partition: Partition,
    sets: Vec<Vec<Line>>,
    clock: u64,
    hits: HashMap<u32, u64>,
    misses: HashMap<u32, u64>,
}

impl Cache {
    /// Build a cache.
    ///
    /// # Panics
    ///
    /// Panics if a partitioned configuration cannot give every tenant at
    /// least one way.
    pub fn new(config: CacheConfig, partition: Partition) -> Cache {
        match &partition {
            Partition::StaticWays { tenants } => {
                assert!(
                    *tenants > 0 && *tenants <= config.ways,
                    "more tenants than ways"
                );
            }
            Partition::SecDcp { allocation } => {
                let total: u32 = allocation.iter().sum();
                assert!(total <= config.ways, "SecDCP allocation exceeds ways");
                assert!(allocation.iter().all(|&w| w > 0), "SecDCP zero-way tenant");
            }
            Partition::Shared => {}
        }
        let sets = config.sets();
        let empty = Line {
            tag: 0,
            owner: 0,
            stamp: 0,
            valid: false,
        };
        Cache {
            config,
            partition,
            sets: vec![vec![empty; config.ways as usize]; sets as usize],
            clock: 0,
            hits: HashMap::new(),
            misses: HashMap::new(),
        }
    }

    /// The way range `[lo, hi)` tenant `t` may occupy.
    fn way_range(&self, t: u32) -> (usize, usize) {
        match &self.partition {
            Partition::Shared => (0, self.config.ways as usize),
            Partition::StaticWays { tenants } => {
                let per = self.config.ways / tenants;
                let lo = (t % tenants) * per;
                // Last tenant absorbs any remainder ways.
                let hi = if t % tenants == tenants - 1 {
                    self.config.ways
                } else {
                    lo + per
                };
                (lo as usize, hi as usize)
            }
            Partition::SecDcp { allocation } => {
                let idx = (t as usize).min(allocation.len() - 1);
                let lo: u32 = allocation[..idx].iter().sum();
                (lo as usize, (lo + allocation[idx]) as usize)
            }
        }
    }

    /// Access `addr` on behalf of tenant `t`; returns `true` on hit.
    pub fn access(&mut self, t: u32, addr: u64) -> bool {
        self.clock += 1;
        let line_addr = addr / u64::from(self.config.line);
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        let (lo, hi) = self.way_range(t);
        let set = &mut self.sets[set_idx];

        // Hit check: under Shared, a hit may be satisfied from any way
        // (this is what makes soft partitioning like Intel CAT leaky —
        // see §4.2 footnote). Under hard partitioning only the tenant's
        // own slice is searched, because other slices can never hold the
        // tenant's lines.
        let (search_lo, search_hi) = match self.partition {
            Partition::Shared => (0, self.config.ways as usize),
            _ => (lo, hi),
        };
        for l in set.iter_mut().take(search_hi).skip(search_lo) {
            if l.valid
                && l.tag == tag
                && (matches!(self.partition, Partition::Shared) || l.owner == t)
            {
                l.stamp = self.clock;
                *self.hits.entry(t).or_default() += 1;
                return true;
            }
        }

        // Miss: fill into the LRU way of the tenant's slice.
        let victim = (lo..hi)
            .min_by_key(|&w| if set[w].valid { set[w].stamp } else { 0 })
            .expect("way range non-empty");
        set[victim] = Line {
            tag,
            owner: t,
            stamp: self.clock,
            valid: true,
        };
        *self.misses.entry(t).or_default() += 1;
        false
    }

    /// Hits recorded for tenant `t`.
    pub fn hits(&self, t: u32) -> u64 {
        self.hits.get(&t).copied().unwrap_or(0)
    }

    /// Misses recorded for tenant `t`.
    pub fn misses(&self, t: u32) -> u64 {
        self.misses.get(&t).copied().unwrap_or(0)
    }

    /// Miss ratio for tenant `t` (0 when no accesses).
    pub fn miss_ratio(&self, t: u32) -> f64 {
        let h = self.hits(t);
        let m = self.misses(t);
        if h + m == 0 {
            0.0
        } else {
            m as f64 / (h + m) as f64
        }
    }

    /// Invalidate every line owned by tenant `t` (teardown zeroization,
    /// §4.6: "The instruction also zeroes out the registers and cache
    /// lines used by F").
    pub fn flush_owner(&mut self, t: u32) -> u64 {
        let mut flushed = 0;
        for set in &mut self.sets {
            for line in set.iter_mut() {
                if line.valid && line.owner == t {
                    line.valid = false;
                    flushed += 1;
                }
            }
        }
        flushed
    }

    /// Resize a SecDCP allocation between phases.
    ///
    /// # Panics
    ///
    /// Panics if the cache is not SecDCP-partitioned or the new allocation
    /// is invalid. Lines stranded outside a tenant's new slice are
    /// invalidated (they may not be probed, which would leak).
    pub fn secdcp_resize(&mut self, allocation: Vec<u32>) {
        assert!(
            matches!(self.partition, Partition::SecDcp { .. }),
            "not a SecDCP cache"
        );
        let total: u32 = allocation.iter().sum();
        assert!(total <= self.config.ways && allocation.iter().all(|&w| w > 0));
        self.partition = Partition::SecDcp { allocation };
        // Invalidate lines that now sit outside their owner's slice.
        for set_idx in 0..self.sets.len() {
            for way in 0..self.config.ways as usize {
                let owner = self.sets[set_idx][way].owner;
                let valid = self.sets[set_idx][way].valid;
                if valid {
                    let (lo, hi) = self.way_range(owner);
                    if way < lo || way >= hi {
                        self.sets[set_idx][way].valid = false;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(partition: Partition) -> Cache {
        // 4 sets x 4 ways x 64B lines = 1 KiB.
        Cache::new(
            CacheConfig {
                size: 1024,
                ways: 4,
                line: 64,
            },
            partition,
        )
    }

    #[test]
    fn geometry() {
        assert_eq!(
            CacheConfig {
                size: 1024,
                ways: 4,
                line: 64
            }
            .sets(),
            4
        );
        assert_eq!(
            CacheConfig {
                size: 4 << 20,
                ways: 16,
                line: 64
            }
            .sets(),
            4096
        );
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny(Partition::Shared);
        assert!(!c.access(0, 0x1000));
        assert!(c.access(0, 0x1000));
        assert!(c.access(0, 0x103f)); // Same line.
        assert!(!c.access(0, 0x1040)); // Next line.
        assert_eq!(c.hits(0), 2);
        assert_eq!(c.misses(0), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(Partition::Shared);
        // Fill all 4 ways of set 0 (addresses with same set index).
        for i in 0..4u64 {
            c.access(0, i * 4 * 64 * 4); // Stride = sets*line = 256; x4 ways.
        }
        // Re-touch line 0 so line 1 becomes LRU.
        c.access(0, 0);
        // A 5th distinct line evicts line 1, not line 0.
        c.access(0, 4 * 1024);
        assert!(c.access(0, 0), "recently used line must survive");
        assert!(!c.access(0, 1024), "LRU line must have been evicted");
    }

    #[test]
    fn shared_cache_lets_tenants_evict_each_other() {
        let mut c = tiny(Partition::Shared);
        for i in 0..4u64 {
            c.access(0, i * 256);
        }
        // Tenant 1 thrashes the same set.
        for i in 10..14u64 {
            c.access(1, i * 256);
        }
        // Tenant 0's lines are gone: the cross-tenant side channel.
        assert!(!c.access(0, 0));
    }

    #[test]
    fn static_partition_prevents_cross_tenant_eviction() {
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        for i in 0..2u64 {
            c.access(0, i * 256);
        }
        // Tenant 1 thrashes hard — far more lines than its slice holds.
        for i in 10..30u64 {
            c.access(1, i * 256);
        }
        // Tenant 0's two lines (fitting its 2-way slice) are untouched.
        assert!(c.access(0, 0));
        assert!(c.access(0, 256));
    }

    #[test]
    fn static_partition_shrinks_effective_capacity() {
        let mut shared = tiny(Partition::Shared);
        let mut part = tiny(Partition::StaticWays { tenants: 2 });
        // A working set of 4 lines in one set: fits shared (4 ways), not
        // a 2-way slice.
        for rounds in 0..8 {
            for i in 0..4u64 {
                shared.access(0, i * 256);
                part.access(0, i * 256);
            }
            let _ = rounds;
        }
        assert!(part.miss_ratio(0) > shared.miss_ratio(0));
    }

    #[test]
    fn flush_owner_removes_lines() {
        let mut c = tiny(Partition::StaticWays { tenants: 2 });
        c.access(0, 0);
        c.access(1, 512);
        assert_eq!(c.flush_owner(0), 1);
        assert!(!c.access(0, 0), "flushed line must miss");
        assert!(c.access(1, 512), "other tenant's line must survive");
    }

    #[test]
    fn secdcp_resize_invalidates_stranded_lines() {
        let mut c = tiny(Partition::SecDcp {
            allocation: vec![3, 1],
        });
        c.access(0, 0);
        c.access(0, 256);
        c.access(0, 512);
        c.secdcp_resize(vec![1, 3]);
        // Tenant 0 now owns only way 0; at most one of its lines survives.
        let survivors = [0u64, 256, 512].iter().filter(|&&a| c.access(0, a)).count();
        assert!(
            survivors <= 1,
            "{survivors} lines survived a shrink to 1 way"
        );
    }

    #[test]
    #[should_panic(expected = "more tenants than ways")]
    fn too_many_tenants_panics() {
        let _ = tiny(Partition::StaticWays { tenants: 5 });
    }

    #[test]
    fn last_tenant_absorbs_remainder_ways() {
        // 4 ways, 3 tenants: slices are 1,1,2.
        let c = tiny(Partition::StaticWays { tenants: 3 });
        assert_eq!(c.way_range(0), (0, 1));
        assert_eq!(c.way_range(1), (1, 2));
        assert_eq!(c.way_range(2), (2, 4));
    }
}
