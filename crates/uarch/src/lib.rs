//! Trace-driven microarchitectural simulator (the gem5 substitute).
//!
//! §5.3 of the paper measures the IPC degradation caused by S-NIC's two
//! microarchitectural isolation mechanisms — static cache partitioning
//! (§4.2) and temporal bus partitioning (§4.5) — by running colocated
//! network functions in gem5. This crate reproduces that experiment with
//! a trace-driven model:
//!
//! - [`cache`]: set-associative caches with LRU replacement and three
//!   sharing disciplines (shared, static way-partitioned, SecDCP-style
//!   demand partitioning),
//! - [`bus`]: the internal IO bus with an FCFS arbiter (commodity
//!   baseline) and a temporal-partitioning arbiter (S-NIC),
//! - [`stream`]: the memory-reference stream abstraction that network
//!   functions emit (their real per-packet data-structure walks),
//! - [`engine`]: the multi-stream interleaving simulator that produces
//!   per-NF cycles and IPC (two-phase: bulk branch-free L1 probing plus
//!   an L2-event scheduler, shardable across tenants),
//! - [`reference`]: the per-event engine kept as the executable
//!   specification the production engine is differentially tested
//!   against,
//! - [`simd`]: the std-only u64x4-style lane helpers behind the cache
//!   hit scan,
//! - [`config`]: machine parameters matching the Marvell NIC used in the
//!   iPipe paper (1.2 GHz cores, two-level cache, DDR3-1600).
//!
//! The key reproduction claim: under the S-NIC discipline a victim NF's
//! cycle count is *bit-for-bit independent* of what co-located NFs do
//! (no side channel), at the cost of a small IPC degradation; under the
//! shared/FCFS discipline the victim observes co-runner activity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod cache;
pub mod config;
pub mod engine;
pub mod reference;
pub mod simd;
pub mod stream;

pub use bus::{Arbiter, BusKind, FcfsArbiter, TemporalArbiter};
pub use cache::{Cache, CacheConfig, Partition};
pub use config::MachineConfig;
pub use engine::{
    run_colocated, run_colocated_ids_sink, run_colocated_sink, run_colocated_warm, NfRunStats,
    RunOutcome,
};
pub use reference::{
    run_reference, run_reference_traced, BusGrantRec, L2AccessRec, RecordedTrace, TraceObserver,
};
pub use stream::{
    Access, AccessKind, AccessStream, EventSource, ReplayStream, SharedReplayStream,
    StreamedSource, SyntheticStream, TraceSource, STREAM_CHUNK,
};
