//! The per-event reference engine — the executable specification of the
//! interleaving contract.
//!
//! This is the PR 5 hot path, kept verbatim: one global loop that
//! processes *every* event (hits included) in lexicographic
//! `(local clock, stream index)` order through per-stream [`Cursor`]s.
//! The production engine in [`crate::engine`] restructures that loop
//! into a bulk L1 phase plus an L2-event scheduler for throughput; this
//! module is what it must stay bit-identical to. The differential suite
//! (`tests/engine_differential.rs`) replays random machine
//! configurations and stream mixes through both and asserts equality,
//! so any divergence in the fast path fails loudly instead of drifting
//! the goldens.
//!
//! Keep this implementation boring: clarity over speed is the point.

use snic_telemetry::{metrics, Histogram, NullSink, TelemetrySink};

use crate::bus::BusArbiter;
use crate::cache::{Cache, Partition};
use crate::config::MachineConfig;
use crate::engine::{tagged, validate_domains, NfRunStats, RunOutcome};
use crate::stream::{Access, AccessKind, EventSource};

/// Events pulled per [`Cursor`] refill.
const BATCH: usize = 64;

/// A stream plus a refillable look-ahead buffer.
struct Cursor {
    src: EventSource,
    buf: [Access; BATCH],
    len: u32,
    pos: u32,
}

impl Cursor {
    fn new(src: EventSource) -> Cursor {
        let mut c = Cursor {
            src,
            buf: [Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            }; BATCH],
            len: 0,
            pos: 0,
        };
        c.refill();
        c
    }

    #[inline]
    fn refill(&mut self) {
        self.len = self.src.next_batch(&mut self.buf) as u32;
        self.pos = 0;
    }

    /// Whether another event is buffered (refills happen on `take`, so
    /// this is exact: `false` means the stream is exhausted).
    #[inline]
    fn has_next(&self) -> bool {
        self.pos < self.len
    }

    /// Pop the next buffered event; callers must check [`Cursor::has_next`].
    #[inline]
    fn take(&mut self) -> Access {
        let a = self.buf[self.pos as usize];
        self.pos += 1;
        if self.pos == self.len {
            self.refill();
        }
        a
    }
}

/// Stack-local accumulator for the per-L2-miss bus telemetry, flushed
/// once after the run.
#[derive(Debug, Clone, Default)]
struct BusTelemetry {
    grants: u64,
    delayed: u64,
    wait: Histogram,
    dram: Histogram,
}

/// Observer of the shared-resource events a reference run produces, in
/// interleaved processing order. The leakage/verify cross-checks use
/// this to hand *the very trace that produced a measurement* to the
/// Pass 2 linter; the no-op [`NullObserver`] monomorphizes every hook
/// away, so the unobserved reference path is untouched.
pub trait TraceObserver {
    /// An access reached the shared L2 (i.e. missed the private L1).
    /// `addr` is the tenant-tagged address the L2 saw.
    fn l2_access(&mut self, tenant: u32, addr: u64, hit: bool);
    /// The bus arbiter granted a transfer.
    fn bus_grant(&mut self, domain: u32, ready: u64, duration: u64, granted: u64);
}

/// Observer that records nothing (the default path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TraceObserver for NullObserver {
    #[inline]
    fn l2_access(&mut self, _: u32, _: u64, _: bool) {}
    #[inline]
    fn bus_grant(&mut self, _: u32, _: u64, _: u64, _: u64) {}
}

/// One recorded shared-L2 access (see [`RecordedTrace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L2AccessRec {
    /// Cache tenant slot.
    pub tenant: u32,
    /// Tenant-tagged address.
    pub addr: u64,
    /// Whether the access hit the L2.
    pub hit: bool,
}

/// One recorded bus grant (see [`RecordedTrace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusGrantRec {
    /// Security domain issuing the request.
    pub domain: u32,
    /// Cycle the request became ready.
    pub ready: u64,
    /// Cycles the transfer occupies the bus.
    pub duration: u64,
    /// Cycle the arbiter started the transfer.
    pub granted: u64,
}

/// Everything the shared structures saw during one reference run, in
/// processing order — the raw material for `snic-verify`'s Pass 2
/// trace lints.
#[derive(Debug, Clone, Default)]
pub struct RecordedTrace {
    /// Shared-L2 accesses.
    pub l2: Vec<L2AccessRec>,
    /// Bus grants.
    pub bus: Vec<BusGrantRec>,
}

impl TraceObserver for RecordedTrace {
    fn l2_access(&mut self, tenant: u32, addr: u64, hit: bool) {
        self.l2.push(L2AccessRec { tenant, addr, hit });
    }
    fn bus_grant(&mut self, domain: u32, ready: u64, duration: u64, granted: u64) {
        self.bus.push(BusGrantRec {
            domain,
            ready,
            duration,
            granted,
        });
    }
}

/// Reference form of [`crate::engine::run_colocated`].
pub fn run_reference(cfg: &MachineConfig, streams: Vec<EventSource>) -> RunOutcome {
    run_reference_sink(cfg, streams, &[], &NullSink)
}

/// Run the reference engine while recording every shared-L2 access and
/// bus grant. The statistics are bit-identical to [`run_reference`]
/// (and hence to the production engine); the trace is what Pass 2 lints.
pub fn run_reference_traced(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
) -> (RunOutcome, RecordedTrace) {
    let mut trace = RecordedTrace::default();
    let out = run_reference_observed(cfg, streams, &[], &NullSink, &mut trace);
    (out, trace)
}

/// Reference form of [`crate::engine::run_colocated_sink`]: the
/// event-at-a-time loop the production engine is differentially tested
/// against.
pub fn run_reference_sink<S: TelemetrySink + ?Sized>(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
    sink: &S,
) -> RunOutcome {
    run_reference_observed(cfg, streams, warmup_events, sink, &mut NullObserver)
}

/// [`run_reference_sink`] with a [`TraceObserver`] witnessing every
/// shared-L2 access and bus grant in processing order.
pub fn run_reference_observed<S: TelemetrySink + ?Sized, O: TraceObserver>(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
    sink: &S,
    observer: &mut O,
) -> RunOutcome {
    assert!(!streams.is_empty(), "need at least one stream");
    let ids: Vec<u32> = (0..streams.len() as u32).collect();
    validate_domains(cfg, &ids, streams.len());
    let n = streams.len();
    let mut l1: Vec<Cache> = (0..n)
        .map(|_| Cache::new(cfg.l1, Partition::Shared))
        .collect();
    let mut l2 = Cache::new(cfg.l2, cfg.l2_partition.clone());
    let mut arbiter = BusArbiter::for_kind(cfg.bus, cfg.epoch_cycles);

    let mut stats: Vec<NfRunStats> = (0..n)
        .map(|_| NfRunStats {
            insns: 0,
            cycles: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
        })
        .collect();
    // Per-NF event counts and the stats snapshot taken when warmup ends.
    let mut events: Vec<u64> = vec![0; n];
    let mut snapshot: Vec<Option<NfRunStats>> = vec![None; n];
    let telemetry_on = sink.enabled();
    let mut bus_tel: Vec<BusTelemetry> = if telemetry_on {
        vec![BusTelemetry::default(); n]
    } else {
        Vec::new()
    };

    // Batched cursor per NF; `keys[i]` is stream `i`'s next-event key
    // `(local clock, i)` — the index makes every key distinct — or
    // `DEAD` once the stream is exhausted.
    let mut cursors: Vec<Cursor> = streams.into_iter().map(Cursor::new).collect();
    const DEAD: (u64, usize) = (u64::MAX, usize::MAX);
    let mut keys: Vec<(u64, usize)> = cursors
        .iter()
        .enumerate()
        .map(|(i, c)| if c.has_next() { (0, i) } else { DEAD })
        .collect();

    loop {
        // Pick the stream with the smallest key and cache the runner-up
        // in one pass (keys are distinct, so the second-smallest key IS
        // the minimum over the other streams).
        let mut best = DEAD;
        let mut runner_up = DEAD;
        for &k in &keys {
            if k < best {
                runner_up = best;
                best = k;
            } else if k < runner_up {
                runner_up = k;
            }
        }
        if best == DEAD {
            break;
        }
        let (mut t, i) = best;

        let warm = warmup_events.get(i).copied().unwrap_or(0);
        let cur = &mut cursors[i];
        let st = &mut stats[i];
        let l1c = &mut l1[i];
        let mut ev = events[i];

        // Run ahead: keep draining stream `i` while its key stays below
        // the (unchanged) runner-up.
        loop {
            let access = cur.take();
            let mut now = t + u64::from(access.insns);
            st.insns += u64::from(access.insns);

            let a = tagged(i, access.addr);
            if l1c.access(i as u32, a) {
                st.l1_hits += 1;
            } else {
                st.l1_misses += 1;
                let l2_hit = l2.access(i as u32, a);
                observer.l2_access(i as u32, a, l2_hit);
                if l2_hit {
                    st.l2_hits += 1;
                    now += cfg.l2_hit_cycles;
                } else {
                    st.l2_misses += 1;
                    let ready = now + cfg.l2_hit_cycles;
                    let start = arbiter.grant(i as u32, ready, cfg.bus_beat_cycles);
                    observer.bus_grant(i as u32, ready, cfg.bus_beat_cycles, start);
                    if telemetry_on {
                        let t = &mut bus_tel[i];
                        t.grants += 1;
                        t.wait.record(start.saturating_sub(ready));
                        t.dram.record(cfg.dram_cycles);
                        if start > ready {
                            t.delayed += 1;
                        }
                    }
                    now = start + cfg.bus_beat_cycles + cfg.dram_cycles;
                }
            }

            ev += 1;
            if ev == warm {
                st.cycles = now;
                snapshot[i] = Some(st.clone());
            }
            if !cur.has_next() {
                st.cycles = now;
                keys[i] = DEAD;
                break;
            }
            if runner_up < (now, i) {
                keys[i] = (now, i);
                break;
            }
            t = now;
        }
        events[i] = ev;
    }

    // Subtract the warmup portion (streams shorter than the warmup keep
    // their full statistics).
    let nfs = stats
        .into_iter()
        .zip(snapshot)
        .map(|(total, snap)| match snap {
            Some(w) => NfRunStats {
                insns: total.insns - w.insns,
                cycles: total.cycles.saturating_sub(w.cycles),
                l1_hits: total.l1_hits - w.l1_hits,
                l1_misses: total.l1_misses - w.l1_misses,
                l2_hits: total.l2_hits - w.l2_hits,
                l2_misses: total.l2_misses - w.l2_misses,
            },
            None => total,
        })
        .collect::<Vec<NfRunStats>>();
    if telemetry_on {
        for (i, s) in nfs.iter().enumerate() {
            sink.span_begin(i as u64, "uarch.nf_run", 0);
            sink.span_end(i as u64, "uarch.nf_run", s.cycles);
            sink.counter_add(i as u64, metrics::INSNS, s.insns);
            sink.counter_add(i as u64, metrics::CYCLES, s.cycles);
            sink.counter_add(i as u64, metrics::L1_HITS, s.l1_hits);
            sink.counter_add(i as u64, metrics::L1_MISSES, s.l1_misses);
            sink.counter_add(i as u64, metrics::L2_HITS, s.l2_hits);
            sink.counter_add(i as u64, metrics::L2_MISSES, s.l2_misses);
            let t = &bus_tel[i];
            if t.grants > 0 {
                sink.counter_add(i as u64, metrics::BUS_GRANTS, t.grants);
                sink.merge_hist(i as u64, metrics::BUS_WAIT_CYCLES, &t.wait);
                sink.merge_hist(i as u64, metrics::DRAM_CYCLES, &t.dram);
            }
            if t.delayed > 0 {
                sink.counter_add(i as u64, metrics::BUS_DELAYED, t.delayed);
            }
        }
    }
    RunOutcome { nfs }
}
