//! Machine parameters for the microarchitectural simulator.
//!
//! Defaults follow §5.3 of the paper: "Our simulated NIC had multiple
//! out-of-order, 1.2 GHz ARM cores that used a two-level cache and 16 GB
//! of 1,600 MHz DDR3 RAM. We configured the core frequency, cache line
//! size, L1 cache size, and cache associativity and latency to match
//! those of the Marvell smart NIC described in the iPipe paper."

use crate::bus::BusKind;
use crate::cache::{CacheConfig, Partition};

/// Full machine configuration for one colocation run.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Core clock in Hz.
    pub core_hz: u64,
    /// Per-core private L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// L2 sharing discipline.
    pub l2_partition: Partition,
    /// L1-miss / L2-hit penalty in cycles.
    pub l2_hit_cycles: u64,
    /// DRAM access latency in cycles (after winning the bus).
    pub dram_cycles: u64,
    /// Bus occupancy of one cache-line transfer, in cycles.
    pub bus_beat_cycles: u64,
    /// Bus arbitration discipline.
    pub bus: BusKind,
    /// Temporal-partitioning epoch length in cycles (used when `bus` is
    /// [`BusKind::Temporal`]).
    pub epoch_cycles: u64,
}

impl MachineConfig {
    /// The commodity baseline: shared L2, FCFS bus.
    pub fn commodity(tenants: u32, l2_bytes: u64) -> MachineConfig {
        let _ = tenants; // Baseline has the same cotenancy, no partitioning.
        MachineConfig {
            core_hz: 1_200_000_000,
            l1: CacheConfig {
                size: 32 << 10,
                ways: 4,
                line: 64,
            },
            l2: CacheConfig {
                size: l2_bytes,
                ways: 16,
                line: 64,
            },
            l2_partition: Partition::Shared,
            l2_hit_cycles: 12,
            dram_cycles: 110,
            bus_beat_cycles: 16,
            bus: BusKind::Fcfs,
            epoch_cycles: 96,
        }
    }

    /// The S-NIC configuration: statically way-partitioned L2, temporal
    /// bus partitioning across `tenants` domains.
    pub fn snic(tenants: u32, l2_bytes: u64) -> MachineConfig {
        MachineConfig {
            l2_partition: Partition::StaticWays { tenants },
            bus: BusKind::Temporal { domains: tenants },
            ..MachineConfig::commodity(tenants, l2_bytes)
        }
    }

    /// Widen (or narrow) the L2 associativity. The Marvell-matching
    /// default is 16 ways, which caps static way partitioning at 16
    /// tenants; the 32–64-tenant colocation sweeps model a
    /// higher-associativity L2 (one way per tenant, up to the engine's
    /// 64-way scan limit) so every tenant still gets a private slice.
    pub fn with_l2_ways(mut self, ways: u32) -> MachineConfig {
        assert!(
            (1..=64).contains(&ways),
            "L2 ways must be 1..=64 (bitmask scan width)"
        );
        self.l2.ways = ways;
        self
    }

    /// S-NIC variant using SecDCP demand partitioning instead of static
    /// slices (the §4.2 alternative; ablated in the benches).
    pub fn snic_secdcp(allocation: Vec<u32>, l2_bytes: u64) -> MachineConfig {
        let tenants = allocation.len() as u32;
        MachineConfig {
            l2_partition: Partition::SecDcp { allocation },
            bus: BusKind::Temporal { domains: tenants },
            ..MachineConfig::commodity(tenants, l2_bytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commodity_defaults_match_paper_machine() {
        let c = MachineConfig::commodity(4, 4 << 20);
        assert_eq!(c.core_hz, 1_200_000_000);
        assert_eq!(c.l2.size, 4 << 20);
        assert_eq!(c.l1.size, 32 << 10);
        assert_eq!(c.l2_partition, Partition::Shared);
        assert_eq!(c.bus, BusKind::Fcfs);
    }

    #[test]
    fn snic_flips_both_mechanisms() {
        let c = MachineConfig::snic(4, 4 << 20);
        assert_eq!(c.l2_partition, Partition::StaticWays { tenants: 4 });
        assert_eq!(c.bus, BusKind::Temporal { domains: 4 });
        // Everything else matches the baseline so the comparison isolates
        // the two mechanisms.
        let b = MachineConfig::commodity(4, 4 << 20);
        assert_eq!(c.dram_cycles, b.dram_cycles);
        assert_eq!(c.l2_hit_cycles, b.l2_hit_cycles);
    }

    #[test]
    fn secdcp_domain_count_follows_allocation() {
        let c = MachineConfig::snic_secdcp(vec![4, 4, 8], 4 << 20);
        assert_eq!(c.bus, BusKind::Temporal { domains: 3 });
    }
}
