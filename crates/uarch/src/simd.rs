//! Manual u64x4-style lane operations for the cache hit scan.
//!
//! The workspace is std-only (no `wide`, no `packed_simd`), so the
//! "vector" forms here are written the way auto-vectorizers like them:
//! fixed-width four-lane bodies over `chunks_exact(4)` with no
//! cross-lane dependencies, which LLVM lowers to `pcmpeqq`-style
//! compares on x86 and 128-bit NEON compares on ARM. The scalar forms
//! are kept as the executable specification — the cache differential
//! suite pits the two against each other over random inputs, and the
//! flat cache always goes through the lane form.

/// Number of lanes the vector forms process per step.
pub const LANES: usize = 4;

/// Bitmask of ways in `tags` equal to `needle` (bit `w` set iff
/// `tags[w] == needle`), computed one element at a time.
///
/// This is the reference implementation the lane form must match; it is
/// also the fallback body for tag slices shorter than one lane block.
#[inline]
pub fn match_mask_scalar(tags: &[u64], needle: u64) -> u64 {
    debug_assert!(tags.len() <= 64, "mask form packs at most 64 ways");
    let mut mask = 0u64;
    for (w, &t) in tags.iter().enumerate() {
        mask |= u64::from(t == needle) << w;
    }
    mask
}

/// Bitmask of ways in `tags` equal to `needle`, computed [`LANES`] ways
/// per step.
///
/// Each four-lane block is compared with independent equality tests and
/// folded into the mask with four disjoint shifts — exactly the shape
/// `u64x4::cmp_eq` + movemask would produce, with the remainder tail
/// falling back to [`match_mask_scalar`]. Equal to the scalar form for
/// every input (property-tested in `tests/cache_differential.rs`).
#[inline]
pub fn match_mask(tags: &[u64], needle: u64) -> u64 {
    debug_assert!(tags.len() <= 64, "mask form packs at most 64 ways");
    let mut mask = 0u64;
    let mut chunks = tags.chunks_exact(LANES);
    let mut base = 0u32;
    for c in chunks.by_ref() {
        let m = u64::from(c[0] == needle)
            | u64::from(c[1] == needle) << 1
            | u64::from(c[2] == needle) << 2
            | u64::from(c[3] == needle) << 3;
        mask |= m << base;
        base += LANES as u32;
    }
    mask | match_mask_scalar(chunks.remainder(), needle) << base
}

/// Index of the first minimum element of `stamps` — the LRU victim rule
/// (invalid lines carry stamp 0 and therefore win; ties resolve to the
/// lowest way).
///
/// Written select-style (no early exit, no data-dependent branch body)
/// so the comparison lowers to conditional moves; an LRU victim is
/// data-dependent and an early-exit scan mispredicts on nearly every
/// miss.
#[inline]
pub fn min_stamp_way(stamps: &[u64]) -> usize {
    let mut best = u64::MAX;
    let mut way = 0usize;
    for (w, &s) in stamps.iter().enumerate() {
        let better = s < best;
        way = if better { w } else { way };
        best = if better { s } else { best };
    }
    way
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_mask_matches_scalar_on_all_widths() {
        // Every width 0..=19 with a repeating tag pattern: the lane form
        // must agree with the scalar form including the remainder tail.
        for len in 0..20usize {
            let tags: Vec<u64> = (0..len as u64).map(|w| w % 3).collect();
            for needle in 0..4u64 {
                assert_eq!(
                    match_mask(&tags, needle),
                    match_mask_scalar(&tags, needle),
                    "len={len} needle={needle}"
                );
            }
        }
    }

    #[test]
    fn mask_bits_identify_matching_ways() {
        let tags = [7u64, 9, 7, 1, 7, 2, 2, 9];
        let m = match_mask(&tags, 7);
        assert_eq!(m, 0b0001_0101);
        assert_eq!(match_mask(&tags, 2), 0b0110_0000);
        assert_eq!(match_mask(&tags, 42), 0);
    }

    #[test]
    fn min_stamp_prefers_first_smallest() {
        assert_eq!(min_stamp_way(&[5, 3, 3, 9]), 1, "ties resolve low");
        assert_eq!(min_stamp_way(&[0, 0, 0, 0]), 0);
        assert_eq!(min_stamp_way(&[9, 8, 7, 1]), 3);
        assert_eq!(min_stamp_way(&[2]), 0);
    }
}
