//! The multi-stream interleaving engine.
//!
//! Each colocated NF runs on its own core with a private L1; L1 misses go
//! to the shared L2; L2 misses cross the IO bus to DRAM. The engine
//! advances whichever NF has the smallest local clock, so shared-resource
//! interleaving is deterministic and physically plausible. Per-NF IPC is
//! `instructions / final cycle count` — "for a function that always has
//! work to do, IPC is directly correlated with function throughput"
//! (§5.3).
//!
//! # Hot-path shape
//!
//! The processing order is defined as the lexicographic order of
//! `(local clock, stream index)` over all pending events — that order,
//! nothing else, is the determinism contract every golden snapshot
//! pins. The loop exploits two consequences of it:
//!
//! - **Run-ahead**: after processing an event of stream `i`, if `i`'s
//!   new key `(now, i)` is still below every other stream's key, the
//!   next global event is again from `i` — so the loop keeps draining
//!   `i` against a cached copy of the runner-up key until another
//!   stream's key is smaller. Keys are distinct (per-stream indices
//!   break ties), so `runner_up < (now, i)` is the exact condition.
//!   Stream counts are small (≤ the NIC's core count), so the "pick
//!   the next stream" step is a linear scan of a key array rather than
//!   a binary heap — no sift branches, no per-switch allocation. With
//!   one stream the scan degenerates and the run is a single drain.
//! - **Batched pulls**: events arrive through a per-stream `Cursor`
//!   holding a stack buffer refilled via [`EventSource::next_batch`],
//!   so per-event stream dispatch and per-event `Option` bookkeeping
//!   both disappear. Streams are independent, so eager prefetch cannot
//!   reorder anything.

use snic_telemetry::{metrics, Histogram, NullSink, TelemetrySink};

use crate::bus::BusArbiter;
use crate::cache::{Cache, Partition};
use crate::config::MachineConfig;
use crate::stream::{Access, AccessKind, EventSource};

/// Events pulled per [`Cursor`] refill. 64 events × 16 bytes fills a
/// KiB of stack per stream — big enough to amortize dispatch, small
/// enough to stay cache-resident at every colocation scale.
const BATCH: usize = 64;

/// A stream plus a refillable look-ahead buffer.
struct Cursor {
    src: EventSource,
    buf: [Access; BATCH],
    len: u32,
    pos: u32,
}

impl Cursor {
    fn new(src: EventSource) -> Cursor {
        let mut c = Cursor {
            src,
            buf: [Access {
                insns: 1,
                addr: 0,
                kind: AccessKind::Load,
            }; BATCH],
            len: 0,
            pos: 0,
        };
        c.refill();
        c
    }

    #[inline]
    fn refill(&mut self) {
        self.len = self.src.next_batch(&mut self.buf) as u32;
        self.pos = 0;
    }

    /// Whether another event is buffered (refills happen on `take`, so
    /// this is exact: `false` means the stream is exhausted).
    #[inline]
    fn has_next(&self) -> bool {
        self.pos < self.len
    }

    /// Pop the next buffered event; callers must check [`Cursor::has_next`].
    #[inline]
    fn take(&mut self) -> Access {
        let a = self.buf[self.pos as usize];
        self.pos += 1;
        if self.pos == self.len {
            self.refill();
        }
        a
    }
}

/// Per-NF statistics from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NfRunStats {
    /// Instructions retired.
    pub insns: u64,
    /// Final cycle count (the NF's local clock when its stream ended).
    pub cycles: u64,
    /// L1 hits/misses.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

impl NfRunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insns as f64 / self.cycles as f64
        }
    }
}

/// Outcome of one colocation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-NF statistics, indexed like the input stream vector.
    pub nfs: Vec<NfRunStats>,
}

impl RunOutcome {
    /// IPC degradation of NF `i` relative to `baseline` (same index).
    ///
    /// Positive = this run is slower than the baseline.
    pub fn ipc_degradation_vs(&self, baseline: &RunOutcome, i: usize) -> f64 {
        let b = baseline.nfs[i].ipc();
        let s = self.nfs[i].ipc();
        if b == 0.0 {
            0.0
        } else {
            (b - s) / b * 100.0
        }
    }
}

/// Stack-local accumulator for the per-L2-miss bus telemetry. The hot
/// loop batches into this and flushes once after the run, so a live
/// sink's synchronization cost is paid per run, not per DRAM access.
#[derive(Debug, Clone, Default)]
struct BusTelemetry {
    grants: u64,
    delayed: u64,
    wait: Histogram,
    dram: Histogram,
}

/// Width of an NF's private address space: addresses must fit in
/// [`NF_ADDR_BITS`] bits so the tag in the bits above never collides
/// with another NF's range.
pub const NF_ADDR_BITS: u32 = 40;

/// Address-space tag: keep different NFs' lines from aliasing in shared
/// caches. NF private address spaces are < 2^40 bytes; an address at or
/// above that bound would silently alias into a *different* NF's tagged
/// range in the shared L2 — exactly the cross-tenant sharing the tag
/// exists to rule out — so debug builds reject it outright.
fn tagged(nf: usize, addr: u64) -> u64 {
    debug_assert!(
        addr < (1u64 << NF_ADDR_BITS),
        "address {addr:#x} of NF {nf} exceeds the 2^{NF_ADDR_BITS}-byte private \
         address space and would alias another NF's cache lines"
    );
    ((nf as u64) << NF_ADDR_BITS) | (addr & ((1u64 << NF_ADDR_BITS) - 1))
}

/// Run `streams` to exhaustion under `cfg`.
///
/// # Panics
///
/// Panics if `streams` is empty, or if a partitioned configuration has
/// fewer tenants than streams.
pub fn run_colocated(cfg: &MachineConfig, streams: Vec<EventSource>) -> RunOutcome {
    run_colocated_warm(cfg, streams, &[])
}

/// Like [`run_colocated`], but statistics only cover events after the
/// first `warmup_events` of each stream — mirroring §5.3's methodology
/// ("we ran 1 billion instructions to warm microarchitectural structures
/// like caches and branch predictors. We then collected experimental
/// data...").
pub fn run_colocated_warm(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
) -> RunOutcome {
    run_colocated_sink(cfg, streams, warmup_events, &NullSink)
}

/// Like [`run_colocated_warm`], with telemetry.
///
/// The sink is a monomorphized generic: with [`NullSink`] every
/// `if sink.enabled()` guard folds to a constant `false` and the
/// instrumentation vanishes, so statistics are byte-identical with the
/// sink on or off (asserted by this module's tests and by
/// `snic-sim`/`snic-bench` determinism suites). Timestamps reported to
/// the sink are engine cycles; domains are stream indices.
pub fn run_colocated_sink<S: TelemetrySink + ?Sized>(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
    sink: &S,
) -> RunOutcome {
    assert!(!streams.is_empty(), "need at least one stream");
    if let Partition::StaticWays { tenants } = cfg.l2_partition {
        assert!(
            tenants as usize >= streams.len(),
            "more streams than cache partitions"
        );
    }
    let n = streams.len();
    let mut l1: Vec<Cache> = (0..n)
        .map(|_| Cache::new(cfg.l1, Partition::Shared))
        .collect();
    let mut l2 = Cache::new(cfg.l2, cfg.l2_partition.clone());
    let mut arbiter = BusArbiter::for_kind(cfg.bus, cfg.epoch_cycles);

    let mut stats: Vec<NfRunStats> = (0..n)
        .map(|_| NfRunStats {
            insns: 0,
            cycles: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
        })
        .collect();
    // Per-NF event counts and the stats snapshot taken when warmup ends.
    let mut events: Vec<u64> = vec![0; n];
    let mut snapshot: Vec<Option<NfRunStats>> = vec![None; n];
    // With NullSink this bool is a monomorphized constant `false`, so
    // the accumulators and every guarded block below fold away.
    let telemetry_on = sink.enabled();
    let mut bus_tel: Vec<BusTelemetry> = if telemetry_on {
        vec![BusTelemetry::default(); n]
    } else {
        Vec::new()
    };

    // Batched cursor per NF; `keys[i]` is stream `i`'s next-event key
    // `(local clock, i)` — the index makes every key distinct — or
    // `DEAD` once the stream is exhausted.
    let mut cursors: Vec<Cursor> = streams.into_iter().map(Cursor::new).collect();
    const DEAD: (u64, usize) = (u64::MAX, usize::MAX);
    let mut keys: Vec<(u64, usize)> = cursors
        .iter()
        .enumerate()
        .map(|(i, c)| if c.has_next() { (0, i) } else { DEAD })
        .collect();

    loop {
        // Pick the stream with the smallest key and cache the runner-up
        // in one pass (keys are distinct, so the second-smallest key IS
        // the minimum over the other streams): stream counts are core
        // counts, so a linear scan beats heap maintenance per event.
        let mut best = DEAD;
        let mut runner_up = DEAD;
        for &k in &keys {
            if k < best {
                runner_up = best;
                best = k;
            } else if k < runner_up {
                runner_up = k;
            }
        }
        if best == DEAD {
            break;
        }
        let (mut t, i) = best;

        let warm = warmup_events.get(i).copied().unwrap_or(0);
        let cur = &mut cursors[i];
        let st = &mut stats[i];
        let l1c = &mut l1[i];
        let mut ev = events[i];

        // Run ahead: keep draining stream `i` while its key stays below
        // the (unchanged) runner-up — a single drain when it is the only
        // live stream.
        loop {
            let access = cur.take();
            let mut now = t + u64::from(access.insns);
            st.insns += u64::from(access.insns);

            let a = tagged(i, access.addr);
            if l1c.access(i as u32, a) {
                st.l1_hits += 1;
            } else {
                st.l1_misses += 1;
                if l2.access(i as u32, a) {
                    st.l2_hits += 1;
                    now += cfg.l2_hit_cycles;
                } else {
                    st.l2_misses += 1;
                    let ready = now + cfg.l2_hit_cycles;
                    let start = arbiter.grant(i as u32, ready, cfg.bus_beat_cycles);
                    if telemetry_on {
                        let t = &mut bus_tel[i];
                        t.grants += 1;
                        t.wait.record(start.saturating_sub(ready));
                        t.dram.record(cfg.dram_cycles);
                        if start > ready {
                            t.delayed += 1;
                        }
                    }
                    now = start + cfg.bus_beat_cycles + cfg.dram_cycles;
                }
            }

            ev += 1;
            if ev == warm {
                // `cycles` is only read at snapshot time and after the
                // stream ends, so the hot loop skips the per-event store.
                st.cycles = now;
                snapshot[i] = Some(st.clone());
            }
            if !cur.has_next() {
                st.cycles = now;
                keys[i] = DEAD;
                break;
            }
            if runner_up < (now, i) {
                keys[i] = (now, i);
                break;
            }
            t = now;
        }
        events[i] = ev;
    }

    // Subtract the warmup portion (streams shorter than the warmup keep
    // their full statistics).
    let nfs = stats
        .into_iter()
        .zip(snapshot)
        .map(|(total, snap)| match snap {
            Some(w) => NfRunStats {
                insns: total.insns - w.insns,
                cycles: total.cycles.saturating_sub(w.cycles),
                l1_hits: total.l1_hits - w.l1_hits,
                l1_misses: total.l1_misses - w.l1_misses,
                l2_hits: total.l2_hits - w.l2_hits,
                l2_misses: total.l2_misses - w.l2_misses,
            },
            None => total,
        })
        .collect::<Vec<NfRunStats>>();
    if telemetry_on {
        for (i, s) in nfs.iter().enumerate() {
            sink.span_begin(i as u64, "uarch.nf_run", 0);
            sink.span_end(i as u64, "uarch.nf_run", s.cycles);
            sink.counter_add(i as u64, metrics::INSNS, s.insns);
            sink.counter_add(i as u64, metrics::CYCLES, s.cycles);
            sink.counter_add(i as u64, metrics::L1_HITS, s.l1_hits);
            sink.counter_add(i as u64, metrics::L1_MISSES, s.l1_misses);
            sink.counter_add(i as u64, metrics::L2_HITS, s.l2_hits);
            sink.counter_add(i as u64, metrics::L2_MISSES, s.l2_misses);
            // Flush the batched bus telemetry. Guards keep a miss-free
            // run from materializing zero-valued entries, matching the
            // per-sample behaviour this replaces.
            let t = &bus_tel[i];
            if t.grants > 0 {
                sink.counter_add(i as u64, metrics::BUS_GRANTS, t.grants);
                sink.merge_hist(i as u64, metrics::BUS_WAIT_CYCLES, &t.wait);
                sink.merge_hist(i as u64, metrics::DRAM_CYCLES, &t.dram);
            }
            if t.delayed > 0 {
                sink.counter_add(i as u64, metrics::BUS_DELAYED, t.delayed);
            }
        }
    }
    RunOutcome { nfs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SyntheticStream;

    fn streams(n: usize, working_set: u64, events: u64) -> Vec<EventSource> {
        (0..n)
            .map(|i| {
                EventSource::from(SyntheticStream::new(
                    working_set,
                    8,
                    4,
                    events,
                    1000 + i as u64,
                ))
            })
            .collect()
    }

    #[test]
    fn tiny_working_set_achieves_high_ipc() {
        // Everything fits in L1: IPC should approach 1.
        let cfg = MachineConfig::commodity(1, 4 << 20);
        let out = run_colocated(&cfg, streams(1, 4 << 10, 50_000));
        assert!(out.nfs[0].ipc() > 0.95, "ipc = {}", out.nfs[0].ipc());
    }

    #[test]
    fn dram_bound_working_set_crushes_ipc() {
        let cfg = MachineConfig::commodity(1, 256 << 10);
        // Working set far beyond L2.
        let out = run_colocated(&cfg, streams(1, 64 << 20, 20_000));
        assert!(out.nfs[0].ipc() < 0.3, "ipc = {}", out.nfs[0].ipc());
        assert!(out.nfs[0].l2_misses > out.nfs[0].l2_hits);
    }

    #[test]
    fn partitioning_degrades_ipc_when_hot_set_marginal() {
        // Hot set ~2 MB: fits a 4 MB shared L2 shared by 2 NFs poorly
        // but fits even worse in a hard 1/2 slice.
        let base = run_colocated(
            &MachineConfig::commodity(2, 4 << 20),
            streams(2, 3 << 20, 60_000),
        );
        let snic = run_colocated(
            &MachineConfig::snic(2, 4 << 20),
            streams(2, 3 << 20, 60_000),
        );
        let deg = snic.ipc_degradation_vs(&base, 0);
        assert!(deg > 0.0, "expected positive degradation, got {deg}");
        assert!(deg < 60.0, "degradation implausibly large: {deg}");
    }

    #[test]
    fn snic_victim_cycles_independent_of_attacker() {
        // Run the victim alone (padded with an idle co-tenant slot) vs
        // with a thrashing attacker, both under the S-NIC discipline.
        let cfg = MachineConfig::snic(2, 1 << 20);
        let victim = || EventSource::from(SyntheticStream::new(2 << 20, 6, 3, 30_000, 7));
        let idle = EventSource::from(SyntheticStream::new(64, 1, 0, 1, 1));
        let attacker = EventSource::from(SyntheticStream::new(32 << 20, 1, 1, 120_000, 9));

        let quiet = run_colocated(&cfg, vec![victim(), idle]);
        let noisy = run_colocated(&cfg, vec![victim(), attacker]);
        assert_eq!(
            quiet.nfs[0].cycles, noisy.nfs[0].cycles,
            "S-NIC victim timing must not depend on co-tenant activity"
        );
        assert_eq!(quiet.nfs[0].l2_misses, noisy.nfs[0].l2_misses);
    }

    #[test]
    fn commodity_victim_cycles_depend_on_attacker() {
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let victim = || EventSource::from(SyntheticStream::new(2 << 20, 6, 3, 30_000, 7));
        let idle = EventSource::from(SyntheticStream::new(64, 1, 0, 1, 1));
        let attacker = EventSource::from(SyntheticStream::new(32 << 20, 1, 1, 120_000, 9));

        let quiet = run_colocated(&cfg, vec![victim(), idle]);
        let noisy = run_colocated(&cfg, vec![victim(), attacker]);
        assert_ne!(
            quiet.nfs[0].cycles, noisy.nfs[0].cycles,
            "commodity victim timing should leak co-tenant activity"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = MachineConfig::snic(4, 4 << 20);
        let a = run_colocated(&cfg, streams(4, 1 << 20, 10_000));
        let b = run_colocated(&cfg, streams(4, 1 << 20, 10_000));
        for i in 0..4 {
            assert_eq!(a.nfs[i], b.nfs[i]);
        }
    }

    #[test]
    fn stats_accounting_consistent() {
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let out = run_colocated(&cfg, streams(2, 8 << 20, 5_000));
        for s in &out.nfs {
            assert_eq!(s.l1_hits + s.l1_misses, 5_000);
            assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses);
            assert_eq!(s.insns, 5_000 * 8);
            assert!(s.cycles >= s.insns);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streams_panics() {
        let _ = run_colocated(&MachineConfig::commodity(1, 1 << 20), Vec::new());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "would alias another NF's cache lines")]
    fn out_of_range_address_rejected() {
        use crate::stream::ReplayStream;
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let s = vec![EventSource::from(ReplayStream::new(vec![Access {
            insns: 1,
            addr: 1u64 << NF_ADDR_BITS,
            kind: AccessKind::Load,
        }]))];
        let _ = run_colocated(&cfg, s);
    }

    #[test]
    fn boundary_address_accepted_and_isolated() {
        // The largest legal address still tags into the owner's own
        // range: two NFs touching it must not share a cache line.
        use crate::stream::ReplayStream;
        let top = (1u64 << NF_ADDR_BITS) - 64;
        let mk = || {
            (0..2)
                .map(|_| {
                    EventSource::from(ReplayStream::new(vec![
                        Access {
                            insns: 1,
                            addr: top,
                            kind: AccessKind::Load,
                        };
                        2
                    ]))
                })
                .collect::<Vec<_>>()
        };
        let out = run_colocated(&MachineConfig::commodity(2, 1 << 20), mk());
        // Proper tagging: both NFs cold-miss the shared L2 on their
        // first touch. Truncation aliasing would let the second NF hit
        // the first NF's line instead.
        for s in &out.nfs {
            assert_eq!(s.l1_misses, 1);
            assert_eq!(s.l1_hits, 1);
            assert_eq!(s.l2_misses, 1, "tagged addresses must not alias across NFs");
            assert_eq!(s.l2_hits, 0);
        }
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        // A stream that fits L1: after warmup the measured window has
        // zero L1 misses, while the unwarmed run reports the cold ones.
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let mk = || {
            vec![EventSource::from(SyntheticStream::new(
                8 << 10,
                8,
                4,
                40_000,
                5,
            ))]
        };
        let cold = run_colocated(&cfg, mk());
        let warm = run_colocated_warm(&cfg, mk(), &[20_000]);
        assert!(cold.nfs[0].l1_misses > 0);
        assert_eq!(
            warm.nfs[0].l1_misses, 0,
            "all cold misses fall in the warmup window"
        );
        assert_eq!(warm.nfs[0].l1_hits + warm.nfs[0].l1_misses, 20_000);
        assert!(warm.nfs[0].ipc() > cold.nfs[0].ipc());
    }

    #[test]
    fn warmup_longer_than_stream_keeps_full_stats() {
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let s = vec![EventSource::from(SyntheticStream::new(
            4 << 10,
            8,
            4,
            1_000,
            5,
        ))];
        let out = run_colocated_warm(&cfg, s, &[50_000]);
        assert_eq!(out.nfs[0].l1_hits + out.nfs[0].l1_misses, 1_000);
    }

    #[test]
    fn sink_on_stats_equal_sink_off() {
        use snic_telemetry::Recorder;
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let off = run_colocated(&cfg, streams(2, 8 << 20, 5_000));
        let recorder = Recorder::new();
        let on = run_colocated_sink(&cfg, streams(2, 8 << 20, 5_000), &[], &recorder);
        assert_eq!(on.nfs, off.nfs, "telemetry must not perturb the simulation");

        // The recorded aggregates match the returned statistics.
        let summary = recorder.summary();
        for (i, s) in on.nfs.iter().enumerate() {
            let c = |m: &str| summary.counters[&(i as u64, m.to_string())];
            assert_eq!(c(metrics::INSNS), s.insns);
            assert_eq!(c(metrics::CYCLES), s.cycles);
            assert_eq!(c(metrics::L2_MISSES), s.l2_misses);
            assert_eq!(c(metrics::BUS_GRANTS), s.l2_misses);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 2 * on.nfs.len(), "one span per NF");
    }

    #[test]
    fn degradation_grows_with_cotenancy() {
        // Median over the tenants at each cotenancy level; more tenants →
        // thinner slices → more degradation (Figure 5b's trend).
        let ws = 2 << 20;
        let deg_at = |n: usize| {
            let base = run_colocated(
                &MachineConfig::commodity(n as u32, 4 << 20),
                streams(n, ws, 20_000),
            );
            let snic = run_colocated(
                &MachineConfig::snic(n as u32, 4 << 20),
                streams(n, ws, 20_000),
            );
            let mut degs: Vec<f64> = (0..n).map(|i| snic.ipc_degradation_vs(&base, i)).collect();
            degs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            degs[n / 2]
        };
        let d2 = deg_at(2);
        let d8 = deg_at(8);
        assert!(
            d8 > d2,
            "expected monotone degradation: 2NF={d2:.2}% 8NF={d8:.2}%"
        );
    }
}
