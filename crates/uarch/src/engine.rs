//! The multi-stream interleaving engine.
//!
//! Each colocated NF runs on its own core with a private L1; L1 misses go
//! to the shared L2; L2 misses cross the IO bus to DRAM. The engine
//! advances whichever NF has the smallest local clock, so shared-resource
//! interleaving is deterministic and physically plausible. Per-NF IPC is
//! `instructions / final cycle count` — "for a function that always has
//! work to do, IPC is directly correlated with function throughput"
//! (§5.3).
//!
//! # Determinism contract
//!
//! The processing order is defined as the lexicographic order of
//! `(local clock, stream index)` over all pending events — that order,
//! nothing else, is the contract every golden snapshot pins. The
//! event-at-a-time loop that implements it literally lives on as the
//! executable specification in [`crate::reference`]; this module is the
//! production engine, restructured for throughput and differentially
//! tested against the reference (`tests/engine_differential.rs`).
//!
//! # Two-phase hot path
//!
//! The restructuring exploits one architectural fact: **L1s are
//! private**. A stream's L1 hit/miss sequence depends only on its own
//! address sequence, never on co-tenant activity, so L1 work needs no
//! global interleaving at all. Each stream therefore runs in two
//! phases:
//!
//! - **Bulk L1 phase** ([`Lane::refill`]): pull a chunk of events,
//!   decode all addresses in one batched pass (tag OR + prefix-sum of
//!   instruction counts), and probe the private L1 branch-free — the
//!   tag compare is the [`crate::simd`] four-lane scan, the victim pick
//!   a select chain, and the fill an unconditional store (on a hit the
//!   stored tag is unchanged, so "always store" needs no branch). L1
//!   misses are compacted into a dense queue of *L2 events*.
//! - **L2-event scheduler**: only those L2 events re-enter the global
//!   interleaved loop, keyed by `(clock before the missing event,
//!   stream index)` — exactly the key the per-event loop would give
//!   them, with hit timing collapsed into prefix-sum arithmetic. Shared
//!   state (L2 contents, bus arbiter) is touched in the identical
//!   order, so commodity coupling (shared LRU + FCFS queueing) is
//!   reproduced bit-for-bit; the run-ahead and runner-up-caching tricks
//!   from the per-event loop carry over unchanged.
//!
//! Between two L1 misses a stream's clock advances by the pure sum of
//! instruction counts, so nothing observable distinguishes this from
//! processing every event individually — the differential suite and the
//! goldens hold the two engines bit-identical.
//!
//! # Sharding
//!
//! [`run_colocated_ids_sink`] additionally decouples the *tenant id*
//! (cache slice, bus epoch slot, telemetry domain, address-space tag)
//! from the stream's position in the input vector. Under the S-NIC
//! disciplines — per-tenant way slices and epoch-partitioned bus
//! windows — every tenant's outcome is independent of co-tenant
//! activity, so a colocation run may be partitioned into per-core
//! shards, each simulating a contiguous subset of tenants with their
//! *global* ids, and the per-tenant results are bit-identical to the
//! serial run (asserted by `snic-bench`'s shard-determinism suite).
//! `snic-sim` drives the sharding; this module only guarantees that a
//! tenant's simulation depends on nothing but its id and its stream.

use snic_telemetry::{metrics, Histogram, NullSink, TelemetrySink};

use crate::bus::{BusArbiter, BusKind};
use crate::cache::{Cache, CacheConfig, Partition, SetMap, TAG_INVALID};
use crate::config::MachineConfig;
use crate::stream::{Access, AccessKind, EventSource};

/// Events processed per bulk-L1 chunk. 256 events × 16 bytes of raw
/// access plus the decode arrays keep a lane's working set around 9 KiB
/// — large enough that the scheduler's per-chunk bookkeeping vanishes,
/// small enough to stay L1-resident on the host while streaming.
const CHUNK: usize = 256;

/// Per-NF statistics from one run.
#[derive(Debug, Clone, PartialEq)]
pub struct NfRunStats {
    /// Instructions retired.
    pub insns: u64,
    /// Final cycle count (the NF's local clock when its stream ended).
    pub cycles: u64,
    /// L1 hits/misses.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
}

impl NfRunStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.insns as f64 / self.cycles as f64
        }
    }

    fn zero() -> NfRunStats {
        NfRunStats {
            insns: 0,
            cycles: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
        }
    }
}

/// Outcome of one colocation run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Per-NF statistics, indexed like the input stream vector.
    pub nfs: Vec<NfRunStats>,
}

impl RunOutcome {
    /// IPC degradation of NF `i` relative to `baseline` (same index).
    ///
    /// Positive = this run is slower than the baseline.
    pub fn ipc_degradation_vs(&self, baseline: &RunOutcome, i: usize) -> f64 {
        let b = baseline.nfs[i].ipc();
        let s = self.nfs[i].ipc();
        if b == 0.0 {
            0.0
        } else {
            (b - s) / b * 100.0
        }
    }
}

/// Stack-local accumulator for the per-L2-miss bus telemetry. The hot
/// loop batches into this and flushes once after the run, so a live
/// sink's synchronization cost is paid per run, not per DRAM access.
#[derive(Debug, Clone, Default)]
struct BusTelemetry {
    grants: u64,
    delayed: u64,
    wait: Histogram,
    dram: Histogram,
}

/// Width of an NF's private address space: addresses must fit in
/// [`NF_ADDR_BITS`] bits so the tag in the bits above never collides
/// with another NF's range.
pub const NF_ADDR_BITS: u32 = 40;

/// Address-space tag: keep different NFs' lines from aliasing in shared
/// caches. NF private address spaces are < 2^40 bytes; an address at or
/// above that bound would silently alias into a *different* NF's tagged
/// range in the shared L2 — exactly the cross-tenant sharing the tag
/// exists to rule out — so debug builds reject it outright.
pub(crate) fn tagged(nf: usize, addr: u64) -> u64 {
    debug_assert!(
        addr < (1u64 << NF_ADDR_BITS),
        "address {addr:#x} of NF {nf} exceeds the 2^{NF_ADDR_BITS}-byte private \
         address space and would alias another NF's cache lines"
    );
    ((nf as u64) << NF_ADDR_BITS) | (addr & ((1u64 << NF_ADDR_BITS) - 1))
}

/// Reject tenant ids that have no slot in the configured isolation
/// structures — the construction-time form of the checks the cache and
/// bus layers enforce per access.
///
/// Before this existed, `WaySlices` *wrapped* (static) or *clamped*
/// (SecDCP) an out-of-range tenant into another tenant's way slice, and
/// an out-of-range bus domain only faulted at its first DRAM access.
/// Now a mis-numbered tenant cannot even start the run.
pub(crate) fn validate_domains(cfg: &MachineConfig, tenant_ids: &[u32], n_streams: usize) {
    match &cfg.l2_partition {
        Partition::StaticWays { tenants } => {
            assert!(
                *tenants as usize >= n_streams,
                "more streams than cache partitions"
            );
            for &t in tenant_ids {
                assert!(
                    t < *tenants,
                    "tenant {t} out of range for a {tenants}-tenant static way \
                     partition: wrapping would silently share a slice across tenants"
                );
            }
        }
        Partition::SecDcp { allocation } => {
            let dom = allocation.len();
            for &t in tenant_ids {
                assert!(
                    (t as usize) < dom,
                    "tenant {t} out of range for a {dom}-tenant SecDCP allocation: \
                     clamping would silently merge it into the last tenant's slice"
                );
            }
        }
        Partition::Shared => {}
    }
    if let BusKind::Temporal { domains } = cfg.bus {
        for &t in tenant_ids {
            assert!(
                t < domains,
                "tenant {t} out of range for a {domains}-domain temporal schedule: \
                 rejected at engine construction instead of at the first bus grant"
            );
        }
    }
}

/// One 4-way set of the private L1: the tag quad and its LRU stamps
/// packed into a single 64-byte record so a probe touches exactly one
/// host cache line (the split tag/stamp arrays of the general [`Cache`]
/// pay a second line on every miss for the victim scan).
#[repr(align(64))]
#[derive(Debug, Clone, Copy)]
struct L1Set {
    tags: [u64; 4],
    stamps: [u64; 4],
}

/// Line storage of a [`PrivateL1`], specialized by associativity.
#[derive(Debug)]
enum L1Store {
    /// Every shipped L1 is 4-way: one [`L1Set`] record per set.
    W4(Box<[L1Set]>),
    /// Any other associativity — the correctness fallback, laid out
    /// like the general [`Cache`].
    General {
        tags: Box<[u64]>,
        stamps: Box<[u64]>,
        ways: usize,
    },
}

/// A single-tenant private L1: the [`Cache`] model specialized to what
/// an L1 actually needs. No partition table (one tenant), no owner
/// array (every line is the tenant's), no per-tenant counter growth —
/// which makes the update *branch-free*: the hit mask is the
/// [`crate::simd`] lane scan shape, the LRU victim a select chain, and
/// the fill an unconditional store (on a hit the stored tag equals the
/// old tag, so hit and miss share one store path). Behaviour is
/// bit-identical to `Cache::new(l1, Partition::Shared)` driven by a
/// single tenant — the reference engine does exactly that, and the
/// differential suite holds the two equal.
#[derive(Debug)]
struct PrivateL1 {
    store: L1Store,
    set_map: SetMap,
    clock: u64,
}

impl PrivateL1 {
    fn new(cfg: &CacheConfig) -> PrivateL1 {
        assert!(
            cfg.ways <= 64,
            "associativity above 64 is unsupported (the hit scan packs \
             way matches into a u64 bitmask)"
        );
        let sets = cfg.sets() as usize;
        let store = if cfg.ways == 4 {
            L1Store::W4(
                vec![
                    L1Set {
                        tags: [TAG_INVALID; 4],
                        stamps: [0; 4],
                    };
                    sets
                ]
                .into_boxed_slice(),
            )
        } else {
            let n = sets * cfg.ways as usize;
            L1Store::General {
                tags: vec![TAG_INVALID; n].into_boxed_slice(),
                stamps: vec![0; n].into_boxed_slice(),
                ways: cfg.ways as usize,
            }
        };
        PrivateL1 {
            store,
            set_map: SetMap::build(cfg),
            clock: 0,
        }
    }

    /// Probe-and-update one 4-way set record; returns `true` on hit.
    #[inline(always)]
    fn probe_set4(s: &mut L1Set, tag: u64, clock: u64) -> bool {
        let m = u64::from(s.tags[0] == tag)
            | u64::from(s.tags[1] == tag) << 1
            | u64::from(s.tags[2] == tag) << 2
            | u64::from(s.tags[3] == tag) << 3;
        let (s1, s2, s3) = (s.stamps[1], s.stamps[2], s.stamps[3]);
        let mut vw = 0usize;
        let mut best = s.stamps[0];
        if s1 < best {
            vw = 1;
            best = s1;
        }
        if s2 < best {
            vw = 2;
            best = s2;
        }
        if s3 < best {
            vw = 3;
        }
        let hit = m != 0;
        let way = if hit { m.trailing_zeros() as usize } else { vw };
        s.tags[way] = tag;
        s.stamps[way] = clock;
        hit
    }

    /// Probe every address of a chunk, compacting the misses (chunk
    /// position + address) into `miss_pos`/`miss_addr`; returns the miss
    /// count. The layout/geometry dispatch is hoisted out of the loop so
    /// the shipped shape — 4-way, power-of-two geometry — runs a tight
    /// branch-free body with a single bounds check per event.
    fn probe_chunk(&mut self, addrs: &[u64], miss_pos: &mut [u32], miss_addr: &mut [u64]) -> usize {
        let mut m = 0usize;
        let mut clock = self.clock;
        match (&mut self.store, self.set_map) {
            (
                L1Store::W4(sets),
                SetMap::Pow2 {
                    line_shift,
                    set_mask,
                    set_shift,
                },
            ) => {
                for (k, &addr) in addrs.iter().enumerate() {
                    clock += 1;
                    let line_addr = addr >> line_shift;
                    let set = (line_addr & set_mask) as usize;
                    let tag = line_addr >> set_shift;
                    debug_assert!(tag != TAG_INVALID, "address maps to the tag sentinel");
                    let hit = PrivateL1::probe_set4(&mut sets[set], tag, clock);
                    miss_pos[m] = k as u32;
                    miss_addr[m] = addr;
                    m += usize::from(!hit);
                }
            }
            (store, set_map) => {
                for (k, &addr) in addrs.iter().enumerate() {
                    clock += 1;
                    let (set, tag) = set_map.locate(addr);
                    debug_assert!(tag != TAG_INVALID, "address maps to the tag sentinel");
                    let hit = match store {
                        L1Store::W4(sets) => PrivateL1::probe_set4(&mut sets[set], tag, clock),
                        L1Store::General { tags, stamps, ways } => {
                            let lo = set * *ways;
                            let hi = lo + *ways;
                            let mask = crate::simd::match_mask(&tags[lo..hi], tag);
                            let hit = mask != 0;
                            let way = if hit {
                                mask.trailing_zeros() as usize
                            } else {
                                crate::simd::min_stamp_way(&stamps[lo..hi])
                            };
                            tags[lo + way] = tag;
                            stamps[lo + way] = clock;
                            hit
                        }
                    };
                    miss_pos[m] = k as u32;
                    miss_addr[m] = addr;
                    m += usize::from(!hit);
                }
            }
        }
        self.clock = clock;
        m
    }
}

/// One stream's simulation state: its source, private L1, current bulk
/// chunk, and cumulative statistics.
struct Lane {
    src: EventSource,
    l1: PrivateL1,
    /// Raw events of the current chunk.
    raw: Box<[Access]>,
    /// Tagged addresses of the current chunk (decode pass output).
    addrs: Box<[u64]>,
    /// `prefix[k]` = instructions of chunk events `[0, k)`; the clock
    /// distance between any two in-chunk positions is a subtraction.
    prefix: Box<[u64]>,
    /// Chunk positions of the L1 misses, densely packed.
    miss_pos: Box<[u32]>,
    /// Tagged addresses of those misses (decoded once in the bulk pass).
    miss_addr: Box<[u64]>,
    chunk_len: usize,
    nmiss: usize,
    /// Next unconsumed entry of `miss_pos`/`miss_addr`.
    next_miss: usize,
    /// Chunk events already folded into `time`.
    consumed: usize,
    /// Local clock after the last consumed event.
    time: u64,
    /// Events until the warmup snapshot boundary (0 = no warmup or
    /// already snapshotted); refills never cross the boundary, so the
    /// snapshot always lands exactly on a chunk close.
    warm_left: u64,
    /// Global tenant id: way slice, epoch slot, telemetry domain, and
    /// address-space tag.
    tenant: u32,
    st: NfRunStats,
    snapshot: Option<NfRunStats>,
    tel: BusTelemetry,
}

impl Lane {
    fn new(src: EventSource, tenant: u32, warm: u64, l1: &CacheConfig) -> Lane {
        Lane {
            src,
            l1: PrivateL1::new(l1),
            raw: vec![
                Access {
                    insns: 1,
                    addr: 0,
                    kind: AccessKind::Load,
                };
                CHUNK
            ]
            .into_boxed_slice(),
            addrs: vec![0; CHUNK].into_boxed_slice(),
            prefix: vec![0; CHUNK + 1].into_boxed_slice(),
            miss_pos: vec![0; CHUNK].into_boxed_slice(),
            miss_addr: vec![0; CHUNK].into_boxed_slice(),
            chunk_len: 0,
            nmiss: 0,
            next_miss: 0,
            consumed: 0,
            time: 0,
            warm_left: warm,
            tenant,
            st: NfRunStats::zero(),
            snapshot: None,
            tel: BusTelemetry::default(),
        }
    }

    /// Bulk L1 phase: pull the next chunk, batch-decode every address,
    /// prefix-sum the instruction counts, probe the private L1
    /// branch-free, and compact the misses into the L2-event queue.
    fn refill(&mut self) {
        // Never pull past the warmup boundary: the snapshot must be the
        // state after exactly `warm` events, and snapshots are taken at
        // chunk closes.
        let cap = if self.warm_left > 0 && self.warm_left < CHUNK as u64 {
            self.warm_left as usize
        } else {
            CHUNK
        };
        let Lane {
            src,
            raw,
            addrs,
            prefix,
            l1,
            miss_pos,
            miss_addr,
            tenant,
            chunk_len,
            next_miss,
            consumed,
            nmiss,
            ..
        } = self;
        // Pass 1 — decode: prefix-sum the instruction counts and tag
        // every address with the lane's address-space id. Replay-backed
        // sources lend their backing store directly (zero-copy); the
        // rest synthesize into the chunk buffer first. Note a borrowed
        // run may be *short* without meaning end-of-stream (shared
        // recordings stop at each pass boundary) — only an empty chunk
        // terminates the lane.
        let events: &[Access] = match src.next_slice(cap) {
            Some(run) => run,
            None => {
                let n = src.next_batch(&mut raw[..cap]);
                &raw[..n]
            }
        };
        let n = events.len();
        let t = *tenant as usize;
        prefix[0] = 0;
        let mut acc = 0u64;
        for (k, a) in events.iter().enumerate() {
            acc += u64::from(a.insns);
            prefix[k + 1] = acc;
            addrs[k] = tagged(t, a.addr);
        }
        // Start pulling the *next* chunk's trace lines into the host
        // cache now — the probe pass and the L2 events of this chunk
        // give the loads a microsecond of latency to hide under.
        src.prefetch_ahead(CHUNK);
        *chunk_len = n;
        *next_miss = 0;
        *consumed = 0;
        // Pass 2 — probe the private L1 branch-free and compact the
        // misses (unconditional stores + conditional increment).
        *nmiss = l1.probe_chunk(&addrs[..n], &mut miss_pos[..], &mut miss_addr[..]);
    }

    /// Fold the tail of the current chunk (all L1 hits past the last
    /// miss) into the clock and credit the chunk's L1 statistics; take
    /// the warmup snapshot when the boundary lands here.
    fn close_chunk(&mut self) {
        debug_assert_eq!(
            self.next_miss, self.nmiss,
            "chunk closed with misses pending"
        );
        let len = self.chunk_len;
        self.time += self.prefix[len] - self.prefix[self.consumed];
        self.st.insns += self.prefix[len];
        self.st.l1_hits += (len - self.nmiss) as u64;
        self.st.l1_misses += self.nmiss as u64;
        self.consumed = len;
        if self.warm_left > 0 {
            self.warm_left -= len as u64;
            if self.warm_left == 0 {
                // Same accounting as the per-event loop at `ev == warm`:
                // `cycles` is the clock after the warm-th event and the
                // counters are cumulative at that instant.
                self.st.cycles = self.time;
                self.snapshot = Some(self.st.clone());
            }
        }
    }

    /// Ensure an unconsumed L2 event exists, closing and refilling
    /// chunks as needed. Returns `false` when the stream is exhausted
    /// (final `cycles` recorded).
    fn advance(&mut self) -> bool {
        while self.next_miss == self.nmiss {
            self.close_chunk();
            self.refill();
            if self.chunk_len == 0 {
                self.st.cycles = self.time;
                return false;
            }
        }
        true
    }

    /// The scheduler key time of the next L2 event: the lane clock just
    /// *before* the missing event — exactly the `(local clock, index)`
    /// key the per-event loop assigns it.
    #[inline]
    fn next_miss_key_time(&self) -> u64 {
        let k = self.miss_pos[self.next_miss] as usize;
        self.time + (self.prefix[k] - self.prefix[self.consumed])
    }

    /// Process the next L2 event against the shared L2 and bus, folding
    /// the preceding hit run into the clock arithmetically.
    #[inline]
    fn consume_miss(
        &mut self,
        l2: &mut Cache,
        arbiter: &mut BusArbiter,
        cfg: &MachineConfig,
        telemetry_on: bool,
    ) {
        let j = self.next_miss;
        let k = self.miss_pos[j] as usize;
        // Clock after the missing event's instruction charge: every
        // event since the last consumed one was an L1 hit (cost = its
        // insns), so the whole run collapses to a prefix-sum delta.
        let mut now = self.time + (self.prefix[k + 1] - self.prefix[self.consumed]);
        if l2.access(self.tenant, self.miss_addr[j]) {
            self.st.l2_hits += 1;
            now += cfg.l2_hit_cycles;
        } else {
            self.st.l2_misses += 1;
            let ready = now + cfg.l2_hit_cycles;
            let start = arbiter.grant(self.tenant, ready, cfg.bus_beat_cycles);
            if telemetry_on {
                self.tel.grants += 1;
                self.tel.wait.record(start.saturating_sub(ready));
                self.tel.dram.record(cfg.dram_cycles);
                if start > ready {
                    self.tel.delayed += 1;
                }
            }
            now = start + cfg.bus_beat_cycles + cfg.dram_cycles;
        }
        self.time = now;
        self.consumed = k + 1;
        self.next_miss = j + 1;
        // Host-cache hint: the lane's next L2 event is already sitting
        // in the compacted miss queue, so warm its set lines while the
        // scheduler decides whose turn is next.
        if j + 1 < self.nmiss {
            l2.prefetch(self.miss_addr[j + 1]);
        }
    }
}

/// Run `streams` to exhaustion under `cfg`.
///
/// # Panics
///
/// Panics if `streams` is empty, or if a partitioned configuration has
/// fewer tenant slots than streams.
pub fn run_colocated(cfg: &MachineConfig, streams: Vec<EventSource>) -> RunOutcome {
    run_colocated_warm(cfg, streams, &[])
}

/// Like [`run_colocated`], but statistics only cover events after the
/// first `warmup_events` of each stream — mirroring §5.3's methodology
/// ("we ran 1 billion instructions to warm microarchitectural structures
/// like caches and branch predictors. We then collected experimental
/// data...").
pub fn run_colocated_warm(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
) -> RunOutcome {
    run_colocated_sink(cfg, streams, warmup_events, &NullSink)
}

/// Like [`run_colocated_warm`], with telemetry.
///
/// The sink is a monomorphized generic: with [`NullSink`] every
/// `if sink.enabled()` guard folds to a constant `false` and the
/// instrumentation vanishes, so statistics are byte-identical with the
/// sink on or off (asserted by this module's tests and by
/// `snic-sim`/`snic-bench` determinism suites). Timestamps reported to
/// the sink are engine cycles; domains are stream indices.
pub fn run_colocated_sink<S: TelemetrySink + ?Sized>(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
    sink: &S,
) -> RunOutcome {
    let ids: Vec<u32> = (0..streams.len() as u32).collect();
    run_colocated_ids_sink(cfg, streams, warmup_events, &ids, sink)
}

/// Run a colocation (or one shard of one) with explicit global tenant
/// ids.
///
/// `tenant_ids[i]` is stream `i`'s identity everywhere an identity
/// matters: its L2 way slice / SecDCP slot, its temporal-bus epoch
/// domain, its address-space tag, and its telemetry domain. The plain
/// entry points pass `0..n`, which reproduces the historical behaviour
/// exactly; shard drivers pass the subset of global ids the shard owns,
/// and — because every structure keyed by tenant id behaves identically
/// whether or not *other* tenants are simulated alongside (private way
/// slices, pure-function epoch grants) — each tenant's results are
/// bit-identical to the full serial run.
///
/// # Panics
///
/// Panics if `streams` is empty, if `tenant_ids` and `streams` disagree
/// in length, if the ids are not strictly increasing (the engine's
/// event-order tiebreak is the stream index, which must agree with
/// tenant order for shard merges to be deterministic), or if any id has
/// no slot in the configured partition/bus schedule (see
/// [`Cache::domains`]).
pub fn run_colocated_ids_sink<S: TelemetrySink + ?Sized>(
    cfg: &MachineConfig,
    streams: Vec<EventSource>,
    warmup_events: &[u64],
    tenant_ids: &[u32],
    sink: &S,
) -> RunOutcome {
    assert!(!streams.is_empty(), "need at least one stream");
    assert_eq!(tenant_ids.len(), streams.len(), "one tenant id per stream");
    assert!(
        tenant_ids.windows(2).all(|w| w[0] < w[1]),
        "tenant ids must be strictly increasing"
    );
    validate_domains(cfg, tenant_ids, streams.len());

    let mut l2 = Cache::new(cfg.l2, cfg.l2_partition.clone());
    let mut arbiter = BusArbiter::for_kind(cfg.bus, cfg.epoch_cycles);
    // With NullSink this bool is a monomorphized constant `false`, so
    // every guarded block below folds away.
    let telemetry_on = sink.enabled();

    let mut lanes: Vec<Lane> = streams
        .into_iter()
        .enumerate()
        .map(|(i, src)| {
            Lane::new(
                src,
                tenant_ids[i],
                warmup_events.get(i).copied().unwrap_or(0),
                &cfg.l1,
            )
        })
        .collect();

    // `keys[i]` is lane `i`'s next L2 event key `(clock before the
    // event, i)` — the index makes every key distinct — or `DEAD` once
    // the stream is exhausted. Priming a lane runs its bulk L1 phase up
    // to the first L2 event; miss-free streams complete entirely here.
    const DEAD: (u64, usize) = (u64::MAX, usize::MAX);
    let mut keys: Vec<(u64, usize)> = lanes
        .iter_mut()
        .enumerate()
        .map(|(i, l)| {
            if l.advance() {
                (l.next_miss_key_time(), i)
            } else {
                DEAD
            }
        })
        .collect();

    loop {
        // Pick the lane with the smallest key and cache the runner-up in
        // one pass (keys are distinct, so the second-smallest key IS the
        // minimum over the other lanes): lane counts are core counts, so
        // a linear scan beats heap maintenance per event.
        let mut best = DEAD;
        let mut runner_up = DEAD;
        for &k in &keys {
            if k < best {
                runner_up = best;
                best = k;
            } else if k < runner_up {
                runner_up = k;
            }
        }
        if best == DEAD {
            break;
        }
        let i = best.1;
        let lane = &mut lanes[i];

        // Run ahead: keep consuming lane `i`'s L2 events while its key
        // stays below the (unchanged) runner-up — a single drain when it
        // is the only live lane.
        loop {
            lane.consume_miss(&mut l2, &mut arbiter, cfg, telemetry_on);
            if !lane.advance() {
                keys[i] = DEAD;
                break;
            }
            let k = (lane.next_miss_key_time(), i);
            if runner_up < k {
                keys[i] = k;
                break;
            }
        }
    }

    // Subtract the warmup portion (streams shorter than the warmup keep
    // their full statistics).
    let nfs: Vec<NfRunStats> = lanes
        .iter()
        .map(|lane| match &lane.snapshot {
            Some(w) => NfRunStats {
                insns: lane.st.insns - w.insns,
                cycles: lane.st.cycles.saturating_sub(w.cycles),
                l1_hits: lane.st.l1_hits - w.l1_hits,
                l1_misses: lane.st.l1_misses - w.l1_misses,
                l2_hits: lane.st.l2_hits - w.l2_hits,
                l2_misses: lane.st.l2_misses - w.l2_misses,
            },
            None => lane.st.clone(),
        })
        .collect();
    if telemetry_on {
        for (lane, s) in lanes.iter().zip(&nfs) {
            let d = u64::from(lane.tenant);
            sink.span_begin(d, "uarch.nf_run", 0);
            sink.span_end(d, "uarch.nf_run", s.cycles);
            sink.counter_add(d, metrics::INSNS, s.insns);
            sink.counter_add(d, metrics::CYCLES, s.cycles);
            sink.counter_add(d, metrics::L1_HITS, s.l1_hits);
            sink.counter_add(d, metrics::L1_MISSES, s.l1_misses);
            sink.counter_add(d, metrics::L2_HITS, s.l2_hits);
            sink.counter_add(d, metrics::L2_MISSES, s.l2_misses);
            // Flush the batched bus telemetry. Guards keep a miss-free
            // run from materializing zero-valued entries, matching the
            // per-sample behaviour this replaces.
            let t = &lane.tel;
            if t.grants > 0 {
                sink.counter_add(d, metrics::BUS_GRANTS, t.grants);
                sink.merge_hist(d, metrics::BUS_WAIT_CYCLES, &t.wait);
                sink.merge_hist(d, metrics::DRAM_CYCLES, &t.dram);
            }
            if t.delayed > 0 {
                sink.counter_add(d, metrics::BUS_DELAYED, t.delayed);
            }
        }
    }
    RunOutcome { nfs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::SyntheticStream;

    fn streams(n: usize, working_set: u64, events: u64) -> Vec<EventSource> {
        (0..n)
            .map(|i| {
                EventSource::from(SyntheticStream::new(
                    working_set,
                    8,
                    4,
                    events,
                    1000 + i as u64,
                ))
            })
            .collect()
    }

    #[test]
    fn tiny_working_set_achieves_high_ipc() {
        // Everything fits in L1: IPC should approach 1.
        let cfg = MachineConfig::commodity(1, 4 << 20);
        let out = run_colocated(&cfg, streams(1, 4 << 10, 50_000));
        assert!(out.nfs[0].ipc() > 0.95, "ipc = {}", out.nfs[0].ipc());
    }

    #[test]
    fn dram_bound_working_set_crushes_ipc() {
        let cfg = MachineConfig::commodity(1, 256 << 10);
        // Working set far beyond L2.
        let out = run_colocated(&cfg, streams(1, 64 << 20, 20_000));
        assert!(out.nfs[0].ipc() < 0.3, "ipc = {}", out.nfs[0].ipc());
        assert!(out.nfs[0].l2_misses > out.nfs[0].l2_hits);
    }

    #[test]
    fn partitioning_degrades_ipc_when_hot_set_marginal() {
        // Hot set ~2 MB: fits a 4 MB shared L2 shared by 2 NFs poorly
        // but fits even worse in a hard 1/2 slice.
        let base = run_colocated(
            &MachineConfig::commodity(2, 4 << 20),
            streams(2, 3 << 20, 60_000),
        );
        let snic = run_colocated(
            &MachineConfig::snic(2, 4 << 20),
            streams(2, 3 << 20, 60_000),
        );
        let deg = snic.ipc_degradation_vs(&base, 0);
        assert!(deg > 0.0, "expected positive degradation, got {deg}");
        assert!(deg < 60.0, "degradation implausibly large: {deg}");
    }

    #[test]
    fn snic_victim_cycles_independent_of_attacker() {
        // Run the victim alone (padded with an idle co-tenant slot) vs
        // with a thrashing attacker, both under the S-NIC discipline.
        let cfg = MachineConfig::snic(2, 1 << 20);
        let victim = || EventSource::from(SyntheticStream::new(2 << 20, 6, 3, 30_000, 7));
        let idle = EventSource::from(SyntheticStream::new(64, 1, 0, 1, 1));
        let attacker = EventSource::from(SyntheticStream::new(32 << 20, 1, 1, 120_000, 9));

        let quiet = run_colocated(&cfg, vec![victim(), idle]);
        let noisy = run_colocated(&cfg, vec![victim(), attacker]);
        assert_eq!(
            quiet.nfs[0].cycles, noisy.nfs[0].cycles,
            "S-NIC victim timing must not depend on co-tenant activity"
        );
        assert_eq!(quiet.nfs[0].l2_misses, noisy.nfs[0].l2_misses);
    }

    #[test]
    fn commodity_victim_cycles_depend_on_attacker() {
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let victim = || EventSource::from(SyntheticStream::new(2 << 20, 6, 3, 30_000, 7));
        let idle = EventSource::from(SyntheticStream::new(64, 1, 0, 1, 1));
        let attacker = EventSource::from(SyntheticStream::new(32 << 20, 1, 1, 120_000, 9));

        let quiet = run_colocated(&cfg, vec![victim(), idle]);
        let noisy = run_colocated(&cfg, vec![victim(), attacker]);
        assert_ne!(
            quiet.nfs[0].cycles, noisy.nfs[0].cycles,
            "commodity victim timing should leak co-tenant activity"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = MachineConfig::snic(4, 4 << 20);
        let a = run_colocated(&cfg, streams(4, 1 << 20, 10_000));
        let b = run_colocated(&cfg, streams(4, 1 << 20, 10_000));
        for i in 0..4 {
            assert_eq!(a.nfs[i], b.nfs[i]);
        }
    }

    #[test]
    fn stats_accounting_consistent() {
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let out = run_colocated(&cfg, streams(2, 8 << 20, 5_000));
        for s in &out.nfs {
            assert_eq!(s.l1_hits + s.l1_misses, 5_000);
            assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses);
            assert_eq!(s.insns, 5_000 * 8);
            assert!(s.cycles >= s.insns);
        }
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn empty_streams_panics() {
        let _ = run_colocated(&MachineConfig::commodity(1, 1 << 20), Vec::new());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "would alias another NF's cache lines")]
    fn out_of_range_address_rejected() {
        use crate::stream::ReplayStream;
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let s = vec![EventSource::from(ReplayStream::new(vec![Access {
            insns: 1,
            addr: 1u64 << NF_ADDR_BITS,
            kind: AccessKind::Load,
        }]))];
        let _ = run_colocated(&cfg, s);
    }

    #[test]
    fn boundary_address_accepted_and_isolated() {
        // The largest legal address still tags into the owner's own
        // range: two NFs touching it must not share a cache line.
        use crate::stream::ReplayStream;
        let top = (1u64 << NF_ADDR_BITS) - 64;
        let mk = || {
            (0..2)
                .map(|_| {
                    EventSource::from(ReplayStream::new(vec![
                        Access {
                            insns: 1,
                            addr: top,
                            kind: AccessKind::Load,
                        };
                        2
                    ]))
                })
                .collect::<Vec<_>>()
        };
        let out = run_colocated(&MachineConfig::commodity(2, 1 << 20), mk());
        // Proper tagging: both NFs cold-miss the shared L2 on their
        // first touch. Truncation aliasing would let the second NF hit
        // the first NF's line instead.
        for s in &out.nfs {
            assert_eq!(s.l1_misses, 1);
            assert_eq!(s.l1_hits, 1);
            assert_eq!(s.l2_misses, 1, "tagged addresses must not alias across NFs");
            assert_eq!(s.l2_hits, 0);
        }
    }

    #[test]
    fn warmup_excludes_cold_misses() {
        // A stream that fits L1: after warmup the measured window has
        // zero L1 misses, while the unwarmed run reports the cold ones.
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let mk = || {
            vec![EventSource::from(SyntheticStream::new(
                8 << 10,
                8,
                4,
                40_000,
                5,
            ))]
        };
        let cold = run_colocated(&cfg, mk());
        let warm = run_colocated_warm(&cfg, mk(), &[20_000]);
        assert!(cold.nfs[0].l1_misses > 0);
        assert_eq!(
            warm.nfs[0].l1_misses, 0,
            "all cold misses fall in the warmup window"
        );
        assert_eq!(warm.nfs[0].l1_hits + warm.nfs[0].l1_misses, 20_000);
        assert!(warm.nfs[0].ipc() > cold.nfs[0].ipc());
    }

    #[test]
    fn warmup_longer_than_stream_keeps_full_stats() {
        let cfg = MachineConfig::commodity(1, 1 << 20);
        let s = vec![EventSource::from(SyntheticStream::new(
            4 << 10,
            8,
            4,
            1_000,
            5,
        ))];
        let out = run_colocated_warm(&cfg, s, &[50_000]);
        assert_eq!(out.nfs[0].l1_hits + out.nfs[0].l1_misses, 1_000);
    }

    #[test]
    fn sink_on_stats_equal_sink_off() {
        use snic_telemetry::Recorder;
        let cfg = MachineConfig::commodity(2, 1 << 20);
        let off = run_colocated(&cfg, streams(2, 8 << 20, 5_000));
        let recorder = Recorder::new();
        let on = run_colocated_sink(&cfg, streams(2, 8 << 20, 5_000), &[], &recorder);
        assert_eq!(on.nfs, off.nfs, "telemetry must not perturb the simulation");

        // The recorded aggregates match the returned statistics.
        let summary = recorder.summary();
        for (i, s) in on.nfs.iter().enumerate() {
            let c = |m: &str| summary.counters[&(i as u64, m.to_string())];
            assert_eq!(c(metrics::INSNS), s.insns);
            assert_eq!(c(metrics::CYCLES), s.cycles);
            assert_eq!(c(metrics::L2_MISSES), s.l2_misses);
            assert_eq!(c(metrics::BUS_GRANTS), s.l2_misses);
        }
        let events = recorder.events();
        assert_eq!(events.len(), 2 * on.nfs.len(), "one span per NF");
    }

    #[test]
    fn degradation_grows_with_cotenancy() {
        // Median over the tenants at each cotenancy level; more tenants →
        // thinner slices → more degradation (Figure 5b's trend).
        let ws = 2 << 20;
        let deg_at = |n: usize| {
            let base = run_colocated(
                &MachineConfig::commodity(n as u32, 4 << 20),
                streams(n, ws, 20_000),
            );
            let snic = run_colocated(
                &MachineConfig::snic(n as u32, 4 << 20),
                streams(n, ws, 20_000),
            );
            let mut degs: Vec<f64> = (0..n).map(|i| snic.ipc_degradation_vs(&base, i)).collect();
            degs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            degs[n / 2]
        };
        let d2 = deg_at(2);
        let d8 = deg_at(8);
        assert!(
            d8 > d2,
            "expected monotone degradation: 2NF={d2:.2}% 8NF={d8:.2}%"
        );
    }

    #[test]
    fn matches_reference_engine_on_all_personalities() {
        // Quick in-module guard; the proptest version lives in
        // tests/engine_differential.rs.
        use crate::reference::run_reference_sink;
        use snic_telemetry::NullSink;
        for cfg in [
            MachineConfig::commodity(3, 512 << 10),
            MachineConfig::snic(3, 512 << 10),
            MachineConfig::snic_secdcp(vec![6, 4, 6], 512 << 10),
        ] {
            let warm = [500u64, 0, 1_000];
            let fast = run_colocated_warm(&cfg, streams(3, 1 << 20, 8_000), &warm);
            let slow = run_reference_sink(&cfg, streams(3, 1 << 20, 8_000), &warm, &NullSink);
            assert_eq!(fast.nfs, slow.nfs, "engines diverged under {cfg:?}");
        }
    }

    #[test]
    fn shard_ids_reproduce_serial_per_tenant_results() {
        // The sharding fidelity claim at engine level: simulating only
        // tenants {2,3} of a 4-tenant S-NIC colocation — with their
        // global ids — must reproduce the full run's stats for those
        // tenants bit-for-bit.
        use snic_telemetry::NullSink;
        let cfg = MachineConfig::snic(4, 1 << 20);
        let full = run_colocated_warm(&cfg, streams(4, 1 << 20, 10_000), &[100, 200, 300, 400]);
        let all = streams(4, 1 << 20, 10_000);
        let subset: Vec<EventSource> = all.into_iter().skip(2).collect();
        let shard = run_colocated_ids_sink(&cfg, subset, &[300, 400], &[2, 3], &NullSink);
        assert_eq!(shard.nfs[0], full.nfs[2]);
        assert_eq!(shard.nfs[1], full.nfs[3]);
    }

    #[test]
    #[should_panic(expected = "out of range for a 2-tenant static way partition")]
    fn out_of_range_static_tenant_rejected_at_construction() {
        use snic_telemetry::NullSink;
        let cfg = MachineConfig::snic(2, 1 << 20);
        let _ = run_colocated_ids_sink(&cfg, streams(1, 4 << 10, 10), &[], &[5], &NullSink);
    }

    #[test]
    #[should_panic(expected = "out of range for a 2-tenant SecDCP allocation")]
    fn out_of_range_secdcp_tenant_rejected_at_construction() {
        // Regression for the clamp bug: before strict domains, tenant 9
        // would silently run inside tenant 1's slice.
        use snic_telemetry::NullSink;
        let mut cfg = MachineConfig::snic_secdcp(vec![8, 8], 1 << 20);
        cfg.bus = BusKind::Temporal { domains: 16 };
        let _ = run_colocated_ids_sink(&cfg, streams(1, 4 << 10, 10), &[], &[9], &NullSink);
    }

    #[test]
    #[should_panic(expected = "out of range for a 4-domain temporal schedule")]
    fn out_of_range_bus_domain_rejected_at_construction() {
        // Previously this only faulted at the tenant's first DRAM
        // access; a DRAM-free stream never tripped it.
        use snic_telemetry::NullSink;
        let mut cfg = MachineConfig::commodity(1, 1 << 20);
        cfg.bus = BusKind::Temporal { domains: 4 };
        let _ = run_colocated_ids_sink(&cfg, streams(1, 4 << 10, 10), &[], &[7], &NullSink);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_tenant_ids_rejected() {
        use snic_telemetry::NullSink;
        let cfg = MachineConfig::snic(4, 1 << 20);
        let _ = run_colocated_ids_sink(&cfg, streams(2, 4 << 10, 10), &[], &[3, 1], &NullSink);
    }

    #[test]
    #[should_panic(expected = "more streams than cache partitions")]
    fn more_streams_than_partitions_rejected() {
        let cfg = MachineConfig::snic(2, 1 << 20);
        let _ = run_colocated(&cfg, streams(3, 4 << 10, 10));
    }
}
