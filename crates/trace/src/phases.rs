//! Workload phases: diurnal cycles, flash crowds, heavy-hitter
//! migration, and flow churn layered over the ICTF-like Zipf stream.
//!
//! The paper's §5.3 workload is a *snapshot*: a fixed flow pool with a
//! fixed Zipf(1.1) popularity ranking. Real tenant traffic is not
//! stationary — λ-NIC's serverless workloads and OSMOSIS's multi-tenant
//! mixes (PAPERS.md) motivate four time-varying effects this module
//! adds, each deterministic given a seed so streamed replays stay
//! bit-identical:
//!
//! - **Diurnal cycles**: the active-flow population breathes on a
//!   triangle wave between a trough percentage and 100%. Off-peak,
//!   ranks fold into the active prefix, concentrating traffic on fewer
//!   flows (higher locality); at peak the full pool participates. The
//!   wave is integer arithmetic — no floating-point trig — so every
//!   platform computes the identical schedule.
//! - **Flash crowds**: at fixed onsets a small seeded set of flows
//!   abruptly captures a large share of packets for a bounded window
//!   (the "everyone hits one endpoint" event), then traffic relaxes.
//! - **Heavy-hitter migration**: the popularity ranking rotates through
//!   the pool on a fixed period, so *which* flows are hot drifts over
//!   time while the Zipf shape is preserved.
//! - **Flow churn**: on each churn epoch a fraction of flow
//!   *identities* is replaced — the rank→five-tuple mapping shifts, so
//!   old flows die and new ones take their place (new tags, new NF
//!   state) without perturbing popularity.
//!
//! With every knob off, [`PhasedTrace`] is bit-identical to
//! [`IctfLikeTrace`](crate::IctfLikeTrace) at the same config — the
//! paper's snapshot workload is the degenerate phase schedule, which is
//! what keeps the existing goldens valid.

use rand::Rng;
use rand::SeedableRng;
use snic_types::packet::PacketBuilder;
use snic_types::{FiveTuple, Packet};

use crate::flows::{FlowTable, FlowTableConfig};
use crate::ictf::IctfConfig;
use crate::payload::PayloadGen;
use crate::zipf::ZipfSampler;

/// The time-varying knobs of a [`PhasedTrace`]. All periods count in
/// packets (the generator's clock); a period of 0 disables that effect.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSchedule {
    /// Packets per full diurnal cycle (peak → trough → peak); 0 = off.
    pub diurnal_period: u64,
    /// Active-flow percentage at the diurnal trough (1..=100). At 100
    /// the wave is flat even when `diurnal_period` is set.
    pub trough_active_pct: u32,
    /// Packets between flash-crowd onsets; 0 = off.
    pub flash_every: u64,
    /// Packets a flash crowd lasts once it starts (clamped below
    /// `flash_every`).
    pub flash_len: u64,
    /// How many flows the crowd converges on.
    pub flash_hot_flows: usize,
    /// Percentage of in-crowd packets redirected to the hot set.
    pub flash_share_pct: u32,
    /// Packets between heavy-hitter rotations; 0 = off.
    pub migrate_every: u64,
    /// Packets between churn epochs (identity replacement); 0 = off.
    pub churn_every: u64,
    /// Percentage of flow identities replaced per churn epoch.
    pub churn_pct: u32,
}

impl PhaseSchedule {
    /// The degenerate schedule: every effect off. A [`PhasedTrace`]
    /// with this schedule reproduces the paper's stationary Zipf
    /// snapshot bit-for-bit.
    pub fn stationary() -> PhaseSchedule {
        PhaseSchedule {
            diurnal_period: 0,
            trough_active_pct: 100,
            flash_every: 0,
            flash_len: 0,
            flash_hot_flows: 0,
            flash_share_pct: 0,
            migrate_every: 0,
            churn_every: 0,
            churn_pct: 0,
        }
    }

    /// A representative "realistic tenant" schedule scaled to a run of
    /// roughly `horizon` packets: two diurnal cycles, a flash crowd per
    /// cycle capturing ~60% of traffic on 16 flows, hourly-ish
    /// heavy-hitter migration, and 10% identity churn per epoch.
    pub fn realistic(horizon: u64) -> PhaseSchedule {
        let cycle = (horizon / 2).max(8);
        PhaseSchedule {
            diurnal_period: cycle,
            trough_active_pct: 20,
            flash_every: cycle,
            flash_len: cycle / 8,
            flash_hot_flows: 16,
            flash_share_pct: 60,
            migrate_every: (cycle / 4).max(1),
            churn_every: (cycle / 2).max(1),
            churn_pct: 10,
        }
    }

    /// True when every effect is disabled (the stationary snapshot).
    pub fn is_stationary(&self) -> bool {
        (self.diurnal_period == 0 || self.trough_active_pct >= 100)
            && (self.flash_every == 0
                || self.flash_len == 0
                || self.flash_hot_flows == 0
                || self.flash_share_pct == 0)
            && self.migrate_every == 0
            && (self.churn_every == 0 || self.churn_pct == 0)
    }

    /// Active-flow percentage at packet `t`: a triangle wave from 100
    /// (peak, cycle start) down to `trough_active_pct` at mid-cycle and
    /// back. Integer arithmetic only.
    pub fn active_pct_at(&self, t: u64) -> u32 {
        if self.diurnal_period == 0 || self.trough_active_pct >= 100 {
            return 100;
        }
        let period = self.diurnal_period;
        let pos = t % period;
        let half = (period / 2).max(1);
        // Distance from the nearest peak, 0..=half.
        let depth = if pos <= half { pos } else { period - pos };
        let span = u64::from(100 - self.trough_active_pct);
        100 - (span * depth / half) as u32
    }

    /// Whether packet `t` falls inside a flash crowd, and if so which
    /// crowd (0-based onset index).
    pub fn crowd_at(&self, t: u64) -> Option<u64> {
        if self.flash_every == 0
            || self.flash_len == 0
            || self.flash_hot_flows == 0
            || self.flash_share_pct == 0
        {
            return None;
        }
        let len = self.flash_len.min(self.flash_every);
        if t % self.flash_every < len {
            Some(t / self.flash_every)
        } else {
            None
        }
    }

    /// One-line-per-effect human-readable summary (the `snicctl trace
    /// describe` payload).
    pub fn describe(&self) -> String {
        let mut lines = Vec::new();
        if self.diurnal_period > 0 && self.trough_active_pct < 100 {
            lines.push(format!(
                "diurnal: period={} pkts, trough {}% active",
                self.diurnal_period, self.trough_active_pct
            ));
        }
        if self.crowd_at(0).is_some() {
            lines.push(format!(
                "flash crowds: every {} pkts for {} pkts, {}% of traffic onto {} flows",
                self.flash_every,
                self.flash_len.min(self.flash_every),
                self.flash_share_pct,
                self.flash_hot_flows
            ));
        }
        if self.migrate_every > 0 {
            lines.push(format!(
                "heavy-hitter migration: rotate every {} pkts",
                self.migrate_every
            ));
        }
        if self.churn_every > 0 && self.churn_pct > 0 {
            lines.push(format!(
                "churn: {}% of identities every {} pkts",
                self.churn_pct, self.churn_every
            ));
        }
        if lines.is_empty() {
            lines.push("stationary (paper snapshot; no phase effects)".to_string());
        }
        lines.join("\n")
    }
}

/// Configuration of a [`PhasedTrace`]: the base ICTF-like workload plus
/// a phase schedule.
#[derive(Debug, Clone)]
pub struct PhasedConfig {
    /// The underlying flow pool / Zipf / payload parameters.
    pub base: IctfConfig,
    /// The time-varying effects.
    pub schedule: PhaseSchedule,
}

/// A deterministic packet stream with workload phases.
///
/// Sampling order per packet: base Zipf rank → diurnal fold into the
/// active prefix → heavy-hitter rotation → flash-crowd override →
/// churn identity shift → five-tuple lookup. Each stage is the identity
/// when its knob is off, and every stage is a pure function of
/// `(schedule, seed, packet index)` — the whole stream rewinds by
/// rebuilding from its config.
#[derive(Debug)]
pub struct PhasedTrace {
    flows: FlowTable,
    zipf: ZipfSampler,
    payloads: PayloadGen,
    rng: rand::rngs::StdRng,
    mean_payload: usize,
    generated: u64,
    schedule: PhaseSchedule,
    pool: usize,
    seed: u64,
}

/// SplitMix64 — the stateless seeded hash behind flash-crowd membership
/// and hot-set selection (independent of the StdRng draw sequence, so
/// enabling a phase never perturbs the base sampler's stream).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl PhasedTrace {
    /// Build the flow pool and samplers. With a
    /// [`PhaseSchedule::stationary`] schedule this constructs the exact
    /// generator [`IctfLikeTrace`](crate::IctfLikeTrace) would (same
    /// seed derivations), so the two streams are bit-identical.
    pub fn new(config: PhasedConfig) -> PhasedTrace {
        let base = config.base;
        let flows = FlowTable::generate(&FlowTableConfig {
            flows: base.flows,
            tcp_fraction: 0.9,
            seed: base.seed ^ 0xf10f,
        });
        PhasedTrace {
            flows,
            zipf: ZipfSampler::new(base.flows, base.theta),
            payloads: PayloadGen::new(base.seed ^ 0xbeef, base.patterns, base.signature_rate),
            rng: rand::rngs::StdRng::seed_from_u64(base.seed),
            mean_payload: base.mean_payload,
            generated: 0,
            schedule: config.schedule,
            pool: base.flows,
            seed: base.seed,
        }
    }

    /// The phase schedule in effect.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }

    /// Map a freshly sampled Zipf rank through the phase stages at
    /// packet index `t`, yielding the flow-table index to emit.
    fn phased_rank(&self, rank: usize, t: u64) -> usize {
        let pool = self.pool.max(1);
        let mut r = rank;

        // Diurnal: fold into the active prefix. Folding (not clamping)
        // keeps the Zipf head dominant while redistributing tail mass.
        let pct = self.schedule.active_pct_at(t);
        if pct < 100 {
            let active = ((pool as u64 * u64::from(pct)) / 100).max(1) as usize;
            r %= active;
        }

        // Heavy-hitter migration: rotate the ranking by a pool-coprime
        // stride per period so the hot set walks the whole pool.
        if let Some(epoch) = t.checked_div(self.schedule.migrate_every) {
            let stride = (pool / 7).max(1) as u64;
            r = ((r as u64 + epoch * stride) % pool as u64) as usize;
        }

        // Flash crowd: a seeded share of in-crowd packets collapses
        // onto a small per-crowd hot set.
        if let Some(crowd) = self.schedule.crowd_at(t) {
            let gate = splitmix64(self.seed ^ t.wrapping_mul(0x5bd1)) % 100;
            if gate < u64::from(self.schedule.flash_share_pct) {
                let slot = splitmix64(self.seed ^ crowd ^ t) % self.schedule.flash_hot_flows as u64;
                let origin = splitmix64(self.seed.wrapping_add(crowd)) % pool as u64;
                r = ((origin + slot) % pool as u64) as usize;
            }
        }

        // Churn: shift the rank→identity mapping by churn_pct of the
        // pool per epoch — old identities age out of the hot ranks.
        if self.schedule.churn_every > 0 && self.schedule.churn_pct > 0 {
            let epoch = t / self.schedule.churn_every;
            let step = ((pool as u64 * u64::from(self.schedule.churn_pct)) / 100).max(1);
            r = ((r as u64 + epoch * step) % pool as u64) as usize;
        }

        r
    }

    /// Draw the next flow (without building packet bytes). This
    /// advances the phase clock: every draw is one tick of `t`.
    pub fn next_flow(&mut self) -> FiveTuple {
        let t = self.generated;
        let rank = self.zipf.sample(&mut self.rng);
        self.generated += 1;
        self.flows.get(self.phased_rank(rank, t))
    }

    /// Build the next packet in the stream.
    pub fn next_packet(&mut self) -> Packet {
        let ft = self.next_flow();
        let len = if self.mean_payload == 0 {
            0
        } else {
            let half = self.mean_payload / 2;
            self.rng
                .random_range(self.mean_payload - half..=self.mean_payload + half)
        };
        let payload = self.payloads.generate(len);
        PacketBuilder::new(ft.src_ip, ft.dst_ip, ft.protocol, ft.src_port, ft.dst_port)
            .payload(payload)
            .build()
    }

    /// Phase-clock ticks so far (flow draws; equals packets when the
    /// stream is consumed via [`PhasedTrace::next_packet`]).
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The underlying flow pool.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IctfLikeTrace;
    use std::collections::HashSet;

    fn base(flows: usize, seed: u64) -> IctfConfig {
        IctfConfig {
            flows,
            mean_payload: 64,
            seed,
            ..IctfConfig::default()
        }
    }

    fn phased(flows: usize, seed: u64, schedule: PhaseSchedule) -> PhasedTrace {
        PhasedTrace::new(PhasedConfig {
            base: base(flows, seed),
            schedule,
        })
    }

    #[test]
    fn stationary_schedule_is_bit_identical_to_ictf() {
        let mut plain = IctfLikeTrace::new(base(500, 0x77));
        let mut ph = phased(500, 0x77, PhaseSchedule::stationary());
        assert!(ph.schedule().is_stationary());
        for _ in 0..500 {
            assert_eq!(plain.next_packet(), ph.next_packet());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let sched = PhaseSchedule::realistic(2_000);
        let mut a = phased(300, 0x99, sched.clone());
        let mut b = phased(300, 0x99, sched);
        for _ in 0..2_000 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    #[test]
    fn diurnal_trough_concentrates_traffic() {
        let sched = PhaseSchedule {
            diurnal_period: 10_000,
            trough_active_pct: 5,
            ..PhaseSchedule::stationary()
        };
        assert_eq!(sched.active_pct_at(0), 100);
        assert_eq!(sched.active_pct_at(5_000), 5);
        assert_eq!(sched.active_pct_at(10_000), 100);
        let mut t = phased(1_000, 0x11, sched);
        let mut peak = HashSet::new();
        let mut trough = HashSet::new();
        for i in 0..10_000u64 {
            let f = t.next_flow();
            // First and last 10% of the cycle are near-peak; the middle
            // 10% is the trough.
            if !(1_000..9_000).contains(&i) {
                peak.insert(f);
            } else if (4_500..5_500).contains(&i) {
                trough.insert(f);
            }
        }
        assert!(
            trough.len() * 3 < peak.len(),
            "trough {} vs peak {}",
            trough.len(),
            peak.len()
        );
    }

    #[test]
    fn flash_crowd_concentrates_on_hot_set() {
        let sched = PhaseSchedule {
            flash_every: 1_000,
            flash_len: 500,
            flash_hot_flows: 4,
            flash_share_pct: 80,
            ..PhaseSchedule::stationary()
        };
        // Large pool + weak skew so baseline concentration is low.
        let mut t = PhasedTrace::new(PhasedConfig {
            base: IctfConfig {
                theta: 0.2,
                ..base(5_000, 0x22)
            },
            schedule: sched,
        });
        let mut in_crowd = std::collections::HashMap::new();
        let mut outside = std::collections::HashMap::new();
        for i in 0..10_000u64 {
            let f = t.next_flow();
            if i % 1_000 < 500 {
                *in_crowd.entry(f).or_insert(0u64) += 1;
            } else {
                *outside.entry(f).or_insert(0u64) += 1;
            }
        }
        let top4 = |m: &std::collections::HashMap<FiveTuple, u64>| {
            let mut v: Vec<u64> = m.values().copied().collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.iter().take(4).sum::<u64>() as f64 / v.iter().sum::<u64>() as f64
        };
        let crowd_share = top4(&in_crowd);
        let base_share = top4(&outside);
        assert!(
            crowd_share > 2.0 * base_share,
            "crowd top-4 share {crowd_share:.3} vs baseline {base_share:.3}"
        );
    }

    #[test]
    fn heavy_hitters_migrate_across_epochs() {
        let sched = PhaseSchedule {
            migrate_every: 5_000,
            ..PhaseSchedule::stationary()
        };
        let mut t = phased(1_000, 0x33, sched);
        let hottest = |t: &mut PhasedTrace, n: u64| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..n {
                *counts.entry(t.next_flow()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        let epoch0 = hottest(&mut t, 5_000);
        let epoch1 = hottest(&mut t, 5_000);
        assert_ne!(epoch0, epoch1, "hot flow should move between epochs");
    }

    #[test]
    fn churn_replaces_identities() {
        let sched = PhaseSchedule {
            churn_every: 5_000,
            churn_pct: 50,
            ..PhaseSchedule::stationary()
        };
        let mut t = phased(1_000, 0x44, sched);
        let hottest = |t: &mut PhasedTrace, n: u64| {
            let mut counts = std::collections::HashMap::new();
            for _ in 0..n {
                *counts.entry(t.next_flow()).or_insert(0u64) += 1;
            }
            counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
        };
        assert_ne!(hottest(&mut t, 5_000), hottest(&mut t, 5_000));
    }

    #[test]
    fn describe_names_every_active_effect() {
        let d = PhaseSchedule::realistic(100_000).describe();
        for needle in ["diurnal", "flash crowds", "migration", "churn"] {
            assert!(d.contains(needle), "missing {needle} in {d}");
        }
        assert!(PhaseSchedule::stationary()
            .describe()
            .contains("stationary"));
    }
}
