//! ICTF-like packet stream.
//!
//! Models the paper's Figure 5 workload: "packet streams came from a pool
//! of 100,000 flows that were uniformly sampled from the ICTF trace; those
//! traces had a Zipf distribution with a skewness of 1.1" (§5.3). Each
//! call to [`IctfLikeTrace::next_packet`] draws a flow rank from the Zipf
//! sampler and builds a packet for that flow.

use rand::Rng;
use rand::SeedableRng;
use snic_types::packet::PacketBuilder;
use snic_types::{FiveTuple, Packet};

use crate::flows::{FlowTable, FlowTableConfig};
use crate::payload::PayloadGen;
use crate::zipf::ZipfSampler;

/// Configuration for an [`IctfLikeTrace`].
#[derive(Debug, Clone)]
pub struct IctfConfig {
    /// Number of distinct flows in the pool.
    pub flows: usize,
    /// Zipf skewness of flow popularity.
    pub theta: f64,
    /// Mean payload length in bytes.
    pub mean_payload: usize,
    /// Probability a payload carries a DPI signature.
    pub signature_rate: f64,
    /// Signature patterns to embed.
    pub patterns: Vec<Vec<u8>>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IctfConfig {
    fn default() -> Self {
        IctfConfig {
            flows: 100_000,
            theta: 1.1,
            mean_payload: 256,
            signature_rate: 0.01,
            patterns: Vec::new(),
            seed: 0x1c7f,
        }
    }
}

/// A deterministic ICTF-like packet stream.
#[derive(Debug)]
pub struct IctfLikeTrace {
    flows: FlowTable,
    zipf: ZipfSampler,
    payloads: PayloadGen,
    rng: rand::rngs::StdRng,
    mean_payload: usize,
    generated: u64,
}

impl IctfLikeTrace {
    /// Build the flow pool and samplers.
    pub fn new(config: IctfConfig) -> IctfLikeTrace {
        let flows = FlowTable::generate(&FlowTableConfig {
            flows: config.flows,
            tcp_fraction: 0.9,
            seed: config.seed ^ 0xf10f,
        });
        IctfLikeTrace {
            flows,
            zipf: ZipfSampler::new(config.flows, config.theta),
            payloads: PayloadGen::new(config.seed ^ 0xbeef, config.patterns, config.signature_rate),
            rng: rand::rngs::StdRng::seed_from_u64(config.seed),
            mean_payload: config.mean_payload,
            generated: 0,
        }
    }

    /// Draw the next flow (without building packet bytes). Useful for
    /// experiments that only need the reference stream, not wire bytes.
    pub fn next_flow(&mut self) -> FiveTuple {
        let rank = self.zipf.sample(&mut self.rng);
        self.flows.get(rank)
    }

    /// Build the next packet in the stream.
    pub fn next_packet(&mut self) -> Packet {
        let ft = self.next_flow();
        // Payload lengths jitter ±50% around the mean.
        let len = if self.mean_payload == 0 {
            0
        } else {
            let half = self.mean_payload / 2;
            self.rng
                .random_range(self.mean_payload - half..=self.mean_payload + half)
        };
        let payload = self.payloads.generate(len);
        self.generated += 1;
        PacketBuilder::new(ft.src_ip, ft.dst_ip, ft.protocol, ft.src_port, ft.dst_port)
            .payload(payload)
            .build()
    }

    /// Total packets generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// The underlying flow pool.
    pub fn flow_table(&self) -> &FlowTable {
        &self.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> IctfConfig {
        IctfConfig {
            flows: 1000,
            mean_payload: 64,
            ..IctfConfig::default()
        }
    }

    #[test]
    fn packets_parse_and_match_flows() {
        let mut t = IctfLikeTrace::new(small());
        for _ in 0..200 {
            let p = t.next_packet();
            let ft = FiveTuple::from_packet(&p).unwrap();
            assert!(t.flow_table().iter().any(|f| *f == ft));
        }
        assert_eq!(t.generated(), 200);
    }

    #[test]
    fn popularity_is_skewed() {
        let mut t = IctfLikeTrace::new(small());
        let mut counts = std::collections::HashMap::new();
        for _ in 0..20_000 {
            *counts.entry(t.next_flow()).or_insert(0u64) += 1;
        }
        let mut sorted: Vec<u64> = counts.values().copied().collect();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        // Top flow should dominate the median flow under Zipf(1.1).
        assert!(sorted[0] > 20 * sorted[sorted.len() / 2].max(1));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = IctfLikeTrace::new(small());
        let mut b = IctfLikeTrace::new(small());
        for _ in 0..50 {
            assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    #[test]
    fn payload_lengths_jitter_around_mean() {
        let mut t = IctfLikeTrace::new(IctfConfig {
            flows: 100,
            mean_payload: 200,
            ..small()
        });
        let mut total = 0usize;
        for _ in 0..1000 {
            let p = t.next_packet();
            let l = p.payload().len();
            assert!((100..=300).contains(&l), "{l}");
            total += l;
        }
        let mean = total / 1000;
        assert!((150..=250).contains(&mean), "{mean}");
    }
}
