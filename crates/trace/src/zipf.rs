//! Zipf-distributed rank sampling.
//!
//! The Figure 5 workload draws packets from a pool of flows whose
//! popularity is Zipf with skewness θ = 1.1 (§5.3). This module implements
//! inverse-CDF sampling over precomputed cumulative weights; construction
//! is O(n), sampling is O(log n), and everything is deterministic given
//! the caller's RNG.

use rand::Rng;

/// A sampler producing ranks `0..n` with probability ∝ `1 / (rank+1)^theta`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with skewness `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or non-finite.
    pub fn new(n: usize, theta: f64) -> ZipfSampler {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(theta.is_finite() && theta >= 0.0, "invalid Zipf skewness");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank as f64) + 1.0).powf(theta);
            cumulative.push(total);
        }
        // Normalize so the last entry is exactly 1.0.
        for c in &mut cumulative {
            *c /= total;
        }
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the sampler has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // Construction guarantees n > 0.
    }

    /// Draw one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }

    /// The probability mass of `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        hi - lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(1000, 1.1);
        let total: f64 = (0..1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn rank0_is_most_popular() {
        let z = ZipfSampler::new(100, 1.1);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequency_matches_pmf() {
        let z = ZipfSampler::new(50, 1.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut counts = vec![0u64; 50];
        let draws = 200_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        for r in [0usize, 1, 5, 20] {
            let empirical = counts[r] as f64 / draws as f64;
            let expected = z.pmf(r);
            assert!(
                (empirical - expected).abs() < 0.01,
                "rank {r}: empirical {empirical} vs expected {expected}"
            );
        }
    }

    #[test]
    fn sample_is_deterministic_given_seed() {
        let z = ZipfSampler::new(1000, 1.1);
        let a: Vec<usize> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn all_ranks_reachable_small_n() {
        let z = ZipfSampler::new(3, 1.1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.1);
    }
}
