//! Seeded populations of five-tuple flows.

use rand::Rng;
use rand::SeedableRng;
use snic_types::{FiveTuple, Protocol};

/// Configuration for a [`FlowTable`].
#[derive(Debug, Clone)]
pub struct FlowTableConfig {
    /// Number of distinct flows.
    pub flows: usize,
    /// Fraction of flows that are TCP (the rest are UDP).
    pub tcp_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowTableConfig {
    fn default() -> Self {
        // The paper's sampled ICTF workload: 100,000 flows, mostly TCP.
        FlowTableConfig {
            flows: 100_000,
            tcp_fraction: 0.9,
            seed: 0x5_17c,
        }
    }
}

/// A fixed population of distinct five-tuple flows.
#[derive(Debug, Clone)]
pub struct FlowTable {
    flows: Vec<FiveTuple>,
}

impl FlowTable {
    /// Generate `config.flows` distinct flows.
    pub fn generate(config: &FlowTableConfig) -> FlowTable {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut flows = Vec::with_capacity(config.flows);
        let mut seen = std::collections::HashSet::with_capacity(config.flows);
        while flows.len() < config.flows {
            let protocol = if rng.random::<f64>() < config.tcp_fraction {
                Protocol::Tcp
            } else {
                Protocol::Udp
            };
            let ft = FiveTuple {
                // Private 10/8 sources toward a public-looking /16.
                src_ip: 0x0a00_0000 | rng.random_range(0u32..1 << 24),
                dst_ip: 0xc633_0000 | rng.random_range(0u32..1 << 16),
                protocol,
                src_port: rng.random_range(1024..u16::MAX),
                dst_port: [80u16, 443, 53, 8080, 22, 25][rng.random_range(0..6usize)],
            };
            if seen.insert(ft) {
                flows.push(ft);
            }
        }
        FlowTable { flows }
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The flow at `rank` (0 = most popular under a Zipf overlay).
    pub fn get(&self, rank: usize) -> FiveTuple {
        self.flows[rank]
    }

    /// Iterate over all flows.
    pub fn iter(&self) -> impl Iterator<Item = &FiveTuple> {
        self.flows.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count_distinct() {
        let t = FlowTable::generate(&FlowTableConfig {
            flows: 5000,
            tcp_fraction: 0.9,
            seed: 1,
        });
        assert_eq!(t.len(), 5000);
        let set: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(set.len(), 5000);
    }

    #[test]
    fn deterministic_for_seed() {
        let cfg = FlowTableConfig {
            flows: 100,
            tcp_fraction: 0.5,
            seed: 9,
        };
        let a = FlowTable::generate(&cfg);
        let b = FlowTable::generate(&cfg);
        assert_eq!(a.get(0), b.get(0));
        assert_eq!(a.get(99), b.get(99));
    }

    #[test]
    fn tcp_fraction_respected() {
        let t = FlowTable::generate(&FlowTableConfig {
            flows: 10_000,
            tcp_fraction: 0.7,
            seed: 2,
        });
        let tcp = t.iter().filter(|f| f.protocol == Protocol::Tcp).count();
        let frac = tcp as f64 / 10_000.0;
        assert!((frac - 0.7).abs() < 0.03, "{frac}");
    }

    #[test]
    fn addresses_in_expected_ranges() {
        let t = FlowTable::generate(&FlowTableConfig {
            flows: 100,
            tcp_fraction: 1.0,
            seed: 3,
        });
        for f in t.iter() {
            assert_eq!(f.src_ip >> 24, 0x0a);
            assert_eq!(f.dst_ip >> 16, 0xc633);
            assert!(f.src_port >= 1024);
        }
    }
}
