//! Payload synthesis.
//!
//! DPI experiments need payloads in which a controllable fraction of
//! packets contain signature patterns; everything else is filler drawn
//! from a printable alphabet so Aho-Corasick walks realistic text.

use rand::Rng;
use rand::SeedableRng;

/// A deterministic payload generator.
#[derive(Debug)]
pub struct PayloadGen {
    rng: rand::rngs::StdRng,
    /// Patterns that may be embedded into payloads.
    patterns: Vec<Vec<u8>>,
    /// Probability that a generated payload embeds one pattern.
    hit_rate: f64,
}

impl PayloadGen {
    /// Create a generator with the given embedded-pattern probability.
    pub fn new(seed: u64, patterns: Vec<Vec<u8>>, hit_rate: f64) -> PayloadGen {
        assert!(
            (0.0..=1.0).contains(&hit_rate),
            "hit_rate must be a probability"
        );
        PayloadGen {
            rng: rand::rngs::StdRng::seed_from_u64(seed),
            patterns,
            hit_rate,
        }
    }

    /// Generate `len` bytes of filler, embedding a pattern with the
    /// configured probability (if any patterns were supplied and fit).
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789 ./:-_";
        let mut out: Vec<u8> = (0..len)
            .map(|_| ALPHABET[self.rng.random_range(0..ALPHABET.len())])
            .collect();
        if !self.patterns.is_empty() && self.rng.random::<f64>() < self.hit_rate {
            let idx = self.rng.random_range(0..self.patterns.len());
            let pat = self.patterns[idx].clone();
            if pat.len() <= out.len() {
                let pos = self.rng.random_range(0..=out.len() - pat.len());
                out[pos..pos + pat.len()].copy_from_slice(&pat);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contains(hay: &[u8], needle: &[u8]) -> bool {
        hay.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn respects_length() {
        let mut g = PayloadGen::new(1, vec![], 0.0);
        assert_eq!(g.generate(64).len(), 64);
        assert_eq!(g.generate(0).len(), 0);
    }

    #[test]
    fn embeds_patterns_at_requested_rate() {
        let pat = b"EVILSIG".to_vec();
        let mut g = PayloadGen::new(2, vec![pat.clone()], 0.5);
        let hits = (0..2000)
            .filter(|_| contains(&g.generate(100), &pat))
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "{rate}");
    }

    #[test]
    fn zero_hit_rate_never_embeds() {
        let pat = b"XNEVERX".to_vec();
        let mut g = PayloadGen::new(3, vec![pat.clone()], 0.0);
        for _ in 0..500 {
            assert!(!contains(&g.generate(80), &pat));
        }
    }

    #[test]
    fn pattern_longer_than_payload_skipped() {
        let pat = vec![b'z'; 100];
        let mut g = PayloadGen::new(4, vec![pat], 1.0);
        // Must not panic when the payload is shorter than the pattern.
        let p = g.generate(10);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = PayloadGen::new(9, vec![b"sig".to_vec()], 0.3);
        let mut b = PayloadGen::new(9, vec![b"sig".to_vec()], 0.3);
        assert_eq!(a.generate(128), b.generate(128));
    }
}
