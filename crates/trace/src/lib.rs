//! Synthetic packet-trace generation.
//!
//! The paper evaluates with two traces (§5.1): a one-hour anonymized CAIDA
//! 2016 trace (26.7 M TCP flows, 1.34 B packets) and the 2010 ICTF
//! capture-the-flag trace, from which 100,000 flows were uniformly sampled;
//! the sampled workload followed "a Zipf distribution with a skewness of
//! 1.1" (§5.3). Neither trace ships with this repository, so this crate
//! generates synthetic equivalents:
//!
//! - [`ZipfSampler`]: a deterministic Zipf(θ) sampler over flow ranks,
//! - [`FlowTable`]: a seeded population of five-tuple flows,
//! - [`IctfLikeTrace`]: packets drawn from a fixed flow pool with Zipf
//!   popularity — the workload that drives the Figure 5 experiments,
//! - [`CaidaLikeTrace`]: a time-stamped trace with flow arrival/departure
//!   churn and heavy-tailed flow sizes — drives the Monitor experiments
//!   (Figure 7 and the Table 6 memory profile),
//! - [`PayloadGen`]: payload synthesis with optional embedded DPI patterns,
//! - [`PhasedTrace`]: the ICTF-like stream with time-varying workload
//!   phases (diurnal cycles, flash crowds, heavy-hitter migration, flow
//!   churn) the paper's stationary snapshot cannot express — drives the
//!   32–64-tenant streaming sweeps.
//!
//! All generators are deterministic given a seed. [`wire`] adds a
//! compact binary serialization so generated traces can be exported and
//! replayed byte-identically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod caida;
pub mod flows;
pub mod ictf;
pub mod payload;
pub mod phases;
pub mod wire;
pub mod zipf;

pub use caida::{CaidaConfig, CaidaLikeTrace};
pub use flows::{FlowTable, FlowTableConfig};
pub use ictf::{IctfConfig, IctfLikeTrace};
pub use payload::PayloadGen;
pub use phases::{PhaseSchedule, PhasedConfig, PhasedTrace};
pub use wire::{deserialize_trace, load_trace, save_trace, serialize_trace};
pub use zipf::ZipfSampler;
