//! Trace serialization: a compact binary format for packet traces.
//!
//! Experiments that want byte-identical workloads across machines (or
//! want to skip regeneration cost) can export a generated trace and
//! reload it later. The format is deliberately simple:
//!
//! ```text
//! magic "SNICTRC1" | count: u32 LE | count x ( arrival_ps: u64 LE |
//!                                              len: u32 LE | bytes )
//! ```

use bytes::Bytes;
use snic_types::{Packet, Picos, SnicError};

/// Format magic.
pub const MAGIC: &[u8; 8] = b"SNICTRC1";

/// Serialize packets to the wire format.
pub fn serialize_trace(packets: &[Packet]) -> Vec<u8> {
    let body: usize = packets.iter().map(|p| 12 + p.len()).sum();
    let mut out = Vec::with_capacity(MAGIC.len() + 4 + body);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(packets.len() as u32).to_le_bytes());
    for p in packets {
        out.extend_from_slice(&p.arrival.0.to_le_bytes());
        out.extend_from_slice(&(p.len() as u32).to_le_bytes());
        out.extend_from_slice(&p.data);
    }
    out
}

/// Deserialize a trace; strict (rejects truncation, bad magic, and
/// trailing garbage).
pub fn deserialize_trace(data: &[u8]) -> Result<Vec<Packet>, SnicError> {
    let take = |data: &[u8], at: &mut usize, n: usize| -> Result<Vec<u8>, SnicError> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= data.len())
            .ok_or(SnicError::Malformed("trace truncated"))?;
        let out = data[*at..end].to_vec();
        *at = end;
        Ok(out)
    };
    let mut at = 0usize;
    if take(data, &mut at, 8)? != MAGIC {
        return Err(SnicError::Malformed("bad trace magic"));
    }
    let count = u32::from_le_bytes(take(data, &mut at, 4)?.try_into().expect("4 bytes")) as usize;
    let mut out = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let arrival = u64::from_le_bytes(take(data, &mut at, 8)?.try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(take(data, &mut at, 4)?.try_into().expect("4 bytes")) as usize;
        let bytes = take(data, &mut at, len)?;
        let mut p = Packet::from_bytes(Bytes::from(bytes));
        p.arrival = Picos(arrival);
        out.push(p);
    }
    if at != data.len() {
        return Err(SnicError::Malformed("trailing bytes after trace"));
    }
    Ok(out)
}

/// Write a trace to a file.
pub fn save_trace(path: &std::path::Path, packets: &[Packet]) -> std::io::Result<()> {
    std::fs::write(path, serialize_trace(packets))
}

/// Read a trace from a file.
pub fn load_trace(path: &std::path::Path) -> Result<Vec<Packet>, SnicError> {
    let data =
        std::fs::read(path).map_err(|e| SnicError::InvalidConfig(format!("read {path:?}: {e}")))?;
    deserialize_trace(&data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ictf::{IctfConfig, IctfLikeTrace};

    fn sample(n: usize) -> Vec<Packet> {
        let mut t = IctfLikeTrace::new(IctfConfig {
            flows: 100,
            mean_payload: 64,
            ..IctfConfig::default()
        });
        (0..n)
            .map(|i| {
                let mut p = t.next_packet();
                p.arrival = Picos(i as u64 * 1000);
                p
            })
            .collect()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let packets = sample(50);
        let got = deserialize_trace(&serialize_trace(&packets)).unwrap();
        assert_eq!(got, packets);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(deserialize_trace(&serialize_trace(&[])).unwrap(), vec![]);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut data = serialize_trace(&sample(3));
        data[0] ^= 0xff;
        assert!(deserialize_trace(&data).is_err());
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let data = serialize_trace(&sample(5));
        for cut in [7usize, 11, 20, data.len() - 1] {
            assert!(deserialize_trace(&data[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut data = serialize_trace(&sample(2));
        data.push(0);
        assert!(deserialize_trace(&data).is_err());
    }

    #[test]
    fn file_round_trip() {
        let packets = sample(10);
        let path = std::env::temp_dir().join("snic_trace_roundtrip.bin");
        save_trace(&path, &packets).unwrap();
        let got = load_trace(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(got, packets);
    }

    #[test]
    fn count_mismatch_rejected() {
        // Claiming more packets than present must fail, not loop.
        let mut data = serialize_trace(&sample(1));
        data[8..12].copy_from_slice(&100u32.to_le_bytes());
        assert!(deserialize_trace(&data).is_err());
    }
}
