//! CAIDA-like time-stamped trace with flow churn.
//!
//! The Monitor experiments (Figure 7, Table 6) run over five-minute
//! windows of a backbone trace: flows arrive and depart over time, flow
//! sizes are heavy-tailed, and the number of *concurrently tracked* flows
//! grows as the measurement window fills. This generator produces a
//! time-stamped packet/flow stream with those properties.

use rand::Rng;
use rand::SeedableRng;
use snic_types::{FiveTuple, Picos, Protocol};

/// Configuration for a [`CaidaLikeTrace`].
#[derive(Debug, Clone)]
pub struct CaidaConfig {
    /// New flows arriving per simulated second.
    pub flow_arrival_rate: f64,
    /// Pareto shape for packets-per-flow (heavier tail when smaller).
    pub size_shape: f64,
    /// Minimum packets per flow (Pareto scale).
    pub size_min: u64,
    /// Mean packet inter-arrival within a flow, in microseconds.
    pub intra_flow_gap_us: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CaidaConfig {
    fn default() -> Self {
        CaidaConfig {
            flow_arrival_rate: 12_000.0,
            size_shape: 1.3,
            size_min: 2,
            intra_flow_gap_us: 800,
            seed: 0xca1d_a216,
        }
    }
}

/// One record of the trace: a flow key with a timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the packet appears.
    pub time: Picos,
    /// Flow it belongs to.
    pub flow: FiveTuple,
    /// Frame length in bytes.
    pub frame_len: u32,
}

/// A CAIDA-like trace, materialized for a bounded duration.
#[derive(Debug)]
pub struct CaidaLikeTrace {
    records: Vec<TraceRecord>,
    distinct_flows: usize,
}

impl CaidaLikeTrace {
    /// Generate all packets within `[0, duration)`.
    ///
    /// Flows arrive as a Poisson-ish process (exponential gaps), each flow
    /// draws a Pareto packet count, and its packets spread forward in time
    /// with exponential intra-flow gaps. The output is sorted by time.
    pub fn generate(config: &CaidaConfig, duration: Picos) -> CaidaLikeTrace {
        let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
        let mut records = Vec::new();
        let mut distinct = 0usize;
        let mut t = 0f64; // Seconds.
        let horizon = duration.as_secs_f64();
        while t < horizon {
            // Next flow arrival.
            let gap = -(1.0 - rng.random::<f64>()).ln() / config.flow_arrival_rate;
            t += gap;
            if t >= horizon {
                break;
            }
            distinct += 1;
            let flow = FiveTuple {
                src_ip: rng.random(),
                dst_ip: rng.random(),
                protocol: if rng.random::<f64>() < 0.85 {
                    Protocol::Tcp
                } else {
                    Protocol::Udp
                },
                src_port: rng.random_range(1024..u16::MAX),
                dst_port: [80u16, 443, 53, 123, 8443][rng.random_range(0..5usize)],
            };
            // Pareto-distributed packet count.
            let u: f64 = 1.0 - rng.random::<f64>();
            let pkts = ((config.size_min as f64) / u.powf(1.0 / config.size_shape)).min(1e6) as u64;
            let mut pt = t;
            for _ in 0..pkts.max(1) {
                if pt >= horizon {
                    break;
                }
                let frame_len = 64 + rng.random_range(0u32..1436);
                records.push(TraceRecord {
                    time: Picos((pt * 1e12) as u64),
                    flow,
                    frame_len,
                });
                let gap_s =
                    (config.intra_flow_gap_us as f64 / 1e6) * -(1.0 - rng.random::<f64>()).ln();
                pt += gap_s;
            }
        }
        records.sort_by_key(|r| r.time);
        CaidaLikeTrace {
            records,
            distinct_flows: distinct,
        }
    }

    /// All records in time order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of distinct flows that arrived.
    pub fn distinct_flows(&self) -> usize {
        self.distinct_flows
    }

    /// Count distinct flows seen in `[start, end)` — what a monitor NF
    /// observing a measurement window would track.
    pub fn flows_in_window(&self, start: Picos, end: Picos) -> usize {
        let mut set = std::collections::HashSet::new();
        for r in &self.records {
            if r.time >= start && r.time < end {
                set.insert(r.flow);
            }
        }
        set.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_second() -> CaidaLikeTrace {
        CaidaLikeTrace::generate(
            &CaidaConfig {
                flow_arrival_rate: 2000.0,
                ..CaidaConfig::default()
            },
            Picos::millis(1000),
        )
    }

    #[test]
    fn records_are_time_sorted() {
        let t = one_second();
        assert!(t.records().windows(2).all(|w| w[0].time <= w[1].time));
        assert!(!t.records().is_empty());
    }

    #[test]
    fn flow_arrivals_near_rate() {
        let t = one_second();
        let n = t.distinct_flows() as f64;
        assert!(
            (1700.0..2300.0).contains(&n),
            "{n} arrivals for rate 2000/s"
        );
    }

    #[test]
    fn flow_sizes_heavy_tailed() {
        let t = one_second();
        let mut counts = std::collections::HashMap::new();
        for r in t.records() {
            *counts.entry(r.flow).or_insert(0u64) += 1;
        }
        let mut sizes: Vec<u64> = counts.values().copied().collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Largest flow much bigger than median flow.
        assert!(sizes[0] >= 10 * sizes[sizes.len() / 2].max(1));
    }

    #[test]
    fn window_counting_monotone_in_width() {
        let t = one_second();
        let w1 = t.flows_in_window(Picos::ZERO, Picos::millis(100));
        let w2 = t.flows_in_window(Picos::ZERO, Picos::millis(500));
        assert!(w2 >= w1);
        assert!(w1 > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CaidaConfig {
            flow_arrival_rate: 500.0,
            ..CaidaConfig::default()
        };
        let a = CaidaLikeTrace::generate(&cfg, Picos::millis(200));
        let b = CaidaLikeTrace::generate(&cfg, Picos::millis(200));
        assert_eq!(a.records().len(), b.records().len());
        assert_eq!(a.records().first(), b.records().first());
    }

    #[test]
    fn frame_lengths_in_ethernet_range() {
        let t = one_second();
        assert!(t
            .records()
            .iter()
            .all(|r| (64..=1500).contains(&r.frame_len)));
    }
}
