//! Property tests for the workload-phase layer: any schedule, any
//! seed — the stream must stay deterministic, in-pool, and conservative
//! (N draws produce exactly N events), and the degenerate schedule must
//! reproduce the stationary paper workload bit-for-bit.

use proptest::prelude::*;
use snic_trace::{IctfConfig, IctfLikeTrace, PhaseSchedule, PhasedConfig, PhasedTrace};

fn schedules() -> impl Strategy<Value = PhaseSchedule> {
    (
        0u64..2_000,
        1u32..=100,
        (0u64..2_000, 0u64..1_000, 0usize..32, 0u32..=100),
        0u64..2_000,
        (0u64..2_000, 0u32..=100),
    )
        .prop_map(
            |(
                diurnal_period,
                trough_active_pct,
                (flash_every, flash_len, flash_hot_flows, flash_share_pct),
                migrate_every,
                (churn_every, churn_pct),
            )| PhaseSchedule {
                diurnal_period,
                trough_active_pct,
                flash_every,
                flash_len,
                flash_hot_flows,
                flash_share_pct,
                migrate_every,
                churn_every,
                churn_pct,
            },
        )
}

fn config(flows: usize, seed: u64, schedule: PhaseSchedule) -> PhasedConfig {
    PhasedConfig {
        base: IctfConfig {
            flows,
            mean_payload: 32,
            seed,
            ..IctfConfig::default()
        },
        schedule,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same (schedule, seed) ⇒ the identical packet sequence — the
    /// invariant streamed replays and the sim pool's rewinds rest on.
    #[test]
    fn seed_deterministic_under_any_schedule(
        sched in schedules(),
        seed in any::<u64>(),
        n in 1usize..400,
    ) {
        let mut a = PhasedTrace::new(config(200, seed, sched.clone()));
        let mut b = PhasedTrace::new(config(200, seed, sched));
        for _ in 0..n {
            prop_assert_eq!(a.next_packet(), b.next_packet());
        }
    }

    /// Event conservation: n draws tick the phase clock exactly n
    /// times, and every drawn flow is a member of the generated pool —
    /// no phase transform invents or loses traffic.
    #[test]
    fn draws_conserve_events_and_stay_in_pool(
        sched in schedules(),
        seed in any::<u64>(),
        n in 1u64..400,
    ) {
        let mut t = PhasedTrace::new(config(100, seed, sched));
        for _ in 0..n {
            let f = t.next_flow();
            prop_assert!(t.flow_table().iter().any(|g| *g == f));
        }
        prop_assert_eq!(t.generated(), n);
    }

    /// The stationary schedule is the paper snapshot: bit-identical to
    /// the plain ICTF-like stream at any seed.
    #[test]
    fn stationary_matches_ictf_for_any_seed(seed in any::<u64>()) {
        let base = IctfConfig {
            flows: 150,
            mean_payload: 32,
            seed,
            ..IctfConfig::default()
        };
        let mut plain = IctfLikeTrace::new(base.clone());
        let mut ph = PhasedTrace::new(PhasedConfig {
            base,
            schedule: PhaseSchedule::stationary(),
        });
        for _ in 0..200 {
            prop_assert_eq!(plain.next_packet(), ph.next_packet());
        }
    }
}
