//! Pass 0 of the S-NIC verifier: static analysis of NF programs.
//!
//! The verifier crates prove three things about a launch *after* the
//! tenant hands over a manifest: the allocation is a partition (Pass 1),
//! observed traces stay inside it (Pass 2), and fault transcripts respect
//! the lifecycle (Pass 3). All of that trusts the NF *program* blindly.
//! This crate closes the gap: a network function is submitted as a small
//! dataflow IR ([`ir::NfProgram`]) alongside its code image, and an
//! abstract-interpretation engine ([`engine::analyze`]) proves — before
//! `nf_launch` touches any hardware state — that
//!
//! 1. **every load and store lands inside the manifest's granted
//!    regions** (worklist fixpoint over an interval domain),
//! 2. **no packet- or state-derived value flows to another tenant's
//!    region, an ungranted accelerator, or the host bus outside the
//!    granted DMA window** (a per-tenant taint lattice), and
//! 3. **per-packet instruction count is bounded** (a loop-bound pass
//!    over the CFG's back edges), giving admission control a ceiling.
//!
//! A clean analysis yields an [`certificate::AnalysisCertificate`] whose
//! digest is folded into `nf_attest` quotes, so a remote verifier learns
//! not just *what* launched but that the device proved it confined.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certificate;
pub mod domain;
pub mod engine;
pub mod ir;

pub use certificate::AnalysisCertificate;
pub use domain::{Interval, Taint};
pub use engine::{
    analyze, analyze_with_budget, AnalysisManifest, AnalysisReport, AnalysisViolation,
    AnalysisViolationKind, DEFAULT_STEP_BUDGET,
};
pub use ir::{
    Block, BlockId, NfProgram, Op, Operand, ProgramBuilder, Reg, RegionClass, RegionDecl, RegionId,
    Terminator,
};

/// A complete Pass 0 submission: the program and the manifest the tenant
/// claims it is confined to. This is what travels in a `LaunchRequest`.
#[derive(Debug, Clone)]
pub struct LaunchAnalysis {
    /// The NF's dataflow IR.
    pub program: ir::NfProgram,
    /// The claimed resource envelope the analysis proves against.
    pub manifest: engine::AnalysisManifest,
}
