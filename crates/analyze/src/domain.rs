//! The abstract domains: intervals for address bounds, a taint lattice
//! for per-tenant information flow.

use std::fmt;

/// A closed interval `[lo, hi]` of `u64` values (the address-bounds
/// domain). The full range doubles as ⊤; ⊥ is represented by absence
/// (an undefined register) rather than an empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

impl Interval {
    /// The top element: any value.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u64::MAX,
    };

    /// `[lo, hi]`; callers must keep `lo <= hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// The singleton `[v, v]`.
    pub fn point(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// True if this is the full range.
    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// Least upper bound (interval hull).
    pub fn join(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Abstract addition (saturating: NF address arithmetic never wraps,
    /// and saturation only ever widens the result, which is sound).
    pub fn add(&self, other: &Interval) -> Interval {
        Interval {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Abstract multiplication by a constant scale.
    pub fn scale(&self, k: u64) -> Interval {
        Interval {
            lo: self.lo.saturating_mul(k),
            hi: self.hi.saturating_mul(k),
        }
    }

    /// Abstract `x % m` for `m > 0`: identity when the interval already
    /// sits inside `[0, m)`, else the full residue range.
    pub fn rem(&self, m: u64) -> Interval {
        debug_assert!(m > 0, "modulus must be positive");
        if self.hi < m {
            *self
        } else {
            Interval { lo: 0, hi: m - 1 }
        }
    }

    /// Standard widening: any bound that grew jumps to its extreme, so
    /// ascending chains stabilize in one step per bound.
    pub fn widen(&self, next: &Interval) -> Interval {
        Interval {
            lo: if next.lo < self.lo { 0 } else { self.lo },
            hi: if next.hi > self.hi { u64::MAX } else { self.hi },
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            write!(f, "⊤")
        } else {
            write!(f, "[{:#x}, {:#x}]", self.lo, self.hi)
        }
    }
}

/// The information-flow lattice: a powerset of taint sources, joined by
/// union. `PACKET` marks values derived from wire data, `STATE` marks
/// values derived from the tenant's own memory — §4's isolation story
/// says neither may leave the tenant's granted envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Taint(u8);

impl Taint {
    /// Untainted (lattice bottom).
    pub const NONE: Taint = Taint(0);
    /// Derived from packet contents.
    pub const PACKET: Taint = Taint(1);
    /// Derived from tenant state (rules, tables, counters).
    pub const STATE: Taint = Taint(2);

    /// Lattice join (set union).
    pub fn union(self, other: Taint) -> Taint {
        Taint(self.0 | other.0)
    }

    /// True if no taint source reaches this value.
    pub fn is_clean(self) -> bool {
        self.0 == 0
    }

    /// True if every source in `other` is present in `self`.
    pub fn contains(self, other: Taint) -> bool {
        self.0 & other.0 == other.0
    }

    /// Human-readable source list.
    pub fn label(self) -> &'static str {
        match self.0 & 3 {
            0 => "clean",
            1 => "packet-derived",
            2 => "state-derived",
            _ => "packet+state-derived",
        }
    }
}

/// One register's abstract value: an interval plus its taint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Value bounds.
    pub iv: Interval,
    /// Information-flow sources.
    pub taint: Taint,
}

impl AbsVal {
    /// Join both components.
    pub fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.join(&other.iv),
            taint: self.taint.union(other.taint),
        }
    }

    /// Widen the interval, join the taint (the taint lattice is finite,
    /// so it needs no widening).
    pub fn widen(&self, next: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.widen(&next.iv),
            taint: self.taint.union(next.taint),
        }
    }
}

/// The per-block abstract state: one optional [`AbsVal`] per register
/// (`None` = undefined / ⊥).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// Register file.
    pub regs: Vec<Option<AbsVal>>,
}

impl AbsState {
    /// All registers undefined.
    pub fn bottom(n_regs: usize) -> AbsState {
        AbsState {
            regs: vec![None; n_regs],
        }
    }

    /// Pointwise join; an undefined register joined with a defined one
    /// takes the defined value (⊥ is the identity).
    pub fn join(&self, other: &AbsState) -> AbsState {
        let regs = self
            .regs
            .iter()
            .zip(&other.regs)
            .map(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => Some(x.join(y)),
                (Some(x), None) | (None, Some(x)) => Some(*x),
                (None, None) => None,
            })
            .collect();
        AbsState { regs }
    }

    /// Pointwise widening against `next` (used at loop headers).
    pub fn widen(&self, next: &AbsState) -> AbsState {
        let regs = self
            .regs
            .iter()
            .zip(&next.regs)
            .map(|(a, b)| match (a, b) {
                (Some(x), Some(y)) => Some(x.widen(y)),
                (Some(x), None) | (None, Some(x)) => Some(*x),
                (None, None) => None,
            })
            .collect();
        AbsState { regs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_join_hull() {
        let a = Interval::new(4, 10);
        let b = Interval::new(8, 20);
        assert_eq!(a.join(&b), Interval::new(4, 20));
        assert_eq!(
            Interval::point(7).join(&Interval::point(7)),
            Interval::point(7)
        );
    }

    #[test]
    fn interval_arith_saturates() {
        let big = Interval::new(u64::MAX - 1, u64::MAX);
        assert_eq!(big.add(&Interval::point(5)).hi, u64::MAX);
        assert_eq!(big.scale(3).hi, u64::MAX);
    }

    #[test]
    fn rem_is_identity_inside_modulus() {
        assert_eq!(Interval::new(3, 7).rem(16), Interval::new(3, 7));
        assert_eq!(Interval::new(3, 77).rem(16), Interval::new(0, 15));
        assert_eq!(Interval::TOP.rem(8), Interval::new(0, 7));
    }

    #[test]
    fn widening_stabilizes_growth() {
        let a = Interval::new(0, 10);
        let grown = Interval::new(0, 11);
        assert_eq!(a.widen(&grown).hi, u64::MAX);
        assert_eq!(a.widen(&Interval::new(2, 9)), a, "shrink does not widen");
    }

    #[test]
    fn taint_lattice_union() {
        let t = Taint::PACKET.union(Taint::STATE);
        assert!(t.contains(Taint::PACKET) && t.contains(Taint::STATE));
        assert!(!Taint::NONE.contains(Taint::PACKET));
        assert!(Taint::NONE.is_clean());
        assert_eq!(t.label(), "packet+state-derived");
        assert_eq!(Taint::PACKET.label(), "packet-derived");
    }

    #[test]
    fn state_join_treats_undefined_as_identity() {
        let mut a = AbsState::bottom(2);
        a.regs[0] = Some(AbsVal {
            iv: Interval::point(4),
            taint: Taint::PACKET,
        });
        let b = AbsState::bottom(2);
        let j = a.join(&b);
        assert_eq!(j.regs[0].unwrap().iv, Interval::point(4));
        assert!(j.regs[1].is_none());
    }
}
