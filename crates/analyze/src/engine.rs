//! The abstract-interpretation engine: a worklist fixpoint over
//! [`crate::domain`] values, a loop-bound pass over the CFG, and the
//! manifest-conformance checks that together make up Pass 0.

use std::collections::HashSet;
use std::fmt;

use snic_crypto::sha256::sha256;
use snic_types::AccelKind;

use crate::certificate::AnalysisCertificate;
use crate::domain::{AbsState, AbsVal, Interval, Taint};
use crate::ir::{Block, NfProgram, Op, Operand, RegionClass, Terminator};

/// Default fixpoint step budget: generous for real NFs (which converge in
/// tens of steps) while still catching pathological CFGs long before they
/// stall a launch path.
pub const DEFAULT_STEP_BUDGET: u64 = 20_000;

/// The resource envelope Pass 0 proves the program confined to. This is
/// the analyzer's view of the launch manifest: granted VA windows, the
/// exclusive accelerator families, the host-sanctioned DMA window, and
/// the admission-control instruction ceiling.
#[derive(Debug, Clone)]
pub struct AnalysisManifest {
    /// Granted virtual-address windows `(base, len)` — §4.1/§4.2: the
    /// NF's own RAM partition as mapped by its locked TLB entries.
    pub regions: Vec<(u64, u64)>,
    /// Granted accelerator families (§4.3 exclusive clusters).
    pub accel: Vec<AccelKind>,
    /// Host-sanctioned DMA window `(base, len)` in the same VA space,
    /// or `None` if the NF has no host-bus grant (§4.2).
    pub dma_window: Option<(u64, u64)>,
    /// Admission-control ceiling on per-packet instructions; the proven
    /// ceiling must not exceed it.
    pub max_insns_per_packet: u64,
}

impl AnalysisManifest {
    /// True if `[base, base+len)` fits entirely inside one granted window.
    pub fn grants(&self, base: u64, len: u64) -> bool {
        self.regions
            .iter()
            .any(|&(wb, wl)| base >= wb && base.saturating_add(len) <= wb.saturating_add(wl))
    }

    /// SHA-256 over a canonical encoding (folded into the certificate).
    pub fn digest(&self) -> [u8; 32] {
        let mut out = Vec::new();
        out.extend_from_slice(b"snic-analysis-manifest-v1");
        for &(b, l) in &self.regions {
            out.extend_from_slice(&b.to_le_bytes());
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.push(0xfe);
        for a in &self.accel {
            out.push(*a as u8);
        }
        out.push(0xfd);
        match self.dma_window {
            None => out.push(0),
            Some((b, l)) => {
                out.push(1);
                out.extend_from_slice(&b.to_le_bytes());
                out.extend_from_slice(&l.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.max_insns_per_packet.to_le_bytes());
        sha256(&out)
    }
}

/// What a Pass 0 violation *is* — each variant carries a stable
/// machine-readable code (see [`AnalysisViolationKind::code`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnalysisViolationKind {
    /// A load's address range can leave its region.
    OobLoad,
    /// A store's address range can leave its region.
    OobStore,
    /// A DMA transfer can leave the host-sanctioned window.
    DmaOverflow,
    /// A packet- or state-derived value flows outside the grant envelope.
    TaintLeak,
    /// A (clean-valued) access to a region the manifest does not grant.
    UngrantedRegion,
    /// A submission to an accelerator family the manifest does not grant.
    UngrantedAccel,
    /// A CFG back edge whose header carries no trip bound.
    UnboundedLoop,
    /// The proven instruction ceiling exceeds the admission limit.
    InsnCeiling,
    /// Structurally invalid IR (bad indices, irreducible CFG, ...).
    MalformedIr,
    /// The fixpoint did not converge within the step budget.
    FixpointBudget,
}

impl AnalysisViolationKind {
    /// Stable machine-readable code, consumed by CI and the control
    /// plane; never reworded once shipped.
    pub fn code(self) -> &'static str {
        match self {
            AnalysisViolationKind::OobLoad => "P0-OOB-LOAD",
            AnalysisViolationKind::OobStore => "P0-OOB-STORE",
            AnalysisViolationKind::DmaOverflow => "P0-DMA-OVERFLOW",
            AnalysisViolationKind::TaintLeak => "P0-TAINT-LEAK",
            AnalysisViolationKind::UngrantedRegion => "P0-REGION-UNGRANTED",
            AnalysisViolationKind::UngrantedAccel => "P0-ACCEL-UNGRANTED",
            AnalysisViolationKind::UnboundedLoop => "P0-UNBOUNDED-LOOP",
            AnalysisViolationKind::InsnCeiling => "P0-INSN-CEILING",
            AnalysisViolationKind::MalformedIr => "P0-MALFORMED-IR",
            AnalysisViolationKind::FixpointBudget => "P0-FIXPOINT-BUDGET",
        }
    }

    /// Which part of the paper's isolation story the violation breaks.
    pub fn citation(self) -> &'static str {
        match self {
            AnalysisViolationKind::OobLoad
            | AnalysisViolationKind::OobStore
            | AnalysisViolationKind::UngrantedRegion => "S-NIC §4.1-§4.2 single-owner memory",
            AnalysisViolationKind::DmaOverflow => "S-NIC §4.2 host-sanctioned DMA windows",
            AnalysisViolationKind::TaintLeak => "S-NIC §3.3/§4 cross-tenant information flow",
            AnalysisViolationKind::UngrantedAccel => "S-NIC §4.3 exclusive accelerators",
            AnalysisViolationKind::UnboundedLoop | AnalysisViolationKind::InsnCeiling => {
                "S-NIC §4 per-NF compute admission"
            }
            AnalysisViolationKind::MalformedIr | AnalysisViolationKind::FixpointBudget => {
                "Pass 0 well-formedness"
            }
        }
    }
}

/// One violation found by Pass 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisViolation {
    /// What kind (and therefore which stable code).
    pub kind: AnalysisViolationKind,
    /// Where and why, for humans.
    pub detail: String,
}

impl fmt::Display for AnalysisViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [{}]",
            self.kind.code(),
            self.detail,
            self.kind.citation()
        )
    }
}

/// The result of running Pass 0 over one program.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// Name of the analyzed program.
    pub program: String,
    /// All violations, deduplicated, in discovery order.
    pub violations: Vec<AnalysisViolation>,
    /// Proven per-packet instruction ceiling (present even on failure if
    /// the loop pass completed).
    pub insn_ceiling: Option<u64>,
    /// Fixpoint steps consumed.
    pub steps: u64,
    /// The certificate — present iff the analysis is clean.
    pub certificate: Option<AnalysisCertificate>,
}

impl AnalysisReport {
    /// True if the program proved confined.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Machine-readable JSON (hand-rolled; the workspace carries no
    /// serde). Stable field set: `program`, `clean`, `insn_ceiling`,
    /// `steps`, `certificate_digest`, `violations[{code, detail,
    /// citation}]`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"program\":\"{}\",", json_escape(&self.program)));
        s.push_str(&format!("\"clean\":{},", self.is_clean()));
        match self.insn_ceiling {
            Some(c) => s.push_str(&format!("\"insn_ceiling\":{c},")),
            None => s.push_str("\"insn_ceiling\":null,"),
        }
        s.push_str(&format!("\"steps\":{},", self.steps));
        match &self.certificate {
            Some(cert) => s.push_str(&format!(
                "\"certificate_digest\":\"{}\",",
                hex(&cert.digest())
            )),
            None => s.push_str("\"certificate_digest\":null,"),
        }
        s.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"code\":\"{}\",\"detail\":\"{}\",\"citation\":\"{}\"}}",
                v.kind.code(),
                json_escape(&v.detail),
                json_escape(v.kind.citation())
            ));
        }
        s.push_str("]}");
        s
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "Pass 0 {}: CLEAN (insn ceiling {}, {} fixpoint step(s))",
                self.program,
                self.insn_ceiling
                    .map_or_else(|| "-".to_string(), |c| c.to_string()),
                self.steps
            )
        } else {
            writeln!(
                f,
                "Pass 0 {}: REJECTED ({} violation(s))",
                self.program,
                self.violations.len()
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Lowercase hex of a digest.
pub fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Run Pass 0 with the default step budget.
pub fn analyze(program: &NfProgram, manifest: &AnalysisManifest) -> AnalysisReport {
    analyze_with_budget(program, manifest, DEFAULT_STEP_BUDGET)
}

/// Run Pass 0 with an explicit fixpoint step budget.
pub fn analyze_with_budget(
    program: &NfProgram,
    manifest: &AnalysisManifest,
    budget: u64,
) -> AnalysisReport {
    let mut sink = ViolationSink::new();

    if let Err(v) = validate(program) {
        sink.emit(v.kind, v.detail);
        return finish(program, manifest, sink, None, 0);
    }

    let loops = loop_pass(program, manifest, &mut sink);
    let steps = fixpoint(program, manifest, budget, &mut sink);

    finish(program, manifest, sink, loops, steps)
}

fn finish(
    program: &NfProgram,
    manifest: &AnalysisManifest,
    sink: ViolationSink,
    insn_ceiling: Option<u64>,
    steps: u64,
) -> AnalysisReport {
    let violations = sink.into_vec();
    let certificate = if violations.is_empty() {
        Some(AnalysisCertificate {
            program_digest: program.digest(),
            manifest_digest: manifest.digest(),
            insn_ceiling: insn_ceiling.unwrap_or(0),
        })
    } else {
        None
    };
    AnalysisReport {
        program: program.name.clone(),
        violations,
        insn_ceiling,
        steps,
        certificate,
    }
}

/// Dedup-on-insert violation collector: the fixpoint revisits blocks, so
/// the same violation is rediscovered on every pass over its block.
struct ViolationSink {
    seen: HashSet<(AnalysisViolationKind, String)>,
    ordered: Vec<AnalysisViolation>,
}

impl ViolationSink {
    fn new() -> ViolationSink {
        ViolationSink {
            seen: HashSet::new(),
            ordered: Vec::new(),
        }
    }

    fn emit(&mut self, kind: AnalysisViolationKind, detail: String) {
        if self.seen.insert((kind, detail.clone())) {
            self.ordered.push(AnalysisViolation { kind, detail });
        }
    }

    fn into_vec(self) -> Vec<AnalysisViolation> {
        self.ordered
    }
}

/// Structural validation; anything wrong here is `P0-MALFORMED-IR`.
fn validate(p: &NfProgram) -> Result<(), AnalysisViolation> {
    let bad = |detail: String| AnalysisViolation {
        kind: AnalysisViolationKind::MalformedIr,
        detail,
    };
    if p.blocks.is_empty() {
        return Err(bad("program has no blocks".into()));
    }
    let check_operand = |o: &Operand, where_: &str| -> Result<(), AnalysisViolation> {
        if let Operand::Reg(r) = o {
            if r.0 >= p.regs {
                return Err(bad(format!("{where_}: register r{} out of range", r.0)));
            }
        }
        Ok(())
    };
    for (bi, b) in p.blocks.iter().enumerate() {
        for (oi, op) in b.ops.iter().enumerate() {
            let at = format!("b{bi} op{oi}");
            match op {
                Op::Havoc { dst, lo, hi, .. } => {
                    if dst.0 >= p.regs {
                        return Err(bad(format!("{at}: register r{} out of range", dst.0)));
                    }
                    if lo > hi {
                        return Err(bad(format!("{at}: inverted havoc range [{lo}, {hi}]")));
                    }
                }
                Op::Arith { dst, a, b, .. } => {
                    if dst.0 >= p.regs {
                        return Err(bad(format!("{at}: register r{} out of range", dst.0)));
                    }
                    check_operand(a, &at)?;
                    check_operand(b, &at)?;
                }
                Op::Mod {
                    dst, a, modulus, ..
                } => {
                    if dst.0 >= p.regs {
                        return Err(bad(format!("{at}: register r{} out of range", dst.0)));
                    }
                    if *modulus == 0 {
                        return Err(bad(format!("{at}: zero modulus")));
                    }
                    check_operand(a, &at)?;
                }
                Op::Load {
                    dst,
                    region,
                    off,
                    width,
                    ..
                } => {
                    if dst.0 >= p.regs {
                        return Err(bad(format!("{at}: register r{} out of range", dst.0)));
                    }
                    if region.0 >= p.regions.len() {
                        return Err(bad(format!("{at}: region {} out of range", region.0)));
                    }
                    if *width == 0 {
                        return Err(bad(format!("{at}: zero-width access")));
                    }
                    check_operand(off, &at)?;
                }
                Op::Store {
                    region,
                    off,
                    val,
                    width,
                    ..
                } => {
                    if region.0 >= p.regions.len() {
                        return Err(bad(format!("{at}: region {} out of range", region.0)));
                    }
                    if *width == 0 {
                        return Err(bad(format!("{at}: zero-width access")));
                    }
                    check_operand(off, &at)?;
                    check_operand(val, &at)?;
                }
                Op::Accel { val, .. } => check_operand(val, &at)?,
                Op::Dma {
                    region, off, len, ..
                } => {
                    if region.0 >= p.regions.len() {
                        return Err(bad(format!("{at}: region {} out of range", region.0)));
                    }
                    check_operand(off, &at)?;
                    check_operand(len, &at)?;
                }
                Op::Emit { val, .. } => check_operand(val, &at)?,
            }
        }
        let targets: &[crate::ir::BlockId] = match &b.term {
            Terminator::Jump(t) => std::slice::from_ref(t),
            Terminator::Branch(ts) => {
                if ts.is_empty() {
                    return Err(bad(format!("b{bi}: empty branch")));
                }
                ts
            }
            Terminator::Return => &[],
        };
        for t in targets {
            if t.0 >= p.blocks.len() {
                return Err(bad(format!("b{bi}: successor b{} out of range", t.0)));
            }
        }
    }
    Ok(())
}

fn successors(b: &Block) -> Vec<usize> {
    match &b.term {
        Terminator::Jump(t) => vec![t.0],
        Terminator::Branch(ts) => ts.iter().map(|t| t.0).collect(),
        Terminator::Return => Vec::new(),
    }
}

/// The loop-bound pass: find back edges, require a trip bound at every
/// loop header, derive per-block execution multipliers from the natural
/// loop bodies, and prove a per-packet instruction ceiling via a longest
/// path over the back-edge-free CFG. Returns the ceiling (None if the
/// CFG was too broken to price).
fn loop_pass(p: &NfProgram, manifest: &AnalysisManifest, sink: &mut ViolationSink) -> Option<u64> {
    let n = p.blocks.len();
    let succs: Vec<Vec<usize>> = p.blocks.iter().map(successors).collect();

    // Iterative DFS from the entry; an edge into a block still on the
    // DFS stack is a back edge.
    let mut color = vec![0u8; n]; // 0 = white, 1 = gray, 2 = black
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&(node, idx)) = stack.last() {
        if idx < succs[node].len() {
            stack.last_mut().expect("nonempty").1 += 1;
            let t = succs[node][idx];
            match color[t] {
                0 => {
                    color[t] = 1;
                    stack.push((t, 0));
                }
                1 => back_edges.push((node, t)),
                _ => {}
            }
        } else {
            color[node] = 2;
            stack.pop();
        }
    }

    // Every back-edge header needs a bound.
    let mut headers: Vec<usize> = back_edges.iter().map(|&(_, h)| h).collect();
    headers.sort_unstable();
    headers.dedup();
    for &h in &headers {
        if p.blocks[h].loop_bound.is_none() {
            sink.emit(
                AnalysisViolationKind::UnboundedLoop,
                format!("loop header b{h} has no per-packet trip bound"),
            );
        }
    }
    if !sink.ordered.is_empty()
        && sink
            .ordered
            .iter()
            .any(|v| v.kind == AnalysisViolationKind::UnboundedLoop)
    {
        return None;
    }

    // Natural loop bodies: for a back edge (t, h), every block that can
    // reach t without passing through h, plus h itself. Blocks in a
    // loop's body execute at most `bound` times (nested loops multiply).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(b);
        }
    }
    let mut multiplier = vec![1u64; n];
    for &h in &headers {
        let bound = p.blocks[h].loop_bound.unwrap_or(1).max(1);
        let mut body = vec![false; n];
        body[h] = true;
        let mut bfs: Vec<usize> = back_edges
            .iter()
            .filter(|&&(_, hh)| hh == h)
            .map(|&(t, _)| t)
            .collect();
        for &t in &bfs {
            body[t] = true;
        }
        while let Some(x) = bfs.pop() {
            if x == h {
                continue;
            }
            for &pd in &preds[x] {
                if !body[pd] {
                    body[pd] = true;
                    bfs.push(pd);
                }
            }
        }
        for (b, inside) in body.iter().enumerate() {
            if *inside {
                multiplier[b] = multiplier[b].saturating_mul(bound);
            }
        }
    }

    // Ceiling = longest path over the CFG with back edges removed. If a
    // cycle survives back-edge removal the CFG is irreducible — refuse.
    let back: HashSet<(usize, usize)> = back_edges.into_iter().collect();
    let mut indeg = vec![0usize; n];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            if !back.contains(&(b, s)) {
                indeg[s] += 1;
            }
        }
    }
    let cost: Vec<u64> = p
        .blocks
        .iter()
        .enumerate()
        .map(|(b, blk)| {
            let insns: u64 = blk.ops.iter().map(|o| u64::from(o.insns())).sum();
            insns.saturating_mul(multiplier[b])
        })
        .collect();
    let mut dist = vec![0u64; n];
    dist[0] = cost[0];
    let mut topo: Vec<usize> = (0..n).filter(|&b| indeg[b] == 0).collect();
    let mut seen_count = 0usize;
    while let Some(b) = topo.pop() {
        seen_count += 1;
        for &s in &succs[b] {
            if back.contains(&(b, s)) {
                continue;
            }
            dist[s] = dist[s].max(dist[b].saturating_add(cost[s]));
            indeg[s] -= 1;
            if indeg[s] == 0 {
                topo.push(s);
            }
        }
    }
    if seen_count != n {
        sink.emit(
            AnalysisViolationKind::MalformedIr,
            "irreducible control flow: cycle without a dominating loop header".into(),
        );
        return None;
    }
    let ceiling = dist.iter().copied().max().unwrap_or(0);
    if ceiling > manifest.max_insns_per_packet {
        sink.emit(
            AnalysisViolationKind::InsnCeiling,
            format!(
                "proven per-packet ceiling {ceiling} insns exceeds admission limit {}",
                manifest.max_insns_per_packet
            ),
        );
    }
    Some(ceiling)
}

fn eval(state: &AbsState, o: &Operand) -> AbsVal {
    match o {
        Operand::Imm(v) => AbsVal {
            iv: Interval::point(*v),
            taint: Taint::NONE,
        },
        // A register that may be undefined on some path: assume the
        // worst on both axes (full range, full taint).
        Operand::Reg(r) => state.regs[r.0 as usize].unwrap_or(AbsVal {
            iv: Interval::TOP,
            taint: Taint::PACKET.union(Taint::STATE),
        }),
    }
}

/// The worklist fixpoint: propagates abstract states through the CFG,
/// widening at loop headers, and checks every access against the
/// manifest as it goes. Returns the number of block transfers executed.
fn fixpoint(
    p: &NfProgram,
    manifest: &AnalysisManifest,
    budget: u64,
    sink: &mut ViolationSink,
) -> u64 {
    let n = p.blocks.len();
    let headers: HashSet<usize> = p
        .blocks
        .iter()
        .enumerate()
        .filter(|(_, b)| b.loop_bound.is_some())
        .map(|(i, _)| i)
        .collect();

    let mut in_states: Vec<Option<AbsState>> = vec![None; n];
    in_states[0] = Some(AbsState::bottom(p.regs as usize));
    let mut join_count = vec![0u32; n];
    let mut worklist: Vec<usize> = vec![0];
    let mut steps = 0u64;

    while let Some(b) = worklist.pop() {
        steps += 1;
        if steps > budget {
            sink.emit(
                AnalysisViolationKind::FixpointBudget,
                format!("fixpoint exceeded {budget}-step budget"),
            );
            return steps;
        }
        let mut state = match &in_states[b] {
            Some(s) => s.clone(),
            None => continue,
        };
        transfer(p, b, &mut state, manifest, sink);
        for s in successors(&p.blocks[b]) {
            let merged = match &in_states[s] {
                None => state.clone(),
                Some(old) => {
                    join_count[s] += 1;
                    // Widen at loop headers once the join count shows the
                    // state is still climbing; plain join elsewhere.
                    if headers.contains(&s) && join_count[s] > 4 {
                        old.widen(&old.join(&state))
                    } else {
                        old.join(&state)
                    }
                }
            };
            if in_states[s].as_ref() != Some(&merged) {
                in_states[s] = Some(merged);
                if !worklist.contains(&s) {
                    worklist.push(s);
                }
            }
        }
    }
    steps
}

/// Abstract execution of one block, checking each access.
fn transfer(
    p: &NfProgram,
    block: usize,
    state: &mut AbsState,
    manifest: &AnalysisManifest,
    sink: &mut ViolationSink,
) {
    for (oi, op) in p.blocks[block].ops.iter().enumerate() {
        match op {
            Op::Havoc {
                dst, lo, hi, taint, ..
            } => {
                state.regs[dst.0 as usize] = Some(AbsVal {
                    iv: Interval::new(*lo, *hi),
                    taint: *taint,
                });
            }
            Op::Arith {
                dst, a, b, scale, ..
            } => {
                let av = eval(state, a);
                let bv = eval(state, b);
                state.regs[dst.0 as usize] = Some(AbsVal {
                    iv: av.iv.add(&bv.iv.scale(*scale)),
                    taint: av.taint.union(bv.taint),
                });
            }
            Op::Mod {
                dst, a, modulus, ..
            } => {
                let av = eval(state, a);
                state.regs[dst.0 as usize] = Some(AbsVal {
                    iv: av.iv.rem(*modulus),
                    taint: av.taint,
                });
            }
            Op::Load {
                dst,
                region,
                off,
                width,
                ..
            } => {
                let decl = &p.regions[region.0];
                let offv = eval(state, off);
                let granted =
                    decl.class != RegionClass::Foreign && manifest.grants(decl.base, decl.len);
                if !granted {
                    sink.emit(
                        AnalysisViolationKind::UngrantedRegion,
                        format!(
                            "b{block} op{oi}: load from ungranted region '{}' ({:#x}+{:#x})",
                            decl.name, decl.base, decl.len
                        ),
                    );
                } else if offv.iv.hi.saturating_add(u64::from(*width)) > decl.len {
                    sink.emit(
                        AnalysisViolationKind::OobLoad,
                        format!(
                            "b{block} op{oi}: load offset {}+{width} can exceed region '{}' len {:#x}",
                            offv.iv, decl.name, decl.len
                        ),
                    );
                }
                state.regs[dst.0 as usize] = Some(AbsVal {
                    iv: Interval::TOP,
                    taint: decl.class.load_taint().union(offv.taint),
                });
            }
            Op::Store {
                region,
                off,
                val,
                width,
                ..
            } => {
                let decl = &p.regions[region.0];
                let offv = eval(state, off);
                let valv = eval(state, val);
                let granted =
                    decl.class != RegionClass::Foreign && manifest.grants(decl.base, decl.len);
                if !granted {
                    let flow = offv.taint.union(valv.taint);
                    if flow.is_clean() {
                        sink.emit(
                            AnalysisViolationKind::UngrantedRegion,
                            format!(
                                "b{block} op{oi}: store to ungranted region '{}' ({:#x}+{:#x})",
                                decl.name, decl.base, decl.len
                            ),
                        );
                    } else {
                        sink.emit(
                            AnalysisViolationKind::TaintLeak,
                            format!(
                                "b{block} op{oi}: {} value stored to ungranted region '{}' ({:#x}+{:#x})",
                                flow.label(),
                                decl.name,
                                decl.base,
                                decl.len
                            ),
                        );
                    }
                } else if offv.iv.hi.saturating_add(u64::from(*width)) > decl.len {
                    sink.emit(
                        AnalysisViolationKind::OobStore,
                        format!(
                            "b{block} op{oi}: store offset {}+{width} can exceed region '{}' len {:#x}",
                            offv.iv, decl.name, decl.len
                        ),
                    );
                }
            }
            Op::Accel { kind, val, .. } => {
                let valv = eval(state, val);
                if !manifest.accel.contains(kind) {
                    if valv.taint.is_clean() {
                        sink.emit(
                            AnalysisViolationKind::UngrantedAccel,
                            format!(
                                "b{block} op{oi}: submission to ungranted accelerator {kind:?}"
                            ),
                        );
                    } else {
                        sink.emit(
                            AnalysisViolationKind::TaintLeak,
                            format!(
                                "b{block} op{oi}: {} value submitted to ungranted accelerator {kind:?}",
                                valv.taint.label()
                            ),
                        );
                    }
                }
            }
            Op::Dma {
                region, off, len, ..
            } => {
                let decl = &p.regions[region.0];
                let offv = eval(state, off);
                let lenv = eval(state, len);
                let lo = decl.base.saturating_add(offv.iv.lo);
                let hi = decl
                    .base
                    .saturating_add(offv.iv.hi)
                    .saturating_add(lenv.iv.hi);
                match manifest.dma_window {
                    None => sink.emit(
                        AnalysisViolationKind::DmaOverflow,
                        format!("b{block} op{oi}: DMA issued with no host-sanctioned window"),
                    ),
                    Some((wb, wl)) => {
                        if lo < wb || hi > wb.saturating_add(wl) {
                            sink.emit(
                                AnalysisViolationKind::DmaOverflow,
                                format!(
                                    "b{block} op{oi}: DMA span [{lo:#x}, {hi:#x}) can exceed window {wb:#x}+{wl:#x}",
                                ),
                            );
                        }
                    }
                }
            }
            Op::Emit { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Operand, ProgramBuilder, RegionClass, Terminator};

    fn manifest() -> AnalysisManifest {
        AnalysisManifest {
            regions: vec![(0x0100_0000, 0x0010_0000), (0x1000_0000, 0x0100_0000)],
            accel: vec![AccelKind::Dpi],
            dma_window: Some((0x1000_0000, 0x1000)),
            max_insns_per_packet: 100_000,
        }
    }

    fn two_regions(p: &mut ProgramBuilder) -> (crate::ir::RegionId, crate::ir::RegionId) {
        let pkt = p.region("pktbuf", 0x0100_0000, 0x0010_0000, RegionClass::PacketBuf);
        let heap = p.region("heap", 0x1000_0000, 0x0100_0000, RegionClass::Private);
        (pkt, heap)
    }

    #[test]
    fn clean_program_gets_certificate() {
        let mut p = ProgramBuilder::new("clean");
        let (pkt, heap) = two_regions(&mut p);
        let field = p.load(pkt, Operand::Imm(0), 8, 100);
        let slot = p.modulo(Operand::Reg(field), 1024, 5);
        let addr = p.arith(Operand::Imm(0), Operand::Reg(slot), 64, 5);
        p.store(heap, Operand::Reg(addr), Operand::Reg(field), 8, 40);
        p.accel(AccelKind::Dpi, Operand::Reg(field), 30);
        p.emit(Operand::Reg(field), 10);
        let prog = p.finish();
        let r = analyze(&prog, &manifest());
        assert!(r.is_clean(), "{r}");
        let cert = r.certificate.expect("certificate");
        assert_eq!(cert.program_digest, prog.digest());
        assert_eq!(r.insn_ceiling, Some(190));
    }

    #[test]
    fn oob_store_flagged_with_stable_code() {
        let mut p = ProgramBuilder::new("oob");
        let (pkt, heap) = two_regions(&mut p);
        let field = p.load(pkt, Operand::Imm(0), 8, 10);
        // Unreduced packet value used directly as a heap offset: ⊤.
        p.store(heap, Operand::Reg(field), Operand::Imm(0), 8, 10);
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind.code(), "P0-OOB-STORE");
        assert!(r.certificate.is_none());
    }

    #[test]
    fn taint_leak_to_foreign_region() {
        let mut p = ProgramBuilder::new("leak");
        let (pkt, _) = two_regions(&mut p);
        let other = p.region("victim", 0x2000_0000, 0x1000, RegionClass::Foreign);
        let field = p.load(pkt, Operand::Imm(0), 8, 10);
        let slot = p.modulo(Operand::Reg(field), 8, 2);
        p.store(other, Operand::Reg(slot), Operand::Reg(field), 8, 10);
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].kind, AnalysisViolationKind::TaintLeak);
        assert!(r.violations[0].detail.contains("packet-derived"));
    }

    #[test]
    fn clean_store_to_foreign_region_is_ungranted() {
        let mut p = ProgramBuilder::new("probe");
        two_regions(&mut p);
        let other = p.region("victim", 0x2000_0000, 0x1000, RegionClass::Foreign);
        p.store(other, Operand::Imm(0), Operand::Imm(1), 8, 10);
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations[0].kind.code(), "P0-REGION-UNGRANTED");
    }

    #[test]
    fn unbounded_loop_rejected_bounded_accepted() {
        let build = |bound: Option<u64>| {
            let mut p = ProgramBuilder::new("loop");
            let (pkt, _) = two_regions(&mut p);
            let body = p.add_block();
            let exit = p.add_block();
            p.terminate(Terminator::Jump(body));
            p.select(body);
            let i = p.havoc(0, 63, Taint::NONE, 1);
            let _ = p.load(pkt, Operand::Reg(i), 8, 6);
            p.terminate(Terminator::Branch(vec![body, exit]));
            if let Some(n) = bound {
                p.loop_bound(body, n);
            }
            p.select(exit);
            p.emit(Operand::Imm(0), 1);
            p.finish()
        };
        let r = analyze(&build(None), &manifest());
        assert_eq!(r.violations[0].kind.code(), "P0-UNBOUNDED-LOOP");
        let r = analyze(&build(Some(64)), &manifest());
        assert!(r.is_clean(), "{r}");
        // 7 insns/iteration * 64 iterations + 1 exit insn.
        assert_eq!(r.insn_ceiling, Some(7 * 64 + 1));
    }

    #[test]
    fn insn_ceiling_enforced() {
        let mut m = manifest();
        m.max_insns_per_packet = 10;
        let mut p = ProgramBuilder::new("hot");
        two_regions(&mut p);
        p.emit(Operand::Imm(0), 50);
        let r = analyze(&p.finish(), &m);
        assert_eq!(r.violations[0].kind.code(), "P0-INSN-CEILING");
        assert_eq!(r.insn_ceiling, Some(50));
    }

    #[test]
    fn dma_overflow_flagged() {
        let mut p = ProgramBuilder::new("dma");
        let (_, heap) = two_regions(&mut p);
        // Window is 0x1000 bytes at heap base; a packet-sized length up
        // to 0x2000 can overflow it.
        let len = p.havoc(0, 0x2000, Taint::PACKET, 5);
        p.dma(heap, Operand::Imm(0), Operand::Reg(len), 20);
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations[0].kind.code(), "P0-DMA-OVERFLOW");
    }

    #[test]
    fn ungranted_accel_flagged() {
        let mut p = ProgramBuilder::new("accel");
        two_regions(&mut p);
        p.accel(AccelKind::Crypto, Operand::Imm(1), 10);
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations[0].kind.code(), "P0-ACCEL-UNGRANTED");
    }

    #[test]
    fn malformed_ir_rejected() {
        let mut p = ProgramBuilder::new("bad");
        two_regions(&mut p);
        p.push(crate::ir::Op::Emit {
            val: Operand::Reg(crate::ir::Reg(99)),
            insns: 1,
        });
        let r = analyze(&p.finish(), &manifest());
        assert_eq!(r.violations[0].kind.code(), "P0-MALFORMED-IR");
    }

    #[test]
    fn fixpoint_budget_trips() {
        // A long chain of bounded loops still converges, but with a
        // 1-step budget the engine must bail with the budget code.
        let mut p = ProgramBuilder::new("budget");
        let (pkt, _) = two_regions(&mut p);
        let body = p.add_block();
        let exit = p.add_block();
        p.terminate(Terminator::Jump(body));
        p.select(body);
        let i = p.havoc(0, 7, Taint::NONE, 1);
        let _ = p.load(pkt, Operand::Reg(i), 8, 2);
        p.terminate(Terminator::Branch(vec![body, exit]));
        p.loop_bound(body, 8);
        p.select(exit);
        p.emit(Operand::Imm(0), 1);
        let r = analyze_with_budget(&p.finish(), &manifest(), 1);
        assert!(r
            .violations
            .iter()
            .any(|v| v.kind == AnalysisViolationKind::FixpointBudget));
    }

    #[test]
    fn report_json_round_trips_fields() {
        let mut p = ProgramBuilder::new("clean-json");
        let (pkt, _) = two_regions(&mut p);
        let v = p.load(pkt, Operand::Imm(0), 8, 10);
        p.emit(Operand::Reg(v), 5);
        let r = analyze(&p.finish(), &manifest());
        let js = r.to_json();
        assert!(js.contains("\"clean\":true"), "{js}");
        assert!(js.contains("\"certificate_digest\":\""), "{js}");
        assert!(js.contains("\"violations\":[]"), "{js}");
    }
}
