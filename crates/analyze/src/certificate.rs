//! The analysis certificate: the durable record that Pass 0 proved a
//! program confined to a manifest. Its digest is folded into `nf_attest`
//! quotes (Appendix A), so a remote verifier learns not just *what*
//! launched but that the device statically proved it isolated first.

use std::fmt;

use snic_crypto::sha256::sha256;

/// A clean Pass 0 verdict, binding the program, the manifest it was
/// proven against, and the per-packet instruction ceiling the loop pass
/// established.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisCertificate {
    /// SHA-256 of the program's canonical IR encoding.
    pub program_digest: [u8; 32],
    /// SHA-256 of the analysis manifest.
    pub manifest_digest: [u8; 32],
    /// Proven per-packet instruction ceiling.
    pub insn_ceiling: u64,
}

impl AnalysisCertificate {
    /// SHA-256 over the certificate contents; this is the value that
    /// travels in attestation quotes.
    pub fn digest(&self) -> [u8; 32] {
        let mut buf = Vec::with_capacity(32 + 32 + 8 + 24);
        buf.extend_from_slice(b"snic-analysis-cert-v1");
        buf.extend_from_slice(&self.program_digest);
        buf.extend_from_slice(&self.manifest_digest);
        buf.extend_from_slice(&self.insn_ceiling.to_le_bytes());
        sha256(&buf)
    }
}

impl fmt::Display for AnalysisCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cert(program={}, manifest={}, ceiling={} insns)",
            crate::engine::hex(&self.program_digest[..4]),
            crate::engine::hex(&self.manifest_digest[..4]),
            self.insn_ceiling
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_covers_every_field() {
        let base = AnalysisCertificate {
            program_digest: [1; 32],
            manifest_digest: [2; 32],
            insn_ceiling: 1000,
        };
        let mut other = base;
        other.program_digest[0] = 9;
        assert_ne!(base.digest(), other.digest());
        let mut other = base;
        other.manifest_digest[0] = 9;
        assert_ne!(base.digest(), other.digest());
        let mut other = base;
        other.insn_ceiling = 1001;
        assert_ne!(base.digest(), other.digest());
        assert_eq!(base.digest(), base.digest());
    }

    #[test]
    fn display_is_compact() {
        let c = AnalysisCertificate {
            program_digest: [0xab; 32],
            manifest_digest: [0xcd; 32],
            insn_ceiling: 42,
        };
        let s = c.to_string();
        assert!(s.contains("abababab"), "{s}");
        assert!(s.contains("42 insns"), "{s}");
    }
}
