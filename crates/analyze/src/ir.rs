//! The NF dataflow IR: named memory regions, a register dataflow, and a
//! small CFG with bounded loops.
//!
//! The IR is deliberately coarse — it describes *where an NF's memory
//! references can land and what flows where*, not full program
//! semantics. Each of the six paper NFs lowers itself into this form
//! alongside its `AccessSink` instrumentation, so every `sink.touch`
//! the real implementation emits has a corresponding IR operation whose
//! abstract address range covers it (the ground-truth link the
//! differential tests check).
//!
//! Loop-carried induction variables are *havoced*: re-drawn each
//! iteration from their full range (`Op::Havoc`), the standard trick
//! that keeps interval analysis precise without per-loop invariant
//! inference. Widening at loop headers still guarantees termination for
//! registers that genuinely accumulate.

use std::fmt;

use snic_crypto::sha256::sha256;
use snic_types::AccelKind;

use crate::domain::Taint;

/// A virtual register (SSA-flavored; writes may be re-joined at merges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u32);

/// A register or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Read a register.
    Reg(Reg),
    /// A constant.
    Imm(u64),
}

/// Index into [`NfProgram::regions`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// Index into [`NfProgram::blocks`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub usize);

/// What a declared region *is*, which decides both its taint source and
/// whether the manifest can ever grant it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionClass {
    /// The VPP packet-buffer window; loads from it are packet-derived.
    PacketBuf,
    /// The tenant's own data/heap/stack; loads are state-derived.
    Private,
    /// Memory that belongs to another tenant or the NIC-OS — present in
    /// the IR only so an adversarial program can *name* it; no manifest
    /// grants it, and any tainted store into it is a cross-tenant leak.
    Foreign,
}

impl RegionClass {
    /// The taint a load from this region imparts.
    pub fn load_taint(self) -> Taint {
        match self {
            RegionClass::PacketBuf => Taint::PACKET,
            RegionClass::Private => Taint::STATE,
            RegionClass::Foreign => Taint::PACKET.union(Taint::STATE),
        }
    }
}

/// One named memory region in the NF's virtual address space.
#[derive(Debug, Clone)]
pub struct RegionDecl {
    /// Region name (`pktbuf`, `heap`, ...).
    pub name: String,
    /// Base virtual address.
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// Classification.
    pub class: RegionClass,
}

impl RegionDecl {
    /// True if `[base, base+len)` lies inside the window `(wbase, wlen)`.
    pub fn within(&self, (wbase, wlen): (u64, u64)) -> bool {
        self.base >= wbase && self.base.saturating_add(self.len) <= wbase.saturating_add(wlen)
    }
}

/// One IR operation. `insns` is the instruction-count weight used by the
/// loop-bound pass (it mirrors the `insns` argument the real NF passes
/// to `AccessSink::touch`).
#[derive(Debug, Clone)]
pub enum Op {
    /// `dst = some value in [lo, hi]` with the given taint — packet
    /// fields, hash residues, and havoced loop induction variables.
    Havoc {
        /// Destination register.
        dst: Reg,
        /// Smallest possible value.
        lo: u64,
        /// Largest possible value.
        hi: u64,
        /// Taint imparted to the value.
        taint: Taint,
        /// Instruction weight.
        insns: u32,
    },
    /// `dst = a + b * scale` (saturating).
    Arith {
        /// Destination register.
        dst: Reg,
        /// First addend.
        a: Operand,
        /// Scaled addend.
        b: Operand,
        /// Constant multiplier applied to `b`.
        scale: u64,
        /// Instruction weight.
        insns: u32,
    },
    /// `dst = a % modulus` (`modulus > 0`).
    Mod {
        /// Destination register.
        dst: Reg,
        /// Value to reduce.
        a: Operand,
        /// Modulus (must be positive).
        modulus: u64,
        /// Instruction weight.
        insns: u32,
    },
    /// `dst = load region[off .. off+width)`.
    Load {
        /// Destination register.
        dst: Reg,
        /// Accessed region.
        region: RegionId,
        /// Byte offset within the region.
        off: Operand,
        /// Access width in bytes.
        width: u32,
        /// Instruction weight.
        insns: u32,
    },
    /// `store region[off .. off+width) = val`.
    Store {
        /// Accessed region.
        region: RegionId,
        /// Byte offset within the region.
        off: Operand,
        /// Stored value.
        val: Operand,
        /// Access width in bytes.
        width: u32,
        /// Instruction weight.
        insns: u32,
    },
    /// Submit `val` to an accelerator family (§4.3 clusters).
    Accel {
        /// Accelerator family.
        kind: AccelKind,
        /// Submitted value.
        val: Operand,
        /// Instruction weight.
        insns: u32,
    },
    /// DMA `len` bytes starting at `region[off]` across the host bus
    /// (§4.2 host-sanctioned windows).
    Dma {
        /// Source/target region on the NIC side.
        region: RegionId,
        /// Byte offset within the region.
        off: Operand,
        /// Transfer length in bytes.
        len: Operand,
        /// Instruction weight.
        insns: u32,
    },
    /// Emit a packet (verdict/TX) derived from `val` — the sanctioned
    /// egress path, never a taint sink.
    Emit {
        /// Emitted value.
        val: Operand,
        /// Instruction weight.
        insns: u32,
    },
}

impl Op {
    /// The instruction weight of this operation.
    pub fn insns(&self) -> u32 {
        match self {
            Op::Havoc { insns, .. }
            | Op::Arith { insns, .. }
            | Op::Mod { insns, .. }
            | Op::Load { insns, .. }
            | Op::Store { insns, .. }
            | Op::Accel { insns, .. }
            | Op::Dma { insns, .. }
            | Op::Emit { insns, .. } => *insns,
        }
    }
}

/// Block terminator. Conditions are abstracted away: every successor is
/// feasible (a sound over-approximation of any branch predicate).
#[derive(Debug, Clone)]
pub enum Terminator {
    /// Unconditional edge.
    Jump(BlockId),
    /// Nondeterministic multi-way branch.
    Branch(Vec<BlockId>),
    /// Per-packet processing ends.
    Return,
}

/// One basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Straight-line operations.
    pub ops: Vec<Op>,
    /// Control-flow successor(s).
    pub term: Terminator,
    /// If this block is a loop header (the target of a back edge), the
    /// maximum number of times it can execute per packet. A header with
    /// `None` is an *unbounded* loop — Pass 0 refuses it.
    pub loop_bound: Option<u64>,
}

/// A complete NF dataflow program.
#[derive(Debug, Clone)]
pub struct NfProgram {
    /// Program name (shown in reports; `FW`, `DPI`, ... for the paper
    /// NFs).
    pub name: String,
    /// Declared memory regions.
    pub regions: Vec<RegionDecl>,
    /// CFG blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Number of virtual registers.
    pub regs: u32,
}

impl NfProgram {
    /// Total operation count (for reports).
    pub fn op_count(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len()).sum()
    }

    /// Canonical byte encoding, the basis of the certificate's program
    /// digest. Deterministic: same program, same bytes.
    pub fn encode(&self) -> Vec<u8> {
        fn put_operand(out: &mut Vec<u8>, o: &Operand) {
            match o {
                Operand::Reg(r) => {
                    out.push(0);
                    out.extend_from_slice(&r.0.to_le_bytes());
                }
                Operand::Imm(v) => {
                    out.push(1);
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let mut out = Vec::new();
        out.extend_from_slice(b"snic-nf-ir-v1");
        out.extend_from_slice(self.name.as_bytes());
        out.push(0);
        out.extend_from_slice(&self.regs.to_le_bytes());
        for r in &self.regions {
            out.extend_from_slice(r.name.as_bytes());
            out.push(0);
            out.extend_from_slice(&r.base.to_le_bytes());
            out.extend_from_slice(&r.len.to_le_bytes());
            out.push(match r.class {
                RegionClass::PacketBuf => 0,
                RegionClass::Private => 1,
                RegionClass::Foreign => 2,
            });
        }
        for b in &self.blocks {
            out.push(0xb0);
            match b.loop_bound {
                None => out.push(0),
                Some(n) => {
                    out.push(1);
                    out.extend_from_slice(&n.to_le_bytes());
                }
            }
            for op in &b.ops {
                match op {
                    Op::Havoc {
                        dst,
                        lo,
                        hi,
                        taint,
                        insns,
                    } => {
                        out.push(1);
                        out.extend_from_slice(&dst.0.to_le_bytes());
                        out.extend_from_slice(&lo.to_le_bytes());
                        out.extend_from_slice(&hi.to_le_bytes());
                        out.push(u8::from(taint.contains(Taint::PACKET)));
                        out.push(u8::from(taint.contains(Taint::STATE)));
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Arith {
                        dst,
                        a,
                        b: rhs,
                        scale,
                        insns,
                    } => {
                        out.push(2);
                        out.extend_from_slice(&dst.0.to_le_bytes());
                        put_operand(&mut out, a);
                        put_operand(&mut out, rhs);
                        out.extend_from_slice(&scale.to_le_bytes());
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Mod {
                        dst,
                        a,
                        modulus,
                        insns,
                    } => {
                        out.push(3);
                        out.extend_from_slice(&dst.0.to_le_bytes());
                        put_operand(&mut out, a);
                        out.extend_from_slice(&modulus.to_le_bytes());
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Load {
                        dst,
                        region,
                        off,
                        width,
                        insns,
                    } => {
                        out.push(4);
                        out.extend_from_slice(&dst.0.to_le_bytes());
                        out.extend_from_slice(&(region.0 as u64).to_le_bytes());
                        put_operand(&mut out, off);
                        out.extend_from_slice(&width.to_le_bytes());
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Store {
                        region,
                        off,
                        val,
                        width,
                        insns,
                    } => {
                        out.push(5);
                        out.extend_from_slice(&(region.0 as u64).to_le_bytes());
                        put_operand(&mut out, off);
                        put_operand(&mut out, val);
                        out.extend_from_slice(&width.to_le_bytes());
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Accel { kind, val, insns } => {
                        out.push(6);
                        out.push(*kind as u8);
                        put_operand(&mut out, val);
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Dma {
                        region,
                        off,
                        len,
                        insns,
                    } => {
                        out.push(7);
                        out.extend_from_slice(&(region.0 as u64).to_le_bytes());
                        put_operand(&mut out, off);
                        put_operand(&mut out, len);
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                    Op::Emit { val, insns } => {
                        out.push(8);
                        put_operand(&mut out, val);
                        out.extend_from_slice(&insns.to_le_bytes());
                    }
                }
            }
            out.push(0xb1);
            match &b.term {
                Terminator::Jump(t) => {
                    out.push(0);
                    out.extend_from_slice(&(t.0 as u64).to_le_bytes());
                }
                Terminator::Branch(ts) => {
                    out.push(1);
                    out.extend_from_slice(&(ts.len() as u64).to_le_bytes());
                    for t in ts {
                        out.extend_from_slice(&(t.0 as u64).to_le_bytes());
                    }
                }
                Terminator::Return => out.push(2),
            }
        }
        out
    }

    /// SHA-256 over the canonical encoding.
    pub fn digest(&self) -> [u8; 32] {
        sha256(&self.encode())
    }
}

impl fmt::Display for NfProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program {} ({} region(s), {} block(s), {} op(s))",
            self.name,
            self.regions.len(),
            self.blocks.len(),
            self.op_count()
        )?;
        for (i, r) in self.regions.iter().enumerate() {
            writeln!(
                f,
                "  region r{i} {:10} {:#x}+{:#x} {:?}",
                r.name, r.base, r.len, r.class
            )?;
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let bound = match b.loop_bound {
                Some(n) => format!(" loop_bound={n}"),
                None => String::new(),
            };
            writeln!(f, "  b{i}:{bound} {} op(s), {:?}", b.ops.len(), b.term)?;
        }
        Ok(())
    }
}

/// Incremental builder for [`NfProgram`]s: tracks a current block, hands
/// out fresh registers, and offers one helper per op kind so lowerings
/// read like the access pattern they model.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    regions: Vec<RegionDecl>,
    blocks: Vec<Block>,
    cur: usize,
    next_reg: u32,
}

impl ProgramBuilder {
    /// Start a program with an empty entry block.
    pub fn new(name: &str) -> ProgramBuilder {
        ProgramBuilder {
            name: name.to_string(),
            regions: Vec::new(),
            blocks: vec![Block {
                ops: Vec::new(),
                term: Terminator::Return,
                loop_bound: None,
            }],
            cur: 0,
            next_reg: 0,
        }
    }

    /// Declare a region.
    pub fn region(&mut self, name: &str, base: u64, len: u64, class: RegionClass) -> RegionId {
        self.regions.push(RegionDecl {
            name: name.to_string(),
            base,
            len,
            class,
        });
        RegionId(self.regions.len() - 1)
    }

    /// A fresh register.
    pub fn reg(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Append a raw op to the current block.
    pub fn push(&mut self, op: Op) {
        self.blocks[self.cur].ops.push(op);
    }

    /// Create a new (empty, `Return`-terminated) block without switching
    /// to it.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            ops: Vec::new(),
            term: Terminator::Return,
            loop_bound: None,
        });
        BlockId(self.blocks.len() - 1)
    }

    /// Make `b` the current block.
    pub fn select(&mut self, b: BlockId) {
        self.cur = b.0;
    }

    /// Set the current block's terminator.
    pub fn terminate(&mut self, t: Terminator) {
        self.blocks[self.cur].term = t;
    }

    /// Mark `b` as a loop header with a per-packet trip bound.
    pub fn loop_bound(&mut self, b: BlockId, bound: u64) {
        self.blocks[b.0].loop_bound = Some(bound);
    }

    /// `Havoc` helper returning the destination register.
    pub fn havoc(&mut self, lo: u64, hi: u64, taint: Taint, insns: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Havoc {
            dst,
            lo,
            hi,
            taint,
            insns,
        });
        dst
    }

    /// `Arith` helper: `a + b * scale`.
    pub fn arith(&mut self, a: Operand, b: Operand, scale: u64, insns: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Arith {
            dst,
            a,
            b,
            scale,
            insns,
        });
        dst
    }

    /// `Mod` helper: `a % modulus`.
    pub fn modulo(&mut self, a: Operand, modulus: u64, insns: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Mod {
            dst,
            a,
            modulus,
            insns,
        });
        dst
    }

    /// `Load` helper returning the loaded register.
    pub fn load(&mut self, region: RegionId, off: Operand, width: u32, insns: u32) -> Reg {
        let dst = self.reg();
        self.push(Op::Load {
            dst,
            region,
            off,
            width,
            insns,
        });
        dst
    }

    /// `Store` helper.
    pub fn store(&mut self, region: RegionId, off: Operand, val: Operand, width: u32, insns: u32) {
        self.push(Op::Store {
            region,
            off,
            val,
            width,
            insns,
        });
    }

    /// `Accel` helper.
    pub fn accel(&mut self, kind: AccelKind, val: Operand, insns: u32) {
        self.push(Op::Accel { kind, val, insns });
    }

    /// `Dma` helper.
    pub fn dma(&mut self, region: RegionId, off: Operand, len: Operand, insns: u32) {
        self.push(Op::Dma {
            region,
            off,
            len,
            insns,
        });
    }

    /// `Emit` helper.
    pub fn emit(&mut self, val: Operand, insns: u32) {
        self.push(Op::Emit { val, insns });
    }

    /// Finish the program.
    pub fn finish(self) -> NfProgram {
        NfProgram {
            name: self.name,
            regions: self.regions,
            blocks: self.blocks,
            regs: self.next_reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NfProgram {
        let mut p = ProgramBuilder::new("tiny");
        let pkt = p.region("pktbuf", 0x0100_0000, 2048, RegionClass::PacketBuf);
        let field = p.havoc(0, 63, Taint::PACKET, 10);
        let v = p.load(pkt, Operand::Reg(field), 8, 20);
        p.emit(Operand::Reg(v), 5);
        p.finish()
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.digest(), b.digest());
        let mut c = tiny();
        c.blocks[0].ops.pop();
        assert_ne!(a.digest(), c.digest());
        let mut d = tiny();
        d.regions[0].len = 4096;
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn builder_wires_blocks_and_regs() {
        let mut p = ProgramBuilder::new("b");
        let body = p.add_block();
        let exit = p.add_block();
        p.terminate(Terminator::Jump(body));
        p.select(body);
        let r = p.havoc(0, 7, Taint::NONE, 1);
        p.terminate(Terminator::Branch(vec![body, exit]));
        p.loop_bound(body, 8);
        p.select(exit);
        p.emit(Operand::Reg(r), 1);
        let prog = p.finish();
        assert_eq!(prog.blocks.len(), 3);
        assert_eq!(prog.blocks[1].loop_bound, Some(8));
        assert_eq!(prog.regs, 1);
        assert_eq!(prog.op_count(), 2);
        assert!(prog.to_string().contains("b1:"));
    }

    #[test]
    fn display_lists_regions() {
        let p = tiny();
        let s = p.to_string();
        assert!(s.contains("pktbuf"), "{s}");
        assert!(s.contains("PacketBuf"), "{s}");
    }
}
