//! Packet IO: ports, switching, virtual packet pipelines, VXLAN, DMA.
//!
//! §4.4 of the paper: a *virtual packet pipeline* (VPP) bundles the
//! hardware that moves one NF's packets between the wire and its private
//! RAM — reserved RX/TX buffer space, a packet scheduler locked to the
//! NF's memory, and the switching rules that select its packets.
//!
//! - [`rules`]: switching rules over five-tuples, MACs, and VXLAN VNIs,
//! - [`vxlan`]: RFC 7348 encap/decap so NFs can act as VXLAN endpoints,
//! - [`port`]: physical RX/TX port buffer accounting (reservations),
//! - [`scheduler`]: FIFO (commodity) vs. deficit-round-robin (S-NIC)
//!   packet schedulers for the output module,
//! - [`vpp`]: the virtual packet pipeline with its buffer inventory
//!   (PB/PDB/ODB — Table 4's TLB sizing) and per-VPP rate guarantees,
//! - [`dma`]: the multi-bank DMA controller with per-direction windows
//!   (§4.2's SR-IOV-style isolation for NIC/host transfers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dma;
pub mod port;
pub mod rules;
pub mod scheduler;
pub mod vpp;
pub mod vxlan;

pub use dma::{DmaBank, DmaDirection};
pub use port::PortBuffers;
pub use rules::{RuleMatch, RuleTable, SwitchRule};
pub use scheduler::{DrrScheduler, FifoScheduler, PacketScheduler, TxItem};
pub use vpp::{VirtualPacketPipeline, VppBufferSpec};
pub use vxlan::{vxlan_decap, vxlan_encap};
