//! The multi-bank DMA controller (§4.2).
//!
//! "S-NIC achieves these properties using a multi-bank DMA controller,
//! with one bank per programmable core. Each bank has TLB entries for the
//! upstream and downstream transfer directions." A transfer is validated
//! against the bank's window for its direction; anything else is a
//! [`snic_types::IsolationError::DmaViolation`].

use std::sync::Arc;

use snic_mem::planner::{plan_regions, PagePolicy};
use snic_telemetry::{metrics, NullSink, TelemetrySink};
use snic_types::{ByteSize, CoreId, IsolationError, NfId, SnicError};

/// Transfer direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmaDirection {
    /// Host RAM → NIC RAM.
    HostToNic,
    /// NIC RAM → host RAM.
    NicToHost,
}

/// One DMA window: `(base, len)` in the relevant address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaWindow {
    /// Base address.
    pub base: u64,
    /// Window length in bytes.
    pub len: u64,
}

impl DmaWindow {
    fn contains(&self, addr: u64, len: u64) -> bool {
        addr >= self.base && addr.saturating_add(len) <= self.base + self.len
    }
}

/// A per-core DMA bank.
#[derive(Debug)]
pub struct DmaBank {
    core: CoreId,
    owner: NfId,
    /// NIC-side window (the NF-owned packet buffer).
    nic_window: DmaWindow,
    /// Host-side window (the host-sanctioned region).
    host_window: DmaWindow,
    locked: bool,
    transfers: u64,
    bytes: u64,
    sink: Arc<dyn TelemetrySink>,
}

impl DmaBank {
    /// Configure a bank; `nf_launch` locks it before the NF runs.
    pub fn new(
        core: CoreId,
        owner: NfId,
        nic_window: DmaWindow,
        host_window: DmaWindow,
    ) -> DmaBank {
        DmaBank {
            core,
            owner,
            nic_window,
            host_window,
            locked: false,
            transfers: 0,
            bytes: 0,
            sink: Arc::new(NullSink),
        }
    }

    /// Attach a telemetry sink (observational only).
    pub fn set_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = sink;
    }

    /// The serving core.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// The owning NF.
    pub fn owner(&self) -> NfId {
        self.owner
    }

    /// Lock the bank's windows (read-only after `nf_launch`).
    pub fn lock(&mut self) {
        self.locked = true;
    }

    /// True once locked.
    pub fn is_locked(&self) -> bool {
        self.locked
    }

    /// Reconfigure windows; fails after locking.
    pub fn reconfigure(
        &mut self,
        nic_window: DmaWindow,
        host_window: DmaWindow,
    ) -> Result<(), SnicError> {
        if self.locked {
            return Err(IsolationError::TlbLocked.into());
        }
        self.nic_window = nic_window;
        self.host_window = host_window;
        Ok(())
    }

    /// Validate a transfer of `len` bytes between `nic_addr` and
    /// `host_addr` in the given direction; returns the byte count on
    /// success.
    pub fn validate(
        &mut self,
        direction: DmaDirection,
        nic_addr: u64,
        host_addr: u64,
        len: u64,
    ) -> Result<u64, SnicError> {
        let _ = direction; // Both directions check both windows.
        if !self.nic_window.contains(nic_addr, len) {
            return Err(IsolationError::DmaViolation { addr: nic_addr }.into());
        }
        if !self.host_window.contains(host_addr, len) {
            return Err(IsolationError::DmaViolation { addr: host_addr }.into());
        }
        self.transfers += 1;
        self.bytes += len;
        if self.sink.enabled() {
            self.sink
                .counter_add(self.owner.0, metrics::DMA_TRANSFERS, 1);
            self.sink.record(self.owner.0, metrics::DMA_BYTES, len);
        }
        Ok(len)
    }

    /// Completed transfer count.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Completed byte count.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// TLB entries one DMA bank needs: the NF packet buffer (2 MB) plus the
/// DMA instruction queue (256 KB per SR-IOV function on a LiquidIO) —
/// Table 4 says 2 under 2 MB pages.
pub fn dma_bank_tlb_entries() -> u64 {
    plan_regions(&[ByteSize::mib(2), ByteSize::kib(256)], &PagePolicy::Equal).total_entries()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> DmaBank {
        DmaBank::new(
            CoreId(0),
            NfId(1),
            DmaWindow {
                base: 0x10_0000,
                len: 0x10_000,
            },
            DmaWindow {
                base: 0x8000_0000,
                len: 0x10_000,
            },
        )
    }

    #[test]
    fn valid_transfer_counts() {
        let mut b = bank();
        assert_eq!(
            b.validate(DmaDirection::NicToHost, 0x10_0000, 0x8000_0000, 4096)
                .unwrap(),
            4096
        );
        assert_eq!(b.transfers(), 1);
        assert_eq!(b.bytes(), 4096);
    }

    #[test]
    fn nic_side_violation() {
        let mut b = bank();
        let err = b
            .validate(DmaDirection::NicToHost, 0x20_0000, 0x8000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { addr: 0x20_0000 })
        ));
        assert_eq!(b.transfers(), 0);
    }

    #[test]
    fn host_side_violation() {
        let mut b = bank();
        // The host must not be able to aim DMA at arbitrary host memory.
        let err = b
            .validate(DmaDirection::HostToNic, 0x10_0000, 0x9000_0000, 64)
            .unwrap_err();
        assert!(matches!(
            err,
            SnicError::Isolation(IsolationError::DmaViolation { .. })
        ));
    }

    #[test]
    fn straddling_transfer_rejected() {
        let mut b = bank();
        assert!(b
            .validate(
                DmaDirection::NicToHost,
                0x10_0000 + 0x10_000 - 32,
                0x8000_0000,
                64
            )
            .is_err());
    }

    #[test]
    fn lock_prevents_reconfiguration() {
        let mut b = bank();
        b.lock();
        let w = DmaWindow {
            base: 0,
            len: u64::MAX / 2,
        };
        assert!(b.reconfigure(w, w).is_err());
        // Windows unchanged: the wide transfer still fails.
        assert!(b.validate(DmaDirection::NicToHost, 0, 0, 64).is_err());
    }

    #[test]
    fn table4_dma_tlb_entries() {
        assert_eq!(dma_bank_tlb_entries(), 2);
    }
}
