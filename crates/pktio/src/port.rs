//! Physical RX/TX port buffer accounting.
//!
//! §4.4: a VPP includes "buffer space in the physical RX and TX ports";
//! `nf_launch` fails with `PortBufferExhausted` if the requested space is
//! not available. Reservations are byte-granular and per-NF.

use std::collections::HashMap;
use std::sync::Arc;

use snic_telemetry::{metrics, NullSink, TelemetrySink};
use snic_types::{ByteSize, NfId, SnicError};

/// Reservation ledger for one physical port direction.
#[derive(Debug)]
pub struct PortBuffers {
    capacity: ByteSize,
    reservations: HashMap<NfId, ByteSize>,
    sink: Arc<dyn TelemetrySink>,
}

impl PortBuffers {
    /// A port with `capacity` bytes of buffer SRAM.
    pub fn new(capacity: ByteSize) -> PortBuffers {
        PortBuffers {
            capacity,
            reservations: HashMap::new(),
            sink: Arc::new(NullSink),
        }
    }

    /// Attach a telemetry sink (observational only).
    pub fn set_sink(&mut self, sink: Arc<dyn TelemetrySink>) {
        self.sink = sink;
    }

    /// Total capacity.
    pub fn capacity(&self) -> ByteSize {
        self.capacity
    }

    /// Bytes currently reserved.
    pub fn reserved(&self) -> ByteSize {
        ByteSize(self.reservations.values().map(|b| b.bytes()).sum())
    }

    /// Bytes still available.
    pub fn available(&self) -> ByteSize {
        self.capacity.saturating_sub(self.reserved())
    }

    /// Reserve `amount` for `owner` (additive if called twice).
    pub fn reserve(&mut self, owner: NfId, amount: ByteSize) -> Result<(), SnicError> {
        if amount > self.available() {
            return Err(SnicError::PortBufferExhausted);
        }
        *self.reservations.entry(owner).or_insert(ByteSize::ZERO) += amount;
        if self.sink.enabled() {
            self.sink
                .counter_add(owner.0, metrics::PORT_RESERVED_BYTES, amount.bytes());
        }
        Ok(())
    }

    /// Release everything held by `owner`; returns the amount freed.
    pub fn release_owner(&mut self, owner: NfId) -> ByteSize {
        let freed = self.reservations.remove(&owner).unwrap_or(ByteSize::ZERO);
        if self.sink.enabled() && freed > ByteSize::ZERO {
            self.sink
                .counter_add(owner.0, metrics::PORT_RELEASED_BYTES, freed.bytes());
        }
        freed
    }

    /// The reservation held by `owner`.
    pub fn reservation_of(&self, owner: NfId) -> ByteSize {
        self.reservations
            .get(&owner)
            .copied()
            .unwrap_or(ByteSize::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_and_release() {
        let mut p = PortBuffers::new(ByteSize::mib(8));
        p.reserve(NfId(1), ByteSize::mib(2)).unwrap();
        p.reserve(NfId(2), ByteSize::mib(4)).unwrap();
        assert_eq!(p.available(), ByteSize::mib(2));
        assert_eq!(p.release_owner(NfId(1)), ByteSize::mib(2));
        assert_eq!(p.available(), ByteSize::mib(4));
        assert_eq!(p.reservation_of(NfId(1)), ByteSize::ZERO);
    }

    #[test]
    fn over_reservation_fails_cleanly() {
        let mut p = PortBuffers::new(ByteSize::mib(4));
        p.reserve(NfId(1), ByteSize::mib(3)).unwrap();
        assert_eq!(
            p.reserve(NfId(2), ByteSize::mib(2)).unwrap_err(),
            SnicError::PortBufferExhausted
        );
        // Failed reservation takes nothing.
        assert_eq!(p.reservation_of(NfId(2)), ByteSize::ZERO);
        assert_eq!(p.available(), ByteSize::mib(1));
    }

    #[test]
    fn additive_reservations() {
        let mut p = PortBuffers::new(ByteSize::mib(4));
        p.reserve(NfId(1), ByteSize::mib(1)).unwrap();
        p.reserve(NfId(1), ByteSize::mib(1)).unwrap();
        assert_eq!(p.reservation_of(NfId(1)), ByteSize::mib(2));
    }

    #[test]
    fn exact_fit_allowed() {
        let mut p = PortBuffers::new(ByteSize::mib(4));
        p.reserve(NfId(1), ByteSize::mib(4)).unwrap();
        assert_eq!(p.available(), ByteSize::ZERO);
        assert!(p.reserve(NfId(2), ByteSize(1)).is_err());
    }
}
