//! VXLAN encapsulation and decapsulation (RFC 7348, §4.4 of the paper).
//!
//! "S-NIC allows a network function to act as a VXLAN endpoint; in this
//! manner, a function can integrate directly with the (virtual) Layer 2
//! datacenter topology that is owned by a tenant."

use bytes::{BufMut, BytesMut};
use snic_types::packet::{
    EthernetHeader, Ipv4Header, MacAddr, Packet, UdpHeader, VxlanHeader, ETHERTYPE_IPV4,
    VXLAN_UDP_PORT,
};
use snic_types::{Protocol, SnicError};

/// Encapsulate `inner` (a full Ethernet frame) in VXLAN with the given
/// VNI, between outer endpoints `src_ip` → `dst_ip`.
pub fn vxlan_encap(
    inner: &Packet,
    vni: u32,
    src_ip: u32,
    dst_ip: u32,
) -> Result<Packet, SnicError> {
    if vni >= 1 << 24 {
        return Err(SnicError::InvalidConfig("VNI exceeds 24 bits".into()));
    }
    let inner_len = inner.data.len();
    let udp_len = UdpHeader::LEN + VxlanHeader::LEN + inner_len;
    let total_len = Ipv4Header::LEN + udp_len;
    if total_len > usize::from(u16::MAX) {
        return Err(SnicError::InvalidConfig(
            "encapsulated frame too large".into(),
        ));
    }
    let mut out = BytesMut::with_capacity(EthernetHeader::LEN + total_len);
    EthernetHeader {
        dst: MacAddr::from_seed(u64::from(dst_ip)),
        src: MacAddr::from_seed(u64::from(src_ip)),
        ethertype: ETHERTYPE_IPV4,
    }
    .write(&mut out);
    Ipv4Header {
        src: src_ip,
        dst: dst_ip,
        protocol: Protocol::Udp,
        total_len: total_len as u16,
        ttl: 64,
        checksum: 0,
    }
    .write(&mut out);
    UdpHeader {
        // Source port derived from the inner flow for ECMP entropy,
        // as RFC 7348 recommends.
        src_port: 0xc000 | (hash16(&inner.data) & 0x3fff),
        dst_port: VXLAN_UDP_PORT,
        len: udp_len as u16,
    }
    .write(&mut out);
    VxlanHeader { vni }.write(&mut out);
    out.put_slice(&inner.data);
    Ok(Packet {
        data: out.freeze(),
        arrival: inner.arrival,
    })
}

/// Decapsulate a VXLAN packet, returning `(vni, inner frame)`.
///
/// Fails if the packet is not UDP/4789 or the VXLAN header is malformed.
pub fn vxlan_decap(pkt: &Packet) -> Result<(u32, Packet), SnicError> {
    let udp = pkt.udp()?;
    if udp.dst_port != VXLAN_UDP_PORT {
        return Err(SnicError::Malformed("not a VXLAN port"));
    }
    // The UDP length field must be fully backed by bytes; a truncated
    // capture must not decap to a silently shortened inner frame.
    if pkt.data.len() < pkt.l4_offset() + usize::from(udp.len) {
        return Err(SnicError::Malformed("VXLAN datagram truncated"));
    }
    let vx_off = pkt.l4_offset() + UdpHeader::LEN;
    let vx = VxlanHeader::parse(pkt.data.get(vx_off..).unwrap_or(&[]))?;
    let inner_off = vx_off + VxlanHeader::LEN;
    if pkt.data.len() <= inner_off {
        return Err(SnicError::Malformed("empty VXLAN payload"));
    }
    let inner = Packet {
        data: pkt.data.slice(inner_off..),
        arrival: pkt.arrival,
    };
    // The inner bytes must at least carry an Ethernet header.
    inner.ethernet()?;
    Ok((vx.vni, inner))
}

fn hash16(data: &[u8]) -> u16 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data.iter().take(64) {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    (h & 0xffff) as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::packet::PacketBuilder;

    fn inner() -> Packet {
        PacketBuilder::new(0x0a000001, 0x0a000002, Protocol::Tcp, 1234, 80)
            .payload(b"tenant layer-2 traffic".to_vec())
            .build()
    }

    #[test]
    fn encap_decap_round_trip() {
        let p = inner();
        let enc = vxlan_encap(&p, 0xabcdef, 0x01010101, 0x02020202).unwrap();
        let (vni, dec) = vxlan_decap(&enc).unwrap();
        assert_eq!(vni, 0xabcdef);
        assert_eq!(dec.data, p.data);
    }

    #[test]
    fn outer_headers_correct() {
        let enc = vxlan_encap(&inner(), 7, 0x01010101, 0x02020202).unwrap();
        let ip = enc.ipv4().unwrap();
        assert_eq!(ip.src, 0x01010101);
        assert_eq!(ip.dst, 0x02020202);
        assert_eq!(ip.protocol, Protocol::Udp);
        assert!(ip.checksum_ok());
        let udp = enc.udp().unwrap();
        assert_eq!(udp.dst_port, VXLAN_UDP_PORT);
        assert!(udp.src_port >= 0xc000, "entropy source port range");
    }

    #[test]
    fn oversized_vni_rejected() {
        assert!(vxlan_encap(&inner(), 1 << 24, 1, 2).is_err());
    }

    #[test]
    fn decap_rejects_plain_udp() {
        let plain = PacketBuilder::new(1, 2, Protocol::Udp, 53, 53).build();
        assert!(vxlan_decap(&plain).is_err());
    }

    #[test]
    fn decap_rejects_tcp() {
        assert!(vxlan_decap(&inner()).is_err());
    }

    #[test]
    fn decap_rejects_truncated() {
        let enc = vxlan_encap(&inner(), 7, 1, 2).unwrap();
        let truncated = Packet::from_bytes(enc.data.slice(..enc.data.len() - 30));
        // Either the UDP parse or the inner-frame check must fail —
        // depends on where the cut lands.
        assert!(vxlan_decap(&truncated).is_err() || truncated.udp().is_err());
    }

    #[test]
    fn nested_encapsulation_round_trips() {
        let p = inner();
        let once = vxlan_encap(&p, 1, 0x0101, 0x0202).unwrap();
        let twice = vxlan_encap(&once, 2, 0x0303, 0x0404).unwrap();
        let (v2, mid) = vxlan_decap(&twice).unwrap();
        assert_eq!(v2, 2);
        let (v1, orig) = vxlan_decap(&mid).unwrap();
        assert_eq!(v1, 1);
        assert_eq!(orig.data, p.data);
    }
}
