//! Switching rules.
//!
//! §3.1: rules are "predicates over a packet's 5-tuple"; §4.4 extends
//! them with MAC addresses and VXLAN VNIs so "a NIC [can] direct specific
//! VXLAN flows to specific functions". Rules carry a priority;
//! highest-priority first match wins.

use snic_types::packet::MacAddr;
use snic_types::{FiveTuple, NfId, Packet, Protocol};

use crate::vxlan::vxlan_decap;

/// A wildcardable field match.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RuleMatch<T> {
    /// Match anything.
    #[default]
    Any,
    /// Match exactly this value.
    Exact(T),
}

impl<T: PartialEq> RuleMatch<T> {
    /// True if `v` satisfies the match.
    pub fn matches(&self, v: &T) -> bool {
        match self {
            RuleMatch::Any => true,
            RuleMatch::Exact(x) => x == v,
        }
    }
}

/// One switching rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchRule {
    /// Source IP match.
    pub src_ip: RuleMatch<u32>,
    /// Destination IP match.
    pub dst_ip: RuleMatch<u32>,
    /// Protocol match.
    pub protocol: RuleMatch<Protocol>,
    /// Source port match.
    pub src_port: RuleMatch<u16>,
    /// Destination port match.
    pub dst_port: RuleMatch<u16>,
    /// Destination MAC match.
    pub dst_mac: RuleMatch<MacAddr>,
    /// VXLAN VNI match (applies to the outer VXLAN header; `Exact` rules
    /// only match encapsulated packets).
    pub vni: RuleMatch<u32>,
    /// Larger wins.
    pub priority: u32,
    /// The NF whose VPP receives matching packets.
    pub target: NfId,
}

impl SwitchRule {
    /// A rule matching everything for `target` at priority 0.
    pub fn any(target: NfId) -> SwitchRule {
        SwitchRule {
            src_ip: RuleMatch::Any,
            dst_ip: RuleMatch::Any,
            protocol: RuleMatch::Any,
            src_port: RuleMatch::Any,
            dst_port: RuleMatch::Any,
            dst_mac: RuleMatch::Any,
            vni: RuleMatch::Any,
            priority: 0,
            target,
        }
    }

    /// A rule matching an exact five-tuple.
    pub fn for_flow(ft: FiveTuple, target: NfId, priority: u32) -> SwitchRule {
        SwitchRule {
            src_ip: RuleMatch::Exact(ft.src_ip),
            dst_ip: RuleMatch::Exact(ft.dst_ip),
            protocol: RuleMatch::Exact(ft.protocol),
            src_port: RuleMatch::Exact(ft.src_port),
            dst_port: RuleMatch::Exact(ft.dst_port),
            dst_mac: RuleMatch::Any,
            vni: RuleMatch::Any,
            priority,
            target,
        }
    }

    fn matches(&self, ft: &FiveTuple, dst_mac: &MacAddr, vni: Option<u32>) -> bool {
        let vni_ok = match (&self.vni, vni) {
            (RuleMatch::Any, _) => true,
            (RuleMatch::Exact(want), Some(got)) => *want == got,
            (RuleMatch::Exact(_), None) => false,
        };
        vni_ok
            && self.src_ip.matches(&ft.src_ip)
            && self.dst_ip.matches(&ft.dst_ip)
            && self.protocol.matches(&ft.protocol)
            && self.src_port.matches(&ft.src_port)
            && self.dst_port.matches(&ft.dst_port)
            && self.dst_mac.matches(dst_mac)
    }
}

/// The packet input module's rule table.
#[derive(Debug, Default)]
pub struct RuleTable {
    rules: Vec<SwitchRule>,
}

impl RuleTable {
    /// An empty table (all packets unmatched).
    pub fn new() -> RuleTable {
        RuleTable::default()
    }

    /// Install a rule; the table re-sorts by descending priority
    /// (stable, so earlier installs win ties).
    pub fn install(&mut self, rule: SwitchRule) {
        self.rules.push(rule);
        self.rules.sort_by_key(|r| std::cmp::Reverse(r.priority));
    }

    /// Remove every rule targeting `nf` (teardown); returns how many.
    pub fn remove_target(&mut self, nf: NfId) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| r.target != nf);
        before - self.rules.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Classify a packet: peel VXLAN if present, then match rules against
    /// the (inner) five-tuple and the VNI.
    pub fn classify(&self, pkt: &Packet) -> Option<NfId> {
        let (vni, inner);
        let effective: &Packet = match vxlan_decap(pkt) {
            Ok((v, p)) => {
                vni = Some(v);
                inner = p;
                &inner
            }
            Err(_) => {
                vni = None;
                pkt
            }
        };
        let ft = FiveTuple::from_packet(effective).ok()?;
        let dst_mac = effective.ethernet().ok()?.dst;
        self.rules
            .iter()
            .find(|r| r.matches(&ft, &dst_mac, vni))
            .map(|r| r.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::packet::PacketBuilder;

    fn pkt(dst_port: u16) -> Packet {
        PacketBuilder::new(0x0a000001, 0xc6330001, Protocol::Tcp, 5000, dst_port).build()
    }

    #[test]
    fn priority_order_wins() {
        let mut t = RuleTable::new();
        t.install(SwitchRule::any(NfId(1)));
        t.install(SwitchRule {
            dst_port: RuleMatch::Exact(80),
            priority: 10,
            ..SwitchRule::any(NfId(2))
        });
        assert_eq!(t.classify(&pkt(80)), Some(NfId(2)));
        assert_eq!(t.classify(&pkt(81)), Some(NfId(1)));
    }

    #[test]
    fn tie_break_is_install_order() {
        let mut t = RuleTable::new();
        t.install(SwitchRule::any(NfId(1)));
        t.install(SwitchRule::any(NfId(2)));
        assert_eq!(t.classify(&pkt(80)), Some(NfId(1)));
    }

    #[test]
    fn empty_table_matches_nothing() {
        assert_eq!(RuleTable::new().classify(&pkt(80)), None);
    }

    #[test]
    fn exact_flow_rule() {
        let ft = FiveTuple {
            src_ip: 0x0a000001,
            dst_ip: 0xc6330001,
            protocol: Protocol::Tcp,
            src_port: 5000,
            dst_port: 443,
        };
        let mut t = RuleTable::new();
        t.install(SwitchRule::for_flow(ft, NfId(7), 5));
        assert_eq!(t.classify(&pkt(443)), Some(NfId(7)));
        assert_eq!(t.classify(&pkt(444)), None);
    }

    #[test]
    fn remove_target_unroutes() {
        let mut t = RuleTable::new();
        t.install(SwitchRule::any(NfId(1)));
        t.install(SwitchRule {
            priority: 9,
            ..SwitchRule::any(NfId(2))
        });
        assert_eq!(t.remove_target(NfId(2)), 1);
        assert_eq!(t.classify(&pkt(80)), Some(NfId(1)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn vni_rule_matches_only_encapsulated() {
        use crate::vxlan::vxlan_encap;
        let mut t = RuleTable::new();
        t.install(SwitchRule {
            vni: RuleMatch::Exact(0x1234),
            priority: 10,
            ..SwitchRule::any(NfId(3))
        });
        t.install(SwitchRule::any(NfId(1)));
        let inner = pkt(80);
        let enc = vxlan_encap(&inner, 0x1234, 0x01020304, 0x05060708).unwrap();
        assert_eq!(t.classify(&enc), Some(NfId(3)));
        // Plain packet skips the VNI rule.
        assert_eq!(t.classify(&inner), Some(NfId(1)));
        // Wrong VNI falls through.
        let other = vxlan_encap(&inner, 0x9999, 0x01020304, 0x05060708).unwrap();
        assert_eq!(t.classify(&other), Some(NfId(1)));
    }

    #[test]
    fn mac_rule() {
        let mut t = RuleTable::new();
        let target_mac = MacAddr::from_seed(u64::from(0xc6330001u32));
        t.install(SwitchRule {
            dst_mac: RuleMatch::Exact(target_mac),
            priority: 10,
            ..SwitchRule::any(NfId(4))
        });
        assert_eq!(t.classify(&pkt(80)), Some(NfId(4)));
    }
}
