//! Packet schedulers for the output module.
//!
//! §4.4: a VPP's configuration names "the desired packet scheduling
//! algorithm"; together with the port-buffer reservations this is what
//! gives a VPP *reserved packet throughput*. Two disciplines are
//! modeled:
//!
//! - [`FifoScheduler`]: the commodity output module — a single queue
//!   drained in arrival order. A flooding tenant starves everyone else.
//! - [`DrrScheduler`]: deficit round robin with per-VPP quanta — each
//!   tenant gets a guaranteed byte share of the wire regardless of
//!   co-tenant backlog (the S-NIC discipline).
//!
//! Both operate on abstract `(tenant, bytes)` work items so they can be
//! unit-tested deterministically and reused by the device model.

use std::collections::VecDeque;

use snic_types::NfId;

/// A queued transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxItem {
    /// Owning tenant/VPP.
    pub tenant: NfId,
    /// Frame length in bytes.
    pub bytes: u32,
}

/// A packet scheduler: accepts per-tenant work, emits wire order.
pub trait PacketScheduler {
    /// Enqueue a frame.
    fn enqueue(&mut self, item: TxItem);
    /// Pick the next frame for the wire.
    fn dequeue(&mut self) -> Option<TxItem>;
    /// Total frames waiting.
    fn backlog(&self) -> usize;
}

/// Single shared FIFO (commodity).
#[derive(Debug, Default)]
pub struct FifoScheduler {
    queue: VecDeque<TxItem>,
}

impl FifoScheduler {
    /// An empty FIFO.
    pub fn new() -> FifoScheduler {
        FifoScheduler::default()
    }
}

impl PacketScheduler for FifoScheduler {
    fn enqueue(&mut self, item: TxItem) {
        self.queue.push_back(item);
    }

    fn dequeue(&mut self) -> Option<TxItem> {
        self.queue.pop_front()
    }

    fn backlog(&self) -> usize {
        self.queue.len()
    }
}

/// Deficit round robin with configurable per-tenant quanta.
#[derive(Debug)]
pub struct DrrScheduler {
    /// Per-tenant state in round-robin order.
    tenants: Vec<DrrQueue>,
    /// Index of the tenant currently holding the deficit pointer.
    cursor: usize,
}

#[derive(Debug)]
struct DrrQueue {
    tenant: NfId,
    quantum: u32,
    deficit: u32,
    queue: VecDeque<TxItem>,
}

impl DrrScheduler {
    /// Create a scheduler with `(tenant, quantum_bytes)` reservations.
    ///
    /// # Panics
    ///
    /// Panics on an empty tenant set or a zero quantum.
    pub fn new(reservations: &[(NfId, u32)]) -> DrrScheduler {
        assert!(!reservations.is_empty(), "DRR needs at least one tenant");
        let tenants = reservations
            .iter()
            .map(|&(tenant, quantum)| {
                assert!(quantum > 0, "zero quantum for {tenant}");
                DrrQueue {
                    tenant,
                    quantum,
                    deficit: 0,
                    queue: VecDeque::new(),
                }
            })
            .collect();
        DrrScheduler { tenants, cursor: 0 }
    }

    fn queue_of(&mut self, tenant: NfId) -> Option<&mut DrrQueue> {
        self.tenants.iter_mut().find(|q| q.tenant == tenant)
    }
}

impl PacketScheduler for DrrScheduler {
    fn enqueue(&mut self, item: TxItem) {
        // Frames from unknown tenants are dropped: the output module
        // only serves configured VPPs.
        if let Some(q) = self.queue_of(item.tenant) {
            q.queue.push_back(item);
        }
    }

    fn dequeue(&mut self) -> Option<TxItem> {
        if self.backlog() == 0 {
            return None;
        }
        let n = self.tenants.len();
        // Classic DRR: visit queues round-robin; add the quantum when a
        // non-empty queue is visited; emit while the head fits the
        // accumulated deficit.
        loop {
            for _ in 0..n {
                let idx = self.cursor;
                let q = &mut self.tenants[idx];
                if let Some(&head) = q.queue.front() {
                    if q.deficit >= head.bytes {
                        q.deficit -= head.bytes;
                        let item = q.queue.pop_front();
                        if q.queue.is_empty() {
                            // An emptied queue forfeits its remaining deficit.
                            q.deficit = 0;
                            self.cursor = (idx + 1) % n;
                        }
                        return item;
                    }
                    // Head does not fit: grant the quantum and move on.
                    q.deficit += q.quantum;
                    self.cursor = (idx + 1) % n;
                } else {
                    q.deficit = 0;
                    self.cursor = (idx + 1) % n;
                }
            }
        }
    }

    fn backlog(&self) -> usize {
        self.tenants.iter().map(|q| q.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(t: u64, bytes: u32) -> TxItem {
        TxItem {
            tenant: NfId(t),
            bytes,
        }
    }

    #[test]
    fn fifo_is_arrival_order() {
        let mut s = FifoScheduler::new();
        s.enqueue(item(1, 100));
        s.enqueue(item(2, 200));
        s.enqueue(item(1, 100));
        assert_eq!(s.dequeue().unwrap().tenant, NfId(1));
        assert_eq!(s.dequeue().unwrap().tenant, NfId(2));
        assert_eq!(s.dequeue().unwrap().tenant, NfId(1));
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn fifo_flood_starves_victim() {
        // Attacker enqueues 1000 frames before the victim's one frame:
        // the victim waits behind all of them.
        let mut s = FifoScheduler::new();
        for _ in 0..1000 {
            s.enqueue(item(666, 1500));
        }
        s.enqueue(item(1, 64));
        let mut drained = 0;
        while let Some(x) = s.dequeue() {
            if x.tenant == NfId(1) {
                break;
            }
            drained += 1;
        }
        assert_eq!(drained, 1000, "victim served only after the whole flood");
    }

    #[test]
    fn drr_bounds_flood_impact() {
        // Equal quanta: the victim's first frame goes out within a couple
        // of rounds even behind a 1000-frame flood.
        let mut s = DrrScheduler::new(&[(NfId(666), 1500), (NfId(1), 1500)]);
        for _ in 0..1000 {
            s.enqueue(item(666, 1500));
        }
        s.enqueue(item(1, 64));
        let mut before_victim = 0;
        while let Some(x) = s.dequeue() {
            if x.tenant == NfId(1) {
                break;
            }
            before_victim += 1;
        }
        assert!(
            before_victim <= 2,
            "victim delayed by {before_victim} flood frames"
        );
    }

    #[test]
    fn drr_byte_shares_track_quanta() {
        // 3:1 quanta → ~3:1 byte shares under saturation.
        let mut s = DrrScheduler::new(&[(NfId(1), 3000), (NfId(2), 1000)]);
        for _ in 0..600 {
            s.enqueue(item(1, 1000));
            s.enqueue(item(2, 1000));
        }
        let mut bytes = [0u64; 2];
        for _ in 0..400 {
            let x = s.dequeue().unwrap();
            bytes[(x.tenant.0 - 1) as usize] += u64::from(x.bytes);
        }
        let ratio = bytes[0] as f64 / bytes[1] as f64;
        assert!((2.5..3.5).contains(&ratio), "share ratio {ratio}");
    }

    #[test]
    fn drr_serves_all_backlog_eventually() {
        let mut s = DrrScheduler::new(&[(NfId(1), 500), (NfId(2), 500)]);
        for i in 0..50 {
            s.enqueue(item(1 + (i % 2), 400));
        }
        let mut count = 0;
        while s.dequeue().is_some() {
            count += 1;
        }
        assert_eq!(count, 50);
        assert_eq!(s.backlog(), 0);
    }

    #[test]
    fn drr_drops_unconfigured_tenants() {
        let mut s = DrrScheduler::new(&[(NfId(1), 500)]);
        s.enqueue(item(9, 100));
        assert_eq!(s.backlog(), 0);
        assert!(s.dequeue().is_none());
    }

    #[test]
    fn drr_handles_jumbo_frames_larger_than_quantum() {
        // A frame larger than the quantum accumulates deficit across
        // rounds rather than deadlocking.
        let mut s = DrrScheduler::new(&[(NfId(1), 500), (NfId(2), 500)]);
        s.enqueue(item(1, 9000));
        s.enqueue(item(2, 64));
        let order: Vec<NfId> = std::iter::from_fn(|| s.dequeue().map(|x| x.tenant)).collect();
        assert_eq!(order.len(), 2);
        assert!(order.contains(&NfId(1)));
        assert!(order.contains(&NfId(2)));
    }

    #[test]
    #[should_panic(expected = "zero quantum")]
    fn zero_quantum_rejected() {
        let _ = DrrScheduler::new(&[(NfId(1), 0)]);
    }
}
