//! The virtual packet pipeline (VPP, §4.4).
//!
//! A VPP owns three DRAM buffers — the packet buffer (PB), the packet
//! descriptor buffer (PDB), and the output descriptor buffer (ODB). On a
//! LiquidIO these are 2 MB, 128 KB, and 1 MB, which is why a VPP needs
//! exactly 3 TLB entries (§5.2). The pipeline enforces its buffer
//! capacity: when the PB fills, arriving packets are dropped and counted,
//! so one NF's backlog can never consume another NF's buffer space.

use std::collections::VecDeque;

use snic_mem::planner::{plan_regions, PagePolicy};
use snic_types::{ByteSize, NfId, Packet, VppId};

/// The VPP buffer inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VppBufferSpec {
    /// Packet buffer (packet data).
    pub pb: ByteSize,
    /// Packet descriptor buffer (metadata for received packets).
    pub pdb: ByteSize,
    /// Output descriptor buffer (metadata for outgoing packets).
    pub odb: ByteSize,
}

impl Default for VppBufferSpec {
    fn default() -> Self {
        // LiquidIO sizes from §5.2.
        VppBufferSpec {
            pb: ByteSize::mib(2),
            pdb: ByteSize::kib(128),
            odb: ByteSize::mib(1),
        }
    }
}

impl VppBufferSpec {
    /// TLB entries the scheduler needs to map the three buffers under
    /// 2 MB pages (Table 4: 3).
    pub fn tlb_entries(&self) -> u64 {
        plan_regions(&[self.pb, self.pdb, self.odb], &PagePolicy::Equal).total_entries()
    }

    /// Total reserved bytes.
    pub fn total(&self) -> ByteSize {
        self.pb + self.pdb + self.odb
    }
}

/// Per-descriptor bookkeeping bytes in the PDB/ODB.
const DESCRIPTOR_BYTES: u64 = 32;

/// A virtual packet pipeline bound to one NF.
#[derive(Debug)]
pub struct VirtualPacketPipeline {
    id: VppId,
    owner: NfId,
    spec: VppBufferSpec,
    rx: VecDeque<Packet>,
    tx: VecDeque<Packet>,
    rx_bytes: u64,
    tx_bytes: u64,
    rx_dropped: u64,
    rx_delivered: u64,
    tx_sent: u64,
}

impl VirtualPacketPipeline {
    /// Create a VPP for `owner` with the given buffers.
    pub fn new(id: VppId, owner: NfId, spec: VppBufferSpec) -> VirtualPacketPipeline {
        VirtualPacketPipeline {
            id,
            owner,
            spec,
            rx: VecDeque::new(),
            tx: VecDeque::new(),
            rx_bytes: 0,
            tx_bytes: 0,
            rx_dropped: 0,
            rx_delivered: 0,
            tx_sent: 0,
        }
    }

    /// Pipeline id.
    pub fn id(&self) -> VppId {
        self.id
    }

    /// Owning NF.
    pub fn owner(&self) -> NfId {
        self.owner
    }

    /// Buffer spec.
    pub fn spec(&self) -> &VppBufferSpec {
        &self.spec
    }

    /// The packet input module delivers a packet into the PB/PDB.
    /// Returns `false` (and counts a drop) when the buffers are full.
    pub fn enqueue_rx(&mut self, pkt: Packet) -> bool {
        let need = pkt.len() as u64;
        let pdb_full = (self.rx.len() as u64 + 1) * DESCRIPTOR_BYTES > self.spec.pdb.bytes();
        if self.rx_bytes + need > self.spec.pb.bytes() || pdb_full {
            self.rx_dropped += 1;
            return false;
        }
        self.rx_bytes += need;
        self.rx.push_back(pkt);
        true
    }

    /// The NF polls its next packet.
    pub fn poll_rx(&mut self) -> Option<Packet> {
        let p = self.rx.pop_front()?;
        self.rx_bytes -= p.len() as u64;
        self.rx_delivered += 1;
        Some(p)
    }

    /// The NF hands a processed packet to the output module. Returns
    /// `false` if the ODB is full (the NF must retry later).
    pub fn enqueue_tx(&mut self, pkt: Packet) -> bool {
        let odb_full = (self.tx.len() as u64 + 1) * DESCRIPTOR_BYTES > self.spec.odb.bytes();
        if odb_full {
            return false;
        }
        self.tx_bytes += pkt.len() as u64;
        self.tx.push_back(pkt);
        true
    }

    /// The packet output module drains one packet toward the wire.
    pub fn drain_tx(&mut self) -> Option<Packet> {
        let p = self.tx.pop_front()?;
        self.tx_bytes -= p.len() as u64;
        self.tx_sent += 1;
        Some(p)
    }

    /// RX packets waiting.
    pub fn rx_depth(&self) -> usize {
        self.rx.len()
    }

    /// Packets dropped because this VPP's own buffers were full.
    pub fn rx_dropped(&self) -> u64 {
        self.rx_dropped
    }

    /// Packets delivered to the NF.
    pub fn rx_delivered(&self) -> u64 {
        self.rx_delivered
    }

    /// Packets placed on the wire.
    pub fn tx_sent(&self) -> u64 {
        self.tx_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_types::packet::PacketBuilder;
    use snic_types::Protocol;

    fn pkt(n: u16) -> Packet {
        PacketBuilder::new(1, 2, Protocol::Udp, n, 80)
            .payload(vec![0u8; 100])
            .build()
    }

    fn vpp(pb: ByteSize) -> VirtualPacketPipeline {
        VirtualPacketPipeline::new(
            VppId(0),
            NfId(1),
            VppBufferSpec {
                pb,
                pdb: ByteSize::kib(1),
                odb: ByteSize::kib(1),
            },
        )
    }

    #[test]
    fn default_spec_needs_three_tlb_entries() {
        assert_eq!(VppBufferSpec::default().tlb_entries(), 3);
    }

    #[test]
    fn rx_fifo_order() {
        let mut v = vpp(ByteSize::mib(1));
        assert!(v.enqueue_rx(pkt(1)));
        assert!(v.enqueue_rx(pkt(2)));
        assert_eq!(v.poll_rx().unwrap().udp().unwrap().src_port, 1);
        assert_eq!(v.poll_rx().unwrap().udp().unwrap().src_port, 2);
        assert!(v.poll_rx().is_none());
        assert_eq!(v.rx_delivered(), 2);
    }

    #[test]
    fn pb_overflow_drops() {
        // PB of 300 bytes holds exactly two ~150-byte frames.
        let mut v = vpp(ByteSize(320));
        assert!(v.enqueue_rx(pkt(1)));
        assert!(v.enqueue_rx(pkt(2)));
        assert!(!v.enqueue_rx(pkt(3)));
        assert_eq!(v.rx_dropped(), 1);
        // Draining frees space.
        let _ = v.poll_rx();
        assert!(v.enqueue_rx(pkt(3)));
    }

    #[test]
    fn pdb_overflow_drops() {
        // PDB of 64 bytes holds two descriptors regardless of PB space.
        let mut v = VirtualPacketPipeline::new(
            VppId(0),
            NfId(1),
            VppBufferSpec {
                pb: ByteSize::mib(8),
                pdb: ByteSize(64),
                odb: ByteSize::kib(1),
            },
        );
        assert!(v.enqueue_rx(pkt(1)));
        assert!(v.enqueue_rx(pkt(2)));
        assert!(!v.enqueue_rx(pkt(3)));
    }

    #[test]
    fn tx_path_counts() {
        let mut v = vpp(ByteSize::mib(1));
        assert!(v.enqueue_tx(pkt(9)));
        assert_eq!(v.drain_tx().unwrap().udp().unwrap().src_port, 9);
        assert!(v.drain_tx().is_none());
        assert_eq!(v.tx_sent(), 1);
    }

    #[test]
    fn odb_overflow_rejects_without_losing() {
        let mut v = VirtualPacketPipeline::new(
            VppId(0),
            NfId(1),
            VppBufferSpec {
                pb: ByteSize::mib(1),
                pdb: ByteSize::kib(1),
                odb: ByteSize(64),
            },
        );
        assert!(v.enqueue_tx(pkt(1)));
        assert!(v.enqueue_tx(pkt(2)));
        assert!(!v.enqueue_tx(pkt(3)), "ODB full: NF must retry");
        let _ = v.drain_tx();
        assert!(v.enqueue_tx(pkt(3)));
    }
}
