//! Property tests across the packet-IO crate: VXLAN transparency, rule
//! classification totality, VPP conservation.

use proptest::prelude::*;
use snic_pktio::rules::{RuleMatch, RuleTable, SwitchRule};
use snic_pktio::vpp::{VirtualPacketPipeline, VppBufferSpec};
use snic_pktio::vxlan::{vxlan_decap, vxlan_encap};
use snic_types::packet::PacketBuilder;
use snic_types::{ByteSize, NfId, Protocol, VppId};

proptest! {
    #[test]
    fn vxlan_round_trip_arbitrary_payloads(
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        vni in 0u32..(1 << 24),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let inner = PacketBuilder::new(1, 2, Protocol::Tcp, 10, 20).payload(payload).build();
        let enc = vxlan_encap(&inner, vni, src, dst).unwrap();
        let (got_vni, dec) = vxlan_decap(&enc).unwrap();
        prop_assert_eq!(got_vni, vni);
        prop_assert_eq!(dec.data, inner.data);
        // The outer packet itself parses and checksums.
        prop_assert!(enc.ipv4().unwrap().checksum_ok());
    }

    #[test]
    fn rule_table_first_match_semantics(
        ports in proptest::collection::vec(1u16..1000, 1..10),
        probe in 1u16..1000,
    ) {
        // Install one exact rule per port at priority = port; the
        // classifier must return the matching rule's target.
        let mut table = RuleTable::new();
        for (i, &p) in ports.iter().enumerate() {
            table.install(SwitchRule {
                dst_port: RuleMatch::Exact(p),
                priority: u32::from(p),
                ..SwitchRule::any(NfId(i as u64))
            });
        }
        let pkt = PacketBuilder::new(1, 2, Protocol::Udp, 4000, probe).build();
        let got = table.classify(&pkt);
        let expect = ports
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == probe)
            .map(|(i, _)| NfId(i as u64))
            .next();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn vpp_conserves_packets(
        lens in proptest::collection::vec(0usize..200, 1..60),
    ) {
        let mut vpp = VirtualPacketPipeline::new(
            VppId(0),
            NfId(1),
            VppBufferSpec { pb: ByteSize::kib(4), pdb: ByteSize(32 * 16), odb: ByteSize::kib(1) },
        );
        let mut accepted = 0u64;
        for (i, &len) in lens.iter().enumerate() {
            let pkt = PacketBuilder::new(i as u32, 2, Protocol::Udp, 1, 2)
                .payload(vec![0u8; len])
                .build();
            if vpp.enqueue_rx(pkt) {
                accepted += 1;
            }
        }
        prop_assert_eq!(accepted + vpp.rx_dropped(), lens.len() as u64);
        let mut polled = 0u64;
        while vpp.poll_rx().is_some() {
            polled += 1;
        }
        prop_assert_eq!(polled, accepted, "every accepted packet is deliverable exactly once");
        prop_assert_eq!(vpp.rx_depth(), 0);
    }
}
