//! Deterministic parallel execution for colocation simulations.
//!
//! The §5.3 sweeps ("every possible colocation") are embarrassingly
//! parallel: each colocation run is an independent, side-effect-free
//! call to [`snic_uarch::engine::run_colocated_warm`]. This crate gives
//! them a fan-out layer:
//!
//! - [`SimJob`] — one pending colocation run (machine config, streams,
//!   warmup window), runnable on any thread;
//! - [`run_jobs`] / [`run_jobs_on`] — a worker pool on
//!   [`std::thread::scope`] that drains a job list across cores and
//!   returns outcomes **in input order**, so parallel results are
//!   bit-identical to [`run_jobs_serial`];
//! - [`par_map`] / [`par_map_on`] — the same order-preserving pool for
//!   arbitrary independent work (per-NF launches, per-domain solo
//!   replays, per-scenario attack recordings).
//!
//! Determinism is the contract: every function here is a pure reorder
//! of *when* work happens, never of *what* is computed or in which slot
//! the result lands. `crates/bench/tests/parallel_determinism.rs` holds
//! the engine to it bit-for-bit.
//!
//! The pool uses only the standard library (the workspace is offline;
//! no rayon). Worker count defaults to
//! [`std::thread::available_parallelism`] and can be pinned with the
//! `SNIC_SIM_THREADS` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use snic_telemetry::TelemetrySink;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::{run_colocated_sink, run_colocated_warm, RunOutcome};
use snic_uarch::stream::EventSource;

/// A reference stream that can move to a worker thread. [`EventSource`]
/// is `Send` (asserted in `snic-uarch`'s stream tests); the alias name
/// survives from the boxed-trait-object era so call sites read the same.
pub type SendStream = EventSource;

/// One pending colocation run: everything
/// [`snic_uarch::engine::run_colocated_warm`] needs, packaged so the run
/// can execute on any worker thread.
pub struct SimJob {
    cfg: MachineConfig,
    streams: Vec<SendStream>,
    warmups: Vec<u64>,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl SimJob {
    /// A job with no warmup window (statistics cover the whole run).
    pub fn new(cfg: MachineConfig, streams: Vec<SendStream>) -> SimJob {
        SimJob {
            cfg,
            streams,
            warmups: Vec::new(),
            sink: None,
        }
    }

    /// Exclude the first `warmups[i]` events of stream `i` from the
    /// statistics (§5.3's warmup methodology).
    pub fn with_warmups(mut self, warmups: Vec<u64>) -> SimJob {
        self.warmups = warmups;
        self
    }

    /// Report this run's telemetry to `sink`. Without a sink the job
    /// takes the uninstrumented engine path (identical statistics, no
    /// sink branches at all).
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> SimJob {
        self.sink = Some(sink);
        self
    }

    /// Execute the job on the current thread.
    pub fn run(self) -> RunOutcome {
        match self.sink {
            Some(sink) => run_colocated_sink(&self.cfg, self.streams, &self.warmups, sink.as_ref()),
            None => run_colocated_warm(&self.cfg, self.streams, &self.warmups),
        }
    }
}

impl std::fmt::Debug for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimJob")
            .field("cfg", &self.cfg)
            .field("streams", &self.streams.len())
            .field("warmups", &self.warmups)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

/// Which execution strategy a sweep uses. The two must produce
/// bit-identical results; `Serial` exists so tests can prove it and so
/// debugging sessions can take the simple path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Run jobs one after another on the calling thread.
    Serial,
    /// Fan jobs across the worker pool ([`default_threads`] workers).
    Parallel,
}

/// Worker count used by [`run_jobs`] and [`par_map`]:
/// `SNIC_SIM_THREADS` when set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    std::env::var("SNIC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run every job on the calling thread, in order.
pub fn run_jobs_serial(jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    jobs.into_iter().map(SimJob::run).collect()
}

/// Run jobs across [`default_threads`] workers; outcomes come back in
/// input order.
pub fn run_jobs(jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    run_jobs_on(jobs, default_threads())
}

/// Run jobs across exactly `threads` workers; outcomes come back in
/// input order.
pub fn run_jobs_on(jobs: Vec<SimJob>, threads: usize) -> Vec<RunOutcome> {
    par_map_on(jobs, threads, SimJob::run)
}

/// Dispatch on [`Exec`]: the serial path or the default pool.
pub fn execute(exec: Exec, jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    match exec {
        Exec::Serial => run_jobs_serial(jobs),
        Exec::Parallel => run_jobs(jobs),
    }
}

/// Dispatch an arbitrary order-preserving map on [`Exec`]: the serial
/// path runs on the calling thread, the parallel path on the default
/// pool. Both produce identical result vectors.
pub fn map_exec<T, R, F>(exec: Exec, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match exec {
        Exec::Serial => items.into_iter().map(f).collect(),
        Exec::Parallel => par_map(items, f),
    }
}

/// Apply `f` to every item using [`default_threads`] workers, returning
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_on(items, default_threads(), f)
}

/// Apply `f` to every item using exactly `threads` workers, returning
/// results in input order.
///
/// Work is pulled from a shared queue, so long and short items mix
/// freely without a static partition; the result of item `i` always
/// lands in slot `i`. With `threads <= 1` (or a single item) this is a
/// plain in-order map on the calling thread.
pub fn par_map_on<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // A panicking sibling poisons the queue lock; recover the
                // guard so remaining workers drain what is left (the
                // panic still propagates out of the scope).
                let next = queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .pop_front();
                let Some((i, item)) = next else { break };
                let r = f(item);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every queue index was drained by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_uarch::stream::SyntheticStream;

    fn job(seed: u64, tenants: usize) -> SimJob {
        let streams: Vec<SendStream> = (0..tenants)
            .map(|i| SyntheticStream::new(2 << 20, 8, 4, 4_000, seed + i as u64).into())
            .collect();
        SimJob::new(MachineConfig::commodity(tenants as u32, 1 << 20), streams)
            .with_warmups(vec![500; tenants])
    }

    #[test]
    fn pool_matches_serial_bitwise() {
        let serial = run_jobs_serial((0..12).map(|s| job(s, 2)).collect());
        for threads in [1, 2, 5, 32] {
            let pooled = run_jobs_on((0..12).map(|s| job(s, 2)).collect(), threads);
            assert_eq!(serial.len(), pooled.len());
            for (a, b) in serial.iter().zip(&pooled) {
                assert_eq!(a.nfs, b.nfs, "threads={threads}");
            }
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs with wildly different lengths: if ordering followed
        // completion, the short job would finish first.
        let long = job(1, 4);
        let short = job(2, 1);
        let serial_long = job(1, 4).run();
        let serial_short = job(2, 1).run();
        let out = run_jobs_on(vec![long, short], 2);
        assert_eq!(out[0].nfs, serial_long.nfs);
        assert_eq!(out[1].nfs, serial_short.nfs);
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 3, 8, 200] {
            assert_eq!(par_map_on(items.clone(), threads, |x| x * x), expect);
        }
        assert_eq!(par_map(items, |x| x * x), expect);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(run_jobs(Vec::new()).is_empty());
        assert!(par_map_on(Vec::<u32>::new(), 8, |x| x).is_empty());
    }

    #[test]
    fn execute_dispatches_both_paths() {
        let a = execute(Exec::Serial, vec![job(3, 2)]);
        let b = execute(Exec::Parallel, vec![job(3, 2)]);
        assert_eq!(a[0].nfs, b[0].nfs);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn sink_on_jobs_match_sink_off_bitwise() {
        use snic_telemetry::Recorder;
        let recorder = Arc::new(Recorder::new());
        let with_sink: Vec<SimJob> = (0..6)
            .map(|s| job(s, 2).with_sink(Arc::clone(&recorder) as Arc<dyn TelemetrySink>))
            .collect();
        let without: Vec<SimJob> = (0..6).map(|s| job(s, 2)).collect();
        let on = run_jobs_on(with_sink, 3);
        let off = run_jobs_serial(without);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.nfs, b.nfs, "sink-on parallel must equal sink-off serial");
        }
        assert!(
            !recorder.summary().is_empty(),
            "the shared sink saw the instrumented runs"
        );
    }

    #[test]
    fn map_exec_matches_across_paths() {
        let items: Vec<u64> = (0..50).collect();
        let a = map_exec(Exec::Serial, items.clone(), |x| x * 3 + 1);
        let b = map_exec(Exec::Parallel, items, |x| x * 3 + 1);
        assert_eq!(a, b);
    }
}
