//! Deterministic parallel execution for colocation simulations.
//!
//! The §5.3 sweeps ("every possible colocation") are embarrassingly
//! parallel: each colocation run is an independent, side-effect-free
//! call to [`snic_uarch::engine::run_colocated_warm`]. This crate gives
//! them a fan-out layer:
//!
//! - [`SimJob`] — one pending colocation run (machine config, streams,
//!   warmup window), runnable on any thread;
//! - [`JobSpec`] — a re-windable job *factory*: rebuilds the same
//!   deterministic job on demand so one logical run can execute many
//!   times (serial vs parallel vs sharded differentials, streamed
//!   sources that are consumed by running);
//! - [`run_jobs`] / [`run_jobs_on`] — a worker pool on
//!   [`std::thread::scope`] that drains a job list across cores and
//!   returns outcomes **in input order**, so parallel results are
//!   bit-identical to [`run_jobs_serial`];
//! - [`par_map`] / [`par_map_on`] — the same order-preserving pool for
//!   arbitrary independent work (per-NF launches, per-domain solo
//!   replays, per-scenario attack recordings);
//! - [`run_sharded`] / [`run_sharded_sink`] — *intra-run* parallelism:
//!   one colocation under the S-NIC disciplines (see [`shardable`])
//!   split into contiguous tenant chunks simulated concurrently with
//!   their global tenant ids, then reassembled — and, with a sink,
//!   telemetry replayed in shard order from per-shard
//!   [`BufferSink`]s — bit-identical to the serial run.
//!
//! Determinism is the contract: every function here is a pure reorder
//! of *when* work happens, never of *what* is computed or in which slot
//! the result lands. `crates/bench/tests/parallel_determinism.rs` holds
//! the engine to it bit-for-bit.
//!
//! The pool uses only the standard library (the workspace is offline;
//! no rayon). Worker count defaults to
//! [`std::thread::available_parallelism`] and can be pinned with the
//! `SNIC_SIM_THREADS` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

use snic_telemetry::{BufferSink, TelemetrySink};
use snic_uarch::bus::BusKind;
use snic_uarch::cache::Partition;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::{
    run_colocated_ids_sink, run_colocated_sink, run_colocated_warm, RunOutcome,
};
use snic_uarch::stream::EventSource;

/// A reference stream that can move to a worker thread. [`EventSource`]
/// is `Send` (asserted in `snic-uarch`'s stream tests); the alias name
/// survives from the boxed-trait-object era so call sites read the same.
pub type SendStream = EventSource;

/// One pending colocation run: everything
/// [`snic_uarch::engine::run_colocated_warm`] needs, packaged so the run
/// can execute on any worker thread.
pub struct SimJob {
    cfg: MachineConfig,
    streams: Vec<SendStream>,
    warmups: Vec<u64>,
    sink: Option<Arc<dyn TelemetrySink>>,
    shards: usize,
}

impl SimJob {
    /// A job with no warmup window (statistics cover the whole run).
    pub fn new(cfg: MachineConfig, streams: Vec<SendStream>) -> SimJob {
        SimJob {
            cfg,
            streams,
            warmups: Vec::new(),
            sink: None,
            shards: 1,
        }
    }

    /// Exclude the first `warmups[i]` events of stream `i` from the
    /// statistics (§5.3's warmup methodology).
    pub fn with_warmups(mut self, warmups: Vec<u64>) -> SimJob {
        self.warmups = warmups;
        self
    }

    /// Report this run's telemetry to `sink`. Without a sink the job
    /// takes the uninstrumented engine path (identical statistics, no
    /// sink branches at all).
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> SimJob {
        self.sink = Some(sink);
        self
    }

    /// Split this run across up to `shards` worker threads (see
    /// [`run_sharded`]). Only takes effect when the machine
    /// configuration is [`shardable`]; otherwise the run stays serial
    /// — either way the outcome is bit-identical.
    pub fn with_shards(mut self, shards: usize) -> SimJob {
        self.shards = shards.max(1);
        self
    }

    /// Execute the job, fanning a shardable colocation across worker
    /// threads when [`SimJob::with_shards`] asked for it.
    pub fn run(self) -> RunOutcome {
        if self.shards > 1 {
            return run_sharded_sink(
                &self.cfg,
                self.streams,
                &self.warmups,
                self.shards,
                self.sink.as_deref(),
            );
        }
        match self.sink {
            Some(sink) => run_colocated_sink(&self.cfg, self.streams, &self.warmups, sink.as_ref()),
            None => run_colocated_warm(&self.cfg, self.streams, &self.warmups),
        }
    }
}

impl std::fmt::Debug for SimJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimJob")
            .field("cfg", &self.cfg)
            .field("streams", &self.streams.len())
            .field("warmups", &self.warmups)
            .field("sink", &self.sink.is_some())
            .field("shards", &self.shards)
            .finish()
    }
}

/// A re-windable job specification: a deterministic factory that
/// builds a fresh [`SimJob`] on every call.
///
/// [`SimJob::run`] consumes its streams, so a job can execute exactly
/// once — fine for materialized `Arc<[Access]>` replays (cloning the
/// job is a refcount bump) but wrong for streamed sources, whose
/// generators are consumed by running. A `JobSpec` captures *how to
/// build* the job instead: every [`JobSpec::build`] rebuilds NFs,
/// workload generators, and engine config from their seeds, so the same
/// logical run can execute serially, in parallel, and sharded — the
/// serial≡parallel≡sharded differentials — with each execution
/// bit-identical by construction.
pub struct JobSpec {
    make: Box<dyn Fn() -> SimJob + Send + Sync>,
}

impl JobSpec {
    /// Wrap a deterministic job factory (same call, same job — seeded
    /// generation, no ambient randomness).
    pub fn new(make: impl Fn() -> SimJob + Send + Sync + 'static) -> JobSpec {
        JobSpec {
            make: Box::new(make),
        }
    }

    /// Build a fresh, runnable job.
    pub fn build(&self) -> SimJob {
        (self.make)()
    }

    /// Build and run one instance of the job.
    pub fn run(&self) -> RunOutcome {
        self.build().run()
    }

    /// Build and run one instance with the shard count overridden —
    /// the sharded leg of a determinism differential.
    pub fn run_with_shards(&self, shards: usize) -> RunOutcome {
        self.build().with_shards(shards).run()
    }
}

impl std::fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JobSpec(..)")
    }
}

/// Run every spec once, dispatching on [`Exec`]; outcomes come back in
/// input order. The specs survive the run and can execute again.
pub fn run_specs(specs: &[JobSpec], exec: Exec) -> Vec<RunOutcome> {
    match exec {
        Exec::Serial => specs.iter().map(JobSpec::run).collect(),
        Exec::Parallel => par_map(specs.iter().collect(), JobSpec::run),
    }
}

/// Whether `cfg` guarantees per-tenant independence: a partitioned L2
/// (static ways or SecDCP) together with the epoch-partitioned temporal
/// bus. Under those disciplines a tenant's cache slice, bus windows,
/// and address-space tag are functions of its id alone, so its
/// simulated outcome cannot depend on co-tenant activity — which is
/// exactly what makes [`run_sharded`] legal. A shared L2 or FCFS bus
/// couples tenants through LRU state and queueing order, so those runs
/// must stay on the serial interleaving engine.
pub fn shardable(cfg: &MachineConfig) -> bool {
    !matches!(cfg.l2_partition, Partition::Shared) && matches!(cfg.bus, BusKind::Temporal { .. })
}

/// Shard one colocation run across up to `shards` worker threads,
/// without telemetry. See [`run_sharded_sink`].
pub fn run_sharded(
    cfg: &MachineConfig,
    streams: Vec<SendStream>,
    warmups: &[u64],
    shards: usize,
) -> RunOutcome {
    run_sharded_sink(cfg, streams, warmups, shards, None)
}

/// Shard one colocation run: split the tenant list into `shards`
/// contiguous chunks, simulate each chunk on the worker pool with the
/// tenants' *global* ids (way slice, bus epoch slot, telemetry domain,
/// address-space tag all follow the id, not the chunk position), and
/// reassemble per-tenant results in tenant order.
///
/// Requires a [`shardable`] configuration to actually fan out; anything
/// else falls back to the serial engine, as does `shards <= 1`. Either
/// way the outcome — and, with a live sink, the telemetry operation
/// stream — is bit-identical to the serial run: each shard buffers its
/// telemetry in a [`BufferSink`] and the buffers are replayed into the
/// real sink in shard order (`crates/bench/tests/shard_determinism.rs`
/// holds all of this bit-for-bit).
pub fn run_sharded_sink(
    cfg: &MachineConfig,
    streams: Vec<SendStream>,
    warmups: &[u64],
    shards: usize,
    sink: Option<&dyn TelemetrySink>,
) -> RunOutcome {
    let n = streams.len();
    let shards = shards.clamp(1, n.max(1));
    if shards <= 1 || !shardable(cfg) {
        return match sink {
            Some(s) => run_colocated_sink(cfg, streams, warmups, s),
            None => run_colocated_warm(cfg, streams, warmups),
        };
    }
    let warm: Vec<u64> = (0..n)
        .map(|i| warmups.get(i).copied().unwrap_or(0))
        .collect();
    // Contiguous tenant chunks [s*n/S, (s+1)*n/S), never empty.
    let mut parts: Vec<(usize, Vec<SendStream>)> = Vec::with_capacity(shards);
    let mut it = streams.into_iter();
    for s in 0..shards {
        let lo = s * n / shards;
        let hi = (s + 1) * n / shards;
        parts.push((lo, it.by_ref().take(hi - lo).collect()));
    }
    let live = sink.is_some_and(TelemetrySink::enabled);
    let results = par_map_on(parts, default_threads(), |(lo, chunk)| {
        let ids: Vec<u32> = (lo as u32..(lo + chunk.len()) as u32).collect();
        let w = &warm[lo..lo + chunk.len()];
        if live {
            let buf = BufferSink::new();
            let out = run_colocated_ids_sink(cfg, chunk, w, &ids, &buf);
            (out, Some(buf))
        } else {
            let out = run_colocated_ids_sink(cfg, chunk, w, &ids, &snic_telemetry::NullSink);
            (out, None)
        }
    });
    let mut nfs = Vec::with_capacity(n);
    for (out, buf) in results {
        nfs.extend(out.nfs);
        if let (Some(buf), Some(sink)) = (buf, sink) {
            // Shard order = tenant order: the real sink sees the exact
            // operation sequence of a serial run.
            buf.replay(&sink);
        }
    }
    RunOutcome { nfs }
}

/// Which execution strategy a sweep uses. The two must produce
/// bit-identical results; `Serial` exists so tests can prove it and so
/// debugging sessions can take the simple path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exec {
    /// Run jobs one after another on the calling thread.
    Serial,
    /// Fan jobs across the worker pool ([`default_threads`] workers).
    Parallel,
}

/// Worker count used by [`run_jobs`] and [`par_map`]:
/// `SNIC_SIM_THREADS` when set to a positive integer, else
/// [`std::thread::available_parallelism`], else 1.
pub fn default_threads() -> usize {
    std::env::var("SNIC_SIM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Run every job on the calling thread, in order.
pub fn run_jobs_serial(jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    jobs.into_iter().map(SimJob::run).collect()
}

/// Run jobs across [`default_threads`] workers; outcomes come back in
/// input order.
pub fn run_jobs(jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    run_jobs_on(jobs, default_threads())
}

/// Run jobs across exactly `threads` workers; outcomes come back in
/// input order.
pub fn run_jobs_on(jobs: Vec<SimJob>, threads: usize) -> Vec<RunOutcome> {
    par_map_on(jobs, threads, SimJob::run)
}

/// Dispatch on [`Exec`]: the serial path or the default pool.
pub fn execute(exec: Exec, jobs: Vec<SimJob>) -> Vec<RunOutcome> {
    match exec {
        Exec::Serial => run_jobs_serial(jobs),
        Exec::Parallel => run_jobs(jobs),
    }
}

/// Dispatch an arbitrary order-preserving map on [`Exec`]: the serial
/// path runs on the calling thread, the parallel path on the default
/// pool. Both produce identical result vectors.
pub fn map_exec<T, R, F>(exec: Exec, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    match exec {
        Exec::Serial => items.into_iter().map(f).collect(),
        Exec::Parallel => par_map(items, f),
    }
}

/// Apply `f` to every item using [`default_threads`] workers, returning
/// results in input order.
pub fn par_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    par_map_on(items, default_threads(), f)
}

/// Apply `f` to every item using exactly `threads` workers, returning
/// results in input order.
///
/// Work is pulled from a shared queue, so long and short items mix
/// freely without a static partition; the result of item `i` always
/// lands in slot `i`. With `threads <= 1` (or a single item) this is a
/// plain in-order map on the calling thread.
pub fn par_map_on<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let n = items.len();
    let queue: Mutex<VecDeque<(usize, T)>> = Mutex::new(items.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // A panicking sibling poisons the queue lock; recover the
                // guard so remaining workers drain what is left (the
                // panic still propagates out of the scope).
                let next = queue
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .pop_front();
                let Some((i, item)) = next else { break };
                let r = f(item);
                *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every queue index was drained by a worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_uarch::stream::SyntheticStream;

    fn job(seed: u64, tenants: usize) -> SimJob {
        let streams: Vec<SendStream> = (0..tenants)
            .map(|i| SyntheticStream::new(2 << 20, 8, 4, 4_000, seed + i as u64).into())
            .collect();
        SimJob::new(MachineConfig::commodity(tenants as u32, 1 << 20), streams)
            .with_warmups(vec![500; tenants])
    }

    #[test]
    fn pool_matches_serial_bitwise() {
        let serial = run_jobs_serial((0..12).map(|s| job(s, 2)).collect());
        for threads in [1, 2, 5, 32] {
            let pooled = run_jobs_on((0..12).map(|s| job(s, 2)).collect(), threads);
            assert_eq!(serial.len(), pooled.len());
            for (a, b) in serial.iter().zip(&pooled) {
                assert_eq!(a.nfs, b.nfs, "threads={threads}");
            }
        }
    }

    #[test]
    fn results_come_back_in_input_order() {
        // Jobs with wildly different lengths: if ordering followed
        // completion, the short job would finish first.
        let long = job(1, 4);
        let short = job(2, 1);
        let serial_long = job(1, 4).run();
        let serial_short = job(2, 1).run();
        let out = run_jobs_on(vec![long, short], 2);
        assert_eq!(out[0].nfs, serial_long.nfs);
        assert_eq!(out[1].nfs, serial_short.nfs);
    }

    #[test]
    fn par_map_preserves_order_and_values() {
        let items: Vec<u64> = (0..100).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 3, 8, 200] {
            assert_eq!(par_map_on(items.clone(), threads, |x| x * x), expect);
        }
        assert_eq!(par_map(items, |x| x * x), expect);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(run_jobs(Vec::new()).is_empty());
        assert!(par_map_on(Vec::<u32>::new(), 8, |x| x).is_empty());
    }

    #[test]
    fn execute_dispatches_both_paths() {
        let a = execute(Exec::Serial, vec![job(3, 2)]);
        let b = execute(Exec::Parallel, vec![job(3, 2)]);
        assert_eq!(a[0].nfs, b[0].nfs);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn sink_on_jobs_match_sink_off_bitwise() {
        use snic_telemetry::Recorder;
        let recorder = Arc::new(Recorder::new());
        let with_sink: Vec<SimJob> = (0..6)
            .map(|s| job(s, 2).with_sink(Arc::clone(&recorder) as Arc<dyn TelemetrySink>))
            .collect();
        let without: Vec<SimJob> = (0..6).map(|s| job(s, 2)).collect();
        let on = run_jobs_on(with_sink, 3);
        let off = run_jobs_serial(without);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.nfs, b.nfs, "sink-on parallel must equal sink-off serial");
        }
        assert!(
            !recorder.summary().is_empty(),
            "the shared sink saw the instrumented runs"
        );
    }

    #[test]
    fn shardable_requires_partitioned_l2_and_temporal_bus() {
        assert!(shardable(&MachineConfig::snic(4, 1 << 20)));
        assert!(shardable(&MachineConfig::snic_secdcp(vec![8, 8], 1 << 20)));
        assert!(!shardable(&MachineConfig::commodity(4, 1 << 20)));
        let mut half = MachineConfig::snic(4, 1 << 20);
        half.bus = snic_uarch::bus::BusKind::Fcfs;
        assert!(!shardable(&half), "partitioned L2 alone is not enough");
    }

    #[test]
    fn sharded_run_matches_serial_bitwise() {
        let mk = |n: usize| -> Vec<SendStream> {
            (0..n)
                .map(|i| SyntheticStream::new(1 << 18, 6, 3, 3_000, 99 + i as u64).into())
                .collect()
        };
        let cfg = MachineConfig::snic(5, 1 << 20);
        let warm = vec![400u64; 5];
        let serial = run_colocated_warm(&cfg, mk(5), &warm);
        for shards in [1, 2, 3, 5, 16] {
            let sharded = run_sharded(&cfg, mk(5), &warm, shards);
            assert_eq!(serial.nfs, sharded.nfs, "shards={shards}");
        }
    }

    #[test]
    fn unshardable_configs_fall_back_to_serial() {
        let mk = |n: usize| -> Vec<SendStream> {
            (0..n)
                .map(|i| SyntheticStream::new(1 << 18, 6, 0, 2_000, 7 + i as u64).into())
                .collect()
        };
        let cfg = MachineConfig::commodity(3, 1 << 20);
        let serial = run_colocated_warm(&cfg, mk(3), &[]);
        let sharded = run_sharded(&cfg, mk(3), &[], 3);
        assert_eq!(serial.nfs, sharded.nfs);
    }

    #[test]
    fn sharded_telemetry_replays_in_shard_order() {
        use snic_telemetry::Recorder;
        let mk = |n: usize| -> Vec<SendStream> {
            (0..n)
                .map(|i| SyntheticStream::new(1 << 18, 6, 3, 3_000, 42 + i as u64).into())
                .collect()
        };
        let cfg = MachineConfig::snic(4, 1 << 20);
        let serial_rec = Recorder::new();
        let serial = run_colocated_sink(&cfg, mk(4), &[], &serial_rec);
        let shard_rec = Recorder::new();
        let sharded = run_sharded_sink(&cfg, mk(4), &[], 2, Some(&shard_rec));
        assert_eq!(serial.nfs, sharded.nfs);
        assert_eq!(
            serial_rec.summary().render(),
            shard_rec.summary().render(),
            "telemetry must replay to an identical summary"
        );
    }

    #[test]
    fn job_with_shards_matches_plain_job() {
        let plain = job(11, 4);
        let mut cfg = MachineConfig::snic(4, 1 << 20);
        cfg.l2 = plain.cfg.l2;
        let mk = || -> Vec<SendStream> {
            (0..4)
                .map(|i| SyntheticStream::new(2 << 20, 8, 4, 4_000, 11 + i as u64).into())
                .collect()
        };
        let serial = SimJob::new(cfg.clone(), mk())
            .with_warmups(vec![500; 4])
            .run();
        let sharded = SimJob::new(cfg, mk())
            .with_warmups(vec![500; 4])
            .with_shards(4)
            .run();
        assert_eq!(serial.nfs, sharded.nfs);
    }

    #[test]
    fn job_spec_rebuilds_identical_runs() {
        let spec = JobSpec::new(|| job(17, 3));
        let first = spec.run();
        let second = spec.run();
        assert_eq!(first.nfs, second.nfs, "a spec must replay bit-identically");
    }

    #[test]
    fn job_spec_streamed_sources_survive_reruns_and_sharding() {
        // Streamed sources are consumed by running; the spec rebuilds
        // them, and the sharded leg must match the serial leg bitwise.
        let spec = JobSpec::new(|| {
            let streams: Vec<SendStream> = (0..4)
                .map(|i| {
                    snic_uarch::StreamedSource::with_chunk(
                        Box::new(SyntheticStream::new(1 << 18, 6, 3, 3_000, 21 + i as u64)),
                        2,
                        257,
                    )
                    .into()
                })
                .collect();
            SimJob::new(MachineConfig::snic(4, 1 << 20), streams).with_warmups(vec![300; 4])
        });
        let serial = spec.run();
        for shards in [2, 4] {
            assert_eq!(
                serial.nfs,
                spec.run_with_shards(shards).nfs,
                "shards={shards}"
            );
        }
        let both = run_specs(&[spec], Exec::Parallel);
        assert_eq!(both[0].nfs, serial.nfs);
    }

    #[test]
    fn map_exec_matches_across_paths() {
        let items: Vec<u64> = (0..50).collect();
        let a = map_exec(Exec::Serial, items.clone(), |x| x * 3 + 1);
        let b = map_exec(Exec::Parallel, items, |x| x * 3 + 1);
        assert_eq!(a, b);
    }
}
