//! The in-memory recording sink.

use std::sync::{Mutex, PoisonError};

use crate::sink::TelemetrySink;
use crate::summary::Summary;
use crate::trace::{Phase, TraceEvent};

#[derive(Debug, Default)]
struct Inner {
    summary: Summary,
    events: Vec<TraceEvent>,
}

/// A [`TelemetrySink`] that aggregates counters/histograms into a
/// [`Summary`] and appends every span/instant/counter event to an
/// in-order trace buffer.
///
/// Interior mutability lets one recorder be shared behind `Arc` by a
/// device and its ports/pools/banks. The mutex is uncontended in the
/// serial simulator and is only reached from hot loops when
/// `enabled()` is true, so it does not affect telemetry-off runs.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<Inner>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Snapshot of the aggregated counters and histograms.
    pub fn summary(&self) -> Summary {
        self.lock().summary.clone()
    }

    /// Snapshot of the recorded events, in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.clone()
    }

    /// Consume the recorder, returning its summary and events without
    /// cloning.
    pub fn into_parts(self) -> (Summary, Vec<TraceEvent>) {
        let inner = self
            .inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        (inner.summary, inner.events)
    }
}

impl TelemetrySink for Recorder {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, domain: u64, metric: &'static str, delta: u64) {
        let mut inner = self.lock();
        *inner
            .summary
            .counters
            .entry((domain, metric.to_string()))
            .or_insert(0) += delta;
    }

    fn record(&self, domain: u64, metric: &'static str, value: u64) {
        let mut inner = self.lock();
        inner
            .summary
            .hists
            .entry((domain, metric.to_string()))
            .or_default()
            .record(value);
    }

    fn merge_hist(&self, domain: u64, metric: &'static str, hist: &crate::hist::Histogram) {
        let mut inner = self.lock();
        inner
            .summary
            .hists
            .entry((domain, metric.to_string()))
            .or_default()
            .merge(hist);
    }

    fn span_begin(&self, domain: u64, name: &'static str, ts: u64) {
        self.lock().events.push(TraceEvent {
            phase: Phase::Begin,
            name: name.to_string(),
            domain,
            ts,
            value: 0,
        });
    }

    fn span_end(&self, domain: u64, name: &'static str, ts: u64) {
        self.lock().events.push(TraceEvent {
            phase: Phase::End,
            name: name.to_string(),
            domain,
            ts,
            value: 0,
        });
    }

    fn instant(&self, domain: u64, name: &'static str, ts: u64) {
        self.lock().events.push(TraceEvent {
            phase: Phase::Instant,
            name: name.to_string(),
            domain,
            ts,
            value: 0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::NullSink;

    #[test]
    fn records_counters_histograms_and_events() {
        let r = Recorder::new();
        r.counter_add(1, "nf.tx_sent", 2);
        r.counter_add(1, "nf.tx_sent", 3);
        r.record(1, "device.scrub_ps", 500);
        r.span_begin(1, "nf.launch", 10);
        r.span_end(1, "nf.launch", 20);
        r.instant(0, "fault.power_loss", 30);

        let (summary, events) = r.into_parts();
        assert_eq!(summary.counters[&(1, "nf.tx_sent".to_string())], 5);
        assert_eq!(
            summary.hists[&(1, "device.scrub_ps".to_string())].count(),
            1
        );
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[2].phase, Phase::Instant);
    }

    #[test]
    fn merge_hist_equals_per_sample_record() {
        let per_sample = Recorder::new();
        let batched = Recorder::new();
        let mut local = crate::hist::Histogram::new();
        for v in [0u64, 1, 7, 4096, 1 << 40] {
            per_sample.record(3, "uarch.bus_wait_cycles", v);
            local.record(v);
        }
        batched.merge_hist(3, "uarch.bus_wait_cycles", &local);
        assert_eq!(per_sample.summary(), batched.summary());
    }

    #[test]
    fn null_sink_is_disabled_and_inert() {
        let s = NullSink;
        assert!(!s.enabled());
        // Default bodies: calls are accepted and discard everything.
        s.counter_add(1, "x", 1);
        s.record(1, "x", 1);
        s.span_begin(1, "x", 1);
        s.span_end(1, "x", 2);
        s.instant(1, "x", 3);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = std::sync::Arc::new(Recorder::new());
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let r = std::sync::Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.counter_add(i, "t", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("join");
        }
        let summary = r.summary();
        for i in 0..4 {
            assert_eq!(summary.counters[&(i, "t".to_string())], 100);
        }
    }
}
