//! A small fixed-footprint histogram for simulated-time samples.

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i`
/// holds values in `[2^(i-1), 2^i)`, and the last bucket absorbs
/// everything above.
const BUCKETS: usize = 64;

/// Log2-bucketed histogram of `u64` samples with exact count/sum and
/// min/max. Deterministic: two runs that record the same multiset of
/// samples produce byte-identical renderings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
        }
    }

    /// Reconstruct a histogram from retained moments (the lossy text
    /// form keeps only count/sum/min/max). Bucket detail is gone: all
    /// samples land in the min bucket.
    pub fn from_moments(count: u64, sum: u64, min: u64, max: u64) -> Self {
        let mut h = Histogram::new();
        if count > 0 {
            h.count = count;
            h.sum = sum;
            h.min = min;
            h.max = max;
            h.buckets[Self::bucket_of(min)] = count;
        }
        h
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample value, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the q-quantile
    /// (`0.0 ..= 1.0`), an approximation good to a factor of two.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i.min(63) };
            }
        }
        self.max
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile_bound(0.5), 0);
    }

    #[test]
    fn records_track_count_sum_min_max() {
        let mut h = Histogram::new();
        for v in [0, 1, 7, 16, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1024);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn quantile_bound_brackets_the_median() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(100);
        }
        let b = h.quantile_bound(0.5);
        assert!((100..=256).contains(&b), "bound {b}");
    }

    #[test]
    fn merge_matches_recording_directly() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3, 9, 27] {
            a.record(v);
            all.record(v);
        }
        for v in [81, 243] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }
}
