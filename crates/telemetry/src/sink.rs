//! The [`TelemetrySink`] trait and its zero-cost no-op implementation.

/// Well-known metric names used by the instrumented crates.
///
/// Instrumentation passes `&'static str` metric names; keeping the
/// shared ones here prevents drift between the recorder, the summary
/// renderer and the call sites.
pub mod metrics {
    /// Retired instructions per NF domain (uarch engine).
    pub const INSNS: &str = "uarch.insns";
    /// Elapsed cycles per NF domain (uarch engine).
    pub const CYCLES: &str = "uarch.cycles";
    /// L1 cache hits (uarch engine).
    pub const L1_HITS: &str = "uarch.l1_hits";
    /// L1 cache misses (uarch engine).
    pub const L1_MISSES: &str = "uarch.l1_misses";
    /// L2 cache hits (uarch engine).
    pub const L2_HITS: &str = "uarch.l2_hits";
    /// L2 cache misses, i.e. DRAM accesses (uarch engine).
    pub const L2_MISSES: &str = "uarch.l2_misses";
    /// IO-bus grants issued to a domain (uarch engine).
    pub const BUS_GRANTS: &str = "uarch.bus_grants";
    /// IO-bus grants that had to wait behind other traffic — the
    /// "denied at first ask" count (uarch engine).
    pub const BUS_DELAYED: &str = "uarch.bus_delayed";
    /// Histogram of cycles a DRAM access waited for the bus: the DRAM
    /// queue depth seen by each request, in time units (uarch engine).
    pub const BUS_WAIT_CYCLES: &str = "uarch.bus_wait_cycles";
    /// Histogram of DRAM service latencies (uarch engine).
    pub const DRAM_CYCLES: &str = "uarch.dram_cycles";

    /// NF launches admitted by the device.
    pub const LAUNCHES: &str = "device.launches";
    /// NF teardowns completed by the device.
    pub const TEARDOWNS: &str = "device.teardowns";
    /// Attestation quotes served.
    pub const ATTESTS: &str = "device.attests";
    /// Packets arriving at the device RX port.
    pub const RX_PACKETS: &str = "device.rx_packets";
    /// Packets matched to this NF's flow filter.
    pub const RX_MATCHED: &str = "nf.rx_matched";
    /// Packets the NF drained from its RX queue.
    pub const RX_POLLED: &str = "nf.rx_polled";
    /// Packets the NF transmitted.
    pub const TX_SENT: &str = "nf.tx_sent";
    /// Accelerator jobs submitted by the NF.
    pub const ACCEL_SUBMITS: &str = "accel.submits";
    /// IO-bus operations issued by a flooding NF.
    pub const BUS_FLOOD_OPS: &str = "device.bus_flood_ops";
    /// Histogram of scrub latencies in picoseconds.
    pub const SCRUB_PS: &str = "device.scrub_ps";

    /// Bytes of port buffer reserved for a domain (pktio).
    pub const PORT_RESERVED_BYTES: &str = "pktio.port_reserved_bytes";
    /// Bytes of port buffer released by a domain (pktio).
    pub const PORT_RELEASED_BYTES: &str = "pktio.port_released_bytes";
    /// DMA transfers validated for a domain (pktio).
    pub const DMA_TRANSFERS: &str = "pktio.dma_transfers";
    /// Histogram of DMA transfer sizes in bytes (pktio).
    pub const DMA_BYTES: &str = "pktio.dma_bytes";

    /// Accelerator clusters allocated to a domain.
    pub const ACCEL_CLUSTERS: &str = "accel.clusters_allocated";
    /// Accelerator clusters released by a domain.
    pub const ACCEL_RELEASED: &str = "accel.clusters_released";
    /// Histogram of pool occupancy (busy clusters) sampled at each
    /// allocate/release, keyed by the management domain.
    pub const ACCEL_OCCUPANCY: &str = "accel.occupancy";
    /// Hardware cluster faults injected into the pool.
    pub const ACCEL_FAULTS: &str = "accel.cluster_faults";

    /// NF creations retried by the NIC-OS control loop.
    pub const NICOS_RETRIES: &str = "nicos.retries";
    /// Total attempts consumed by completed `nf_create` retry loops
    /// (successes and give-ups both count their attempts here).
    pub const NICOS_RETRY_ATTEMPTS: &str = "nicos.retry_attempts";
    /// Retry loops that gave up on a non-retryable error.
    pub const NICOS_GIVEUP_FATAL: &str = "nicos.giveup_fatal";
    /// Retry loops that exhausted their attempt budget.
    pub const NICOS_GIVEUP_BUDGET: &str = "nicos.giveup_budget";
    /// Retry loops cancelled because the next backoff would cross the
    /// request deadline.
    pub const NICOS_GIVEUP_DEADLINE: &str = "nicos.giveup_deadline";
    /// Histogram of applied (jittered) backoffs in picoseconds.
    pub const NICOS_BACKOFF_PS: &str = "nicos.backoff_ps";

    /// Requests admitted into a tenant queue by the serving daemon.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Requests shed at admission (overload, rate, draining).
    pub const SERVE_SHED: &str = "serve.shed";
    /// Requests dequeued and executed by the daemon.
    pub const SERVE_SERVED: &str = "serve.served";
    /// Queued requests cancelled because their deadline passed.
    pub const SERVE_EXPIRED: &str = "serve.expired";
    /// Tenant queues frozen by fault attribution.
    pub const SERVE_FROZEN: &str = "serve.frozen_tenants";
    /// Histogram of per-tenant queue depth sampled at each admission.
    pub const SERVE_QUEUE_DEPTH: &str = "serve.queue_depth";
}

/// Receiver for telemetry emitted by instrumented code.
///
/// All methods have empty default bodies, so a sink only implements
/// what it cares about. Implementations must be cheap and re-entrant:
/// hot loops call these under `if sink.enabled()` but cold paths may
/// call them unconditionally.
///
/// `domain` is the isolation domain the sample belongs to: `NfId.0`
/// for tenant work, `0` for the management plane. `ts` values are in
/// the caller's native simulated-time unit (picoseconds on the device,
/// cycles inside the uarch engine).
pub trait TelemetrySink: Send + Sync + std::fmt::Debug {
    /// Whether this sink records anything. Hot paths guard their
    /// instrumentation with this so a disabled sink costs one
    /// predictable branch.
    fn enabled(&self) -> bool;

    /// Add `delta` to the counter `metric` of `domain`.
    #[inline]
    fn counter_add(&self, domain: u64, metric: &'static str, delta: u64) {
        let _ = (domain, metric, delta);
    }

    /// Record `value` into the histogram `metric` of `domain`.
    #[inline]
    fn record(&self, domain: u64, metric: &'static str, value: u64) {
        let _ = (domain, metric, value);
    }

    /// Open a span named `name` for `domain` at simulated time `ts`.
    #[inline]
    fn span_begin(&self, domain: u64, name: &'static str, ts: u64) {
        let _ = (domain, name, ts);
    }

    /// Close the most recent span named `name` for `domain` at `ts`.
    #[inline]
    fn span_end(&self, domain: u64, name: &'static str, ts: u64) {
        let _ = (domain, name, ts);
    }

    /// Record a point-in-time event for `domain` at `ts`.
    #[inline]
    fn instant(&self, domain: u64, name: &'static str, ts: u64) {
        let _ = (domain, name, ts);
    }

    /// Fold a locally-accumulated histogram into `metric` of `domain`.
    ///
    /// Hot loops that would otherwise call [`record`](Self::record) per
    /// sample accumulate into a stack-local [`Histogram`] and flush it
    /// once with this method, paying the sink's synchronization cost a
    /// constant number of times per run instead of per sample.
    #[inline]
    fn merge_hist(&self, domain: u64, metric: &'static str, hist: &crate::hist::Histogram) {
        let _ = (domain, metric, hist);
    }
}

/// The always-off sink. `enabled()` is a constant `false`, so guarded
/// instrumentation folds away entirely under monomorphization; the
/// inherited no-op method bodies make even unguarded cold-path calls
/// free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

impl<T: TelemetrySink + ?Sized> TelemetrySink for &T {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }
    #[inline]
    fn counter_add(&self, domain: u64, metric: &'static str, delta: u64) {
        (**self).counter_add(domain, metric, delta);
    }
    #[inline]
    fn record(&self, domain: u64, metric: &'static str, value: u64) {
        (**self).record(domain, metric, value);
    }
    #[inline]
    fn span_begin(&self, domain: u64, name: &'static str, ts: u64) {
        (**self).span_begin(domain, name, ts);
    }
    #[inline]
    fn span_end(&self, domain: u64, name: &'static str, ts: u64) {
        (**self).span_end(domain, name, ts);
    }
    #[inline]
    fn instant(&self, domain: u64, name: &'static str, ts: u64) {
        (**self).instant(domain, name, ts);
    }
    #[inline]
    fn merge_hist(&self, domain: u64, metric: &'static str, hist: &crate::hist::Histogram) {
        (**self).merge_hist(domain, metric, hist);
    }
}
