//! A minimal JSON parser, sufficient to round-trip the trace exports.
//!
//! The workspace has no registry access, so there is no serde; traces
//! are emitted by hand-formatted writers and read back through this
//! recursive-descent parser. It accepts the JSON this crate produces
//! plus ordinary interchange JSON (nested values, escapes, floats).

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: byte offset and a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub what: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for JsonError {}

/// Parse a complete JSON document. Trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &'static str) -> JsonError {
        JsonError { at: self.pos, what }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &[u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writers; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Escape a string for embedding in a JSON document (adds no quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse_json(doc).expect("parse");
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Json::as_str),
            Some("x\ny")
        );
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn u64_round_trips_within_f64_precision() {
        let v = parse_json("9007199254740992").expect("parse");
        assert_eq!(v.as_u64(), Some(1u64 << 53));
    }

    #[test]
    fn escapes_round_trip() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        let doc = format!("\"{s}\"");
        assert_eq!(
            parse_json(&doc).expect("parse").as_str(),
            Some("a\"b\\c\nd\u{1}")
        );
    }
}
