//! Per-run summaries: rendered tables, a stable text format, and
//! run-vs-run diffs for `snicctl telemetry`.

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Aggregated per-domain statistics of one run. Keys are
/// `(domain, metric)`; `BTreeMap` keeps rendering deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Monotonic counters.
    pub counters: BTreeMap<(u64, String), u64>,
    /// Sample histograms.
    pub hists: BTreeMap<(u64, String), Histogram>,
}

/// One changed metric between two summaries (see [`Summary::diff`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SummaryDelta {
    /// Domain the metric belongs to.
    pub domain: u64,
    /// Metric name.
    pub metric: String,
    /// Value in the first run (`None` if absent).
    pub before: Option<u64>,
    /// Value in the second run (`None` if absent).
    pub after: Option<u64>,
}

impl Summary {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Value of one counter, defaulting to 0 when absent. Sinks only
    /// emit non-zero counters (e.g. `uarch.bus_delayed`), so absence
    /// and zero mean the same thing to a reader.
    pub fn counter(&self, domain: u64, metric: &str) -> u64 {
        self.counters
            .get(&(domain, metric.to_string()))
            .copied()
            .unwrap_or(0)
    }

    /// One histogram, if recorded.
    pub fn hist(&self, domain: u64, metric: &str) -> Option<&Histogram> {
        self.hists.get(&(domain, metric.to_string()))
    }

    /// Stable machine-readable text form, one metric per line:
    ///
    /// ```text
    /// # snic-telemetry summary v1
    /// counter <domain> <metric> <value>
    /// hist <domain> <metric> <count> <sum> <min> <max>
    /// ```
    pub fn to_text(&self) -> String {
        let mut out = String::from("# snic-telemetry summary v1\n");
        for ((domain, metric), value) in &self.counters {
            out.push_str(&format!("counter {domain} {metric} {value}\n"));
        }
        for ((domain, metric), h) in &self.hists {
            out.push_str(&format!(
                "hist {domain} {metric} {} {} {} {}\n",
                h.count(),
                h.sum(),
                h.min(),
                h.max()
            ));
        }
        out
    }

    /// Parse the format written by [`Summary::to_text`]. Histograms
    /// come back as count/sum/min/max only (buckets are not part of
    /// the text form); for diffing and rendering that is enough.
    pub fn from_text(text: &str) -> Result<Summary, String> {
        let mut s = Summary::default();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let parse =
                |f: &str| -> Result<u64, String> { f.parse().map_err(|_| bad_line(ln, line)) };
            match fields.as_slice() {
                ["counter", domain, metric, value] => {
                    s.counters
                        .insert((parse(domain)?, (*metric).to_string()), parse(value)?);
                }
                ["hist", domain, metric, count, sum, min, max] => {
                    let h = Histogram::from_moments(
                        parse(count)?,
                        parse(sum)?,
                        parse(min)?,
                        parse(max)?,
                    );
                    s.hists.insert((parse(domain)?, (*metric).to_string()), h);
                }
                _ => return Err(bad_line(ln, line)),
            }
        }
        Ok(s)
    }

    /// Human-readable table of every metric.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.counters.is_empty() && self.hists.is_empty() {
            out.push_str("(no telemetry recorded)\n");
            return out;
        }
        if !self.counters.is_empty() {
            out.push_str(&format!(
                "{:<8} {:<28} {:>16}\n",
                "domain", "counter", "value"
            ));
            for ((domain, metric), value) in &self.counters {
                out.push_str(&format!("{domain:<8} {metric:<28} {value:>16}\n"));
            }
        }
        if !self.hists.is_empty() {
            if !self.counters.is_empty() {
                out.push('\n');
            }
            out.push_str(&format!(
                "{:<8} {:<28} {:>10} {:>14} {:>10} {:>10}\n",
                "domain", "histogram", "count", "mean", "min", "max"
            ));
            for ((domain, metric), h) in &self.hists {
                out.push_str(&format!(
                    "{domain:<8} {metric:<28} {:>10} {:>14.1} {:>10} {:>10}\n",
                    h.count(),
                    h.mean(),
                    h.min(),
                    h.max()
                ));
            }
        }
        out
    }

    /// Compare two runs. Returns every metric whose value differs
    /// (counters by value; histograms by count and sum), in key order.
    pub fn diff(&self, other: &Summary) -> Vec<SummaryDelta> {
        let mut deltas = Vec::new();
        let keys: std::collections::BTreeSet<_> = self
            .counters
            .keys()
            .chain(other.counters.keys())
            .cloned()
            .collect();
        for key in keys {
            let before = self.counters.get(&key).copied();
            let after = other.counters.get(&key).copied();
            if before != after {
                deltas.push(SummaryDelta {
                    domain: key.0,
                    metric: key.1,
                    before,
                    after,
                });
            }
        }
        let hkeys: std::collections::BTreeSet<_> = self
            .hists
            .keys()
            .chain(other.hists.keys())
            .cloned()
            .collect();
        for key in hkeys {
            let b = self.hists.get(&key);
            let a = other.hists.get(&key);
            let moments = |h: Option<&Histogram>| h.map(|h| (h.count(), h.sum()));
            if moments(b) != moments(a) {
                deltas.push(SummaryDelta {
                    domain: key.0,
                    metric: format!("{}(count)", key.1),
                    before: b.map(Histogram::count),
                    after: a.map(Histogram::count),
                });
            }
        }
        deltas
    }

    /// Render a diff produced by [`Summary::diff`].
    pub fn render_diff(deltas: &[SummaryDelta]) -> String {
        if deltas.is_empty() {
            return "(no differences)\n".to_string();
        }
        let fmt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
        let mut out = format!(
            "{:<8} {:<28} {:>16} {:>16}\n",
            "domain", "metric", "before", "after"
        );
        for d in deltas {
            out.push_str(&format!(
                "{:<8} {:<28} {:>16} {:>16}\n",
                d.domain,
                d.metric,
                fmt(d.before),
                fmt(d.after)
            ));
        }
        out
    }
}

fn bad_line(ln: usize, line: &str) -> String {
    format!("malformed summary line {}: {line:?}", ln + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Summary {
        let mut s = Summary::default();
        s.counters.insert((0, "device.launches".into()), 2);
        s.counters.insert((1, "uarch.l2_misses".into()), 987);
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        s.hists.insert((1, "uarch.bus_wait_cycles".into()), h);
        s
    }

    #[test]
    fn text_round_trip_preserves_counters_and_moments() {
        let s = sample();
        let back = Summary::from_text(&s.to_text()).expect("parse");
        assert_eq!(back.counters, s.counters);
        let key = (1, "uarch.bus_wait_cycles".to_string());
        let (a, b) = (&s.hists[&key], &back.hists[&key]);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.sum(), b.sum());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
    }

    #[test]
    fn diff_reports_changed_added_removed() {
        let a = sample();
        let mut b = sample();
        b.counters.insert((1, "uarch.l2_misses".into()), 1000);
        b.counters.remove(&(0, "device.launches".into()));
        b.counters.insert((2, "nf.tx_sent".into()), 5);
        let deltas = a.diff(&b);
        assert_eq!(deltas.len(), 3);
        assert!(deltas.iter().any(|d| d.metric == "uarch.l2_misses"
            && d.before == Some(987)
            && d.after == Some(1000)));
        assert!(deltas
            .iter()
            .any(|d| d.metric == "device.launches" && d.after.is_none()));
        assert!(deltas
            .iter()
            .any(|d| d.metric == "nf.tx_sent" && d.before.is_none()));
    }

    #[test]
    fn identical_summaries_diff_empty() {
        assert!(sample().diff(&sample()).is_empty());
        assert_eq!(Summary::render_diff(&[]), "(no differences)\n");
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Summary::from_text("counter 0").is_err());
        assert!(Summary::from_text("counter x m 1").is_err());
        assert!(Summary::from_text("blah 1 2 3").is_err());
    }

    #[test]
    fn render_mentions_each_metric() {
        let text = sample().render();
        assert!(text.contains("device.launches"));
        assert!(text.contains("uarch.bus_wait_cycles"));
    }
}
