//! Workspace-wide observability for the S-NIC reproduction.
//!
//! Every simulation layer (device entry points, the microarchitectural
//! engine, packet IO, accelerators, the benches) reports what it does
//! through a [`TelemetrySink`]. The trait has three jobs:
//!
//! - **Per-domain accounting.** Counters and simulated-time histograms
//!   are keyed by a *domain* — `NfId.0` for tenant work, `0` for
//!   management-plane work — so isolation claims ("the victim's
//!   counters did not move") can be read straight off a run.
//! - **Event traces.** Span begin/end and instant events keyed by NF
//!   lifecycle phases and uarch pipeline stages, exportable as
//!   JSON-lines or Chrome-trace JSON (`chrome://tracing` / Perfetto).
//! - **Zero cost when off.** The no-op [`NullSink`] reports
//!   `enabled() == false` and every default method is an empty
//!   `#[inline]` body, so instrumentation guarded by
//!   `if sink.enabled()` compiles to nothing in the hot loops.
//!   Telemetry-off runs are byte-identical to uninstrumented runs —
//!   asserted by tests in `snic-sim` and `snic-bench`.
//!
//! The crate is std-only and dependency-free; timestamps are plain
//! `u64` in whatever unit the caller uses (picoseconds on the device,
//! cycles in the uarch engine — the `unit` field of the exported trace
//! records which).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod hist;
mod json;
mod recorder;
mod sink;
mod summary;
mod trace;

pub use buffer::BufferSink;
pub use hist::Histogram;
pub use json::{parse_json, Json, JsonError};
pub use recorder::Recorder;
pub use sink::{metrics, NullSink, TelemetrySink};
pub use summary::{Summary, SummaryDelta};
pub use trace::{parse_chrome_trace, parse_jsonl, to_chrome_trace, to_jsonl, Phase, TraceEvent};
