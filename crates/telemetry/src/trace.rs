//! Structured event traces and their exporters.
//!
//! Events use the Chrome trace event model: duration spans (`B`/`E`),
//! instants (`i`) and counter samples (`C`), each attributed to a
//! domain (rendered as the Chrome `tid`). Two exporters are provided —
//! JSON-lines (one event object per line, grep-friendly) and a Chrome
//! trace document loadable in `chrome://tracing` or Perfetto — plus
//! parsers that read both back for round-trip testing and the
//! `snicctl telemetry` commands.

use crate::json::{escape_into, parse_json, Json, JsonError};

/// The kind of a trace event, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`ph:"B"`).
    Begin,
    /// Span end (`ph:"E"`).
    End,
    /// Instant event (`ph:"i"`).
    Instant,
    /// Counter sample (`ph:"C"`).
    Counter,
}

impl Phase {
    fn ph(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }

    fn from_ph(ph: &str) -> Option<Phase> {
        match ph {
            "B" => Some(Phase::Begin),
            "E" => Some(Phase::End),
            "i" | "I" => Some(Phase::Instant),
            "C" => Some(Phase::Counter),
            _ => None,
        }
    }
}

/// One recorded event. `ts` is simulated time in the emitting layer's
/// unit; `value` is only meaningful for [`Phase::Counter`] samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event kind.
    pub phase: Phase,
    /// Event name, e.g. `"nf.launch"` or `"uarch.nf_run"`.
    pub name: String,
    /// Isolation domain (`NfId.0`, or 0 for the management plane).
    pub domain: u64,
    /// Simulated timestamp.
    pub ts: u64,
    /// Counter value for [`Phase::Counter`] events, else 0.
    pub value: u64,
}

fn write_event_obj(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, &e.name);
    out.push_str("\",\"cat\":\"snic\",\"ph\":\"");
    out.push_str(e.phase.ph());
    out.push_str("\",\"ts\":");
    out.push_str(&e.ts.to_string());
    out.push_str(",\"pid\":0,\"tid\":");
    out.push_str(&e.domain.to_string());
    match e.phase {
        Phase::Instant => out.push_str(",\"s\":\"t\""),
        Phase::Counter => {
            out.push_str(",\"args\":{\"value\":");
            out.push_str(&e.value.to_string());
            out.push('}');
        }
        _ => {}
    }
    out.push('}');
}

/// Render events as a complete Chrome trace document
/// (`chrome://tracing` / Perfetto "legacy JSON" format).
pub fn to_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_event_obj(&mut out, e);
    }
    out.push_str("\n]}\n");
    out
}

/// Render events as JSON-lines: one event object per line.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for e in events {
        write_event_obj(&mut out, e);
        out.push('\n');
    }
    out
}

fn event_from_json(v: &Json, at: usize) -> Result<TraceEvent, JsonError> {
    let bad = |what| JsonError { at, what };
    let phase = v
        .get("ph")
        .and_then(Json::as_str)
        .and_then(Phase::from_ph)
        .ok_or_else(|| bad("event missing a supported \"ph\""))?;
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("event missing \"name\""))?
        .to_string();
    let ts = v
        .get("ts")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("event missing integral \"ts\""))?;
    let domain = v
        .get("tid")
        .and_then(Json::as_u64)
        .ok_or_else(|| bad("event missing integral \"tid\""))?;
    let value = v
        .get("args")
        .and_then(|a| a.get("value"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    Ok(TraceEvent {
        phase,
        name,
        domain,
        ts,
        value,
    })
}

/// Parse a Chrome trace document (as produced by [`to_chrome_trace`],
/// or any document with a `traceEvents` array of compatible objects).
/// Events with an unsupported `ph` are skipped.
pub fn parse_chrome_trace(doc: &str) -> Result<Vec<TraceEvent>, JsonError> {
    let v = parse_json(doc)?;
    let events = match &v {
        Json::Arr(items) => items.as_slice(),
        _ => v
            .get("traceEvents")
            .and_then(Json::as_arr)
            .ok_or(JsonError {
                at: 0,
                what: "document has no \"traceEvents\" array",
            })?,
    };
    let mut out = Vec::with_capacity(events.len());
    for (i, e) in events.iter().enumerate() {
        if e.get("ph").and_then(Json::as_str).map(Phase::from_ph) == Some(None) {
            continue;
        }
        out.push(event_from_json(e, i)?);
    }
    Ok(out)
}

/// Parse JSON-lines events (as produced by [`to_jsonl`]). Blank lines
/// are skipped.
pub fn parse_jsonl(doc: &str) -> Result<Vec<TraceEvent>, JsonError> {
    let mut out = Vec::new();
    for (i, line) in doc.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = parse_json(line)?;
        out.push(event_from_json(&v, i)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                phase: Phase::Begin,
                name: "nf.launch".into(),
                domain: 1,
                ts: 10,
                value: 0,
            },
            TraceEvent {
                phase: Phase::End,
                name: "nf.launch".into(),
                domain: 1,
                ts: 90,
                value: 0,
            },
            TraceEvent {
                phase: Phase::Instant,
                name: "fault.power_loss".into(),
                domain: 0,
                ts: 120,
                value: 0,
            },
            TraceEvent {
                phase: Phase::Counter,
                name: "uarch.l2_misses".into(),
                domain: 3,
                ts: 200,
                value: 4242,
            },
        ]
    }

    #[test]
    fn chrome_trace_round_trips() {
        let events = sample_events();
        let doc = to_chrome_trace(&events);
        let back = parse_chrome_trace(&doc).expect("parse back");
        assert_eq!(back, events);
    }

    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let doc = to_jsonl(&events);
        assert_eq!(doc.lines().count(), events.len());
        let back = parse_jsonl(&doc).expect("parse back");
        assert_eq!(back, events);
    }

    #[test]
    fn chrome_trace_is_wellformed_json() {
        let doc = to_chrome_trace(&sample_events());
        let v = parse_json(&doc).expect("well-formed");
        assert!(v.get("traceEvents").is_some());
    }

    #[test]
    fn foreign_metadata_events_are_skipped() {
        let doc = r#"{"traceEvents":[
            {"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0},
            {"name":"x","ph":"B","ts":1,"pid":0,"tid":7}
        ]}"#;
        let back = parse_chrome_trace(doc).expect("parse");
        assert_eq!(back.len(), 1);
        assert_eq!(back[0].domain, 7);
    }
}
