//! A sink that buffers operations for deterministic later replay.

use std::sync::{Mutex, PoisonError};

use crate::hist::Histogram;
use crate::sink::TelemetrySink;

/// One buffered sink operation, stored exactly as it arrived.
#[derive(Debug, Clone)]
enum Op {
    CounterAdd(u64, &'static str, u64),
    Record(u64, &'static str, u64),
    SpanBegin(u64, &'static str, u64),
    SpanEnd(u64, &'static str, u64),
    Instant(u64, &'static str, u64),
    // Boxed: a Histogram is ~0.5 KiB and would dominate every Op.
    MergeHist(u64, &'static str, Box<Histogram>),
}

/// A [`TelemetrySink`] that records every operation in arrival order
/// and can [`replay`](BufferSink::replay) them into another sink later.
///
/// This is the glue that keeps *sharded* runs byte-identical to serial
/// ones: each shard reports into its own private `BufferSink` while
/// running concurrently, and the driver replays the buffers into the
/// real sink **in shard order** afterwards — so the real sink observes
/// the exact operation sequence a serial run would have produced, no
/// matter how the shards interleaved in wall-clock time.
#[derive(Debug, Default)]
pub struct BufferSink {
    ops: Mutex<Vec<Op>>,
}

impl BufferSink {
    /// An empty buffer.
    pub fn new() -> BufferSink {
        BufferSink::default()
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Re-issue every buffered operation into `sink`, in the order it
    /// was recorded. The buffer is left intact (replay is repeatable).
    pub fn replay<S: TelemetrySink + ?Sized>(&self, sink: &S) {
        let ops = self.ops.lock().unwrap_or_else(PoisonError::into_inner);
        for op in ops.iter() {
            match op {
                Op::CounterAdd(d, m, v) => sink.counter_add(*d, m, *v),
                Op::Record(d, m, v) => sink.record(*d, m, *v),
                Op::SpanBegin(d, n, ts) => sink.span_begin(*d, n, *ts),
                Op::SpanEnd(d, n, ts) => sink.span_end(*d, n, *ts),
                Op::Instant(d, n, ts) => sink.instant(*d, n, *ts),
                Op::MergeHist(d, m, h) => sink.merge_hist(*d, m, h),
            }
        }
    }

    fn push(&self, op: Op) {
        self.ops
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(op);
    }
}

impl TelemetrySink for BufferSink {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, domain: u64, metric: &'static str, delta: u64) {
        self.push(Op::CounterAdd(domain, metric, delta));
    }

    fn record(&self, domain: u64, metric: &'static str, value: u64) {
        self.push(Op::Record(domain, metric, value));
    }

    fn span_begin(&self, domain: u64, name: &'static str, ts: u64) {
        self.push(Op::SpanBegin(domain, name, ts));
    }

    fn span_end(&self, domain: u64, name: &'static str, ts: u64) {
        self.push(Op::SpanEnd(domain, name, ts));
    }

    fn instant(&self, domain: u64, name: &'static str, ts: u64) {
        self.push(Op::Instant(domain, name, ts));
    }

    fn merge_hist(&self, domain: u64, metric: &'static str, hist: &Histogram) {
        self.push(Op::MergeHist(domain, metric, Box::new(hist.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;

    #[test]
    fn replay_reproduces_the_recorded_stream() {
        let buf = BufferSink::new();
        assert!(buf.is_empty());
        buf.counter_add(1, "uarch.insns", 10);
        buf.record(2, "uarch.dram_cycles", 110);
        buf.span_begin(1, "phase", 5);
        buf.span_end(1, "phase", 9);
        buf.instant(3, "tick", 7);
        let mut h = Histogram::new();
        h.record(4);
        h.record(900);
        buf.merge_hist(2, "uarch.bus_wait_cycles", &h);
        assert_eq!(buf.len(), 6);

        // Direct emission and buffered replay must render identically.
        let direct = Recorder::new();
        direct.counter_add(1, "uarch.insns", 10);
        direct.record(2, "uarch.dram_cycles", 110);
        direct.span_begin(1, "phase", 5);
        direct.span_end(1, "phase", 9);
        direct.instant(3, "tick", 7);
        direct.merge_hist(2, "uarch.bus_wait_cycles", &h);

        let replayed = Recorder::new();
        buf.replay(&replayed);
        assert_eq!(replayed.summary().render(), direct.summary().render());

        // Replay is repeatable: the buffer is not drained.
        let again = Recorder::new();
        buf.replay(&again);
        assert_eq!(again.summary().render(), direct.summary().render());
    }
}
