//! The commodity-vs-S-NIC containment invariants, stated once.
//!
//! The blast-radius experiment's claim is differential: the *same*
//! injected fault that leaks across tenants on a commodity NIC is
//! contained by S-NIC's trusted instructions. The assertions below are
//! the reusable statement of that claim, shared by the unit tests in
//! [`crate::blast`], the end-to-end determinism suite
//! (`tests/fault_determinism.rs`) and the golden-snapshot harness —
//! so every layer checks the identical invariant instead of each
//! hand-rolling its own subset.

use crate::blast::{DeviceDiff, FaultScenario, ScenarioOutcome, UarchDiff};

/// Device-layer invariant under S-NIC: the victim's observables are
/// bit-identical across the fault, the recycled region scrubs to
/// zeros, and the fault transcript lints clean under Pass 3.
pub fn assert_snic_device_contained(scenario: FaultScenario, snic: &DeviceDiff) {
    assert!(
        snic.victim_intact,
        "S-NIC/{}: victim observables perturbed",
        scenario.name()
    );
    assert!(
        snic.residue_clean,
        "S-NIC/{}: recycled region not zeroed",
        scenario.name()
    );
    assert!(
        snic.findings.is_empty(),
        "S-NIC/{}: transcript should lint clean: {:?}\n{}",
        scenario.name(),
        snic.findings,
        snic.transcript
    );
}

/// Device-layer invariant on the commodity personality: the fault is
/// *visible* to Pass 3 — every scenario produces at least one finding
/// (tenant faults propagate; even management-plane faults expose the
/// scrub-free teardown as unscrubbed reuse).
pub fn assert_commodity_device_leaks(scenario: FaultScenario, commodity: &DeviceDiff) {
    assert!(
        !commodity.findings.is_empty(),
        "commodity/{}: transcript should lint dirty:\n{}",
        scenario.name(),
        commodity.transcript
    );
}

/// Microarchitectural invariant: the victim's `NfRunStats` are
/// bit-identical across the fault under S-NIC (partitioned L2,
/// per-tenant bus slots) and perturbed on the commodity machine
/// (shared L2, FCFS bus).
pub fn assert_uarch_contained(scenario: FaultScenario, uarch: &UarchDiff) {
    assert!(
        uarch.snic_bit_identical,
        "{}: S-NIC victim stats changed across the fault (Δ {:+.4}%)",
        scenario.name(),
        uarch.snic_delta_pct
    );
    assert!(
        !uarch.commodity_bit_identical,
        "{}: commodity victim stats unexpectedly unchanged",
        scenario.name()
    );
}

/// The full differential contract for one matrix row: S-NIC contained
/// at both layers, commodity leaking at both layers.
pub fn assert_blast_invariants(row: &ScenarioOutcome) {
    assert_snic_device_contained(row.scenario, &row.device_snic);
    assert_commodity_device_leaks(row.scenario, &row.device_commodity);
    assert_uarch_contained(row.scenario, &row.uarch);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blast::device_differential;
    use snic_core::config::NicMode;

    #[test]
    #[should_panic(expected = "victim observables perturbed")]
    fn snic_assertion_rejects_commodity_diff() {
        // The commodity NfCrash diff leaks by construction; feeding it
        // to the S-NIC invariant must trip the assertion.
        let c = device_differential(NicMode::Commodity, FaultScenario::NfCrash);
        assert_snic_device_contained(FaultScenario::NfCrash, &c);
    }

    #[test]
    #[should_panic(expected = "should lint dirty")]
    fn commodity_assertion_rejects_snic_diff() {
        let s = device_differential(NicMode::Snic, FaultScenario::NfCrash);
        assert_commodity_device_leaks(FaultScenario::NfCrash, &s);
    }
}
