//! Figure 8: DPI accelerator throughput vs. cluster size and frame size.
//!
//! "We show results for cluster sizes of 16, 32, and 48 ... 1.5KB is the
//! maximum size of a standard Ethernet frame, while 9KB is the maximum
//! size of a jumbo frame. The high-level takeaway is that, as packet
//! sizes grow, the per-packet processing costs increase and a function
//! benefits from access to more hardware threads."

use snic_accel::dpi::{DpiAccel, DpiAccelConfig};
use snic_nf::dpi::synth_patterns;

use crate::Scale;

/// Thread counts on the x-axis.
pub const THREADS: [u32; 3] = [16, 32, 48];
/// Frame sizes (bytes) of the four series.
pub const FRAMES: [usize; 4] = [64, 512, 1500, 9000];

/// Measured throughput matrix: `rows[f][t]` in Mpps for frame `FRAMES[f]`
/// and thread count `THREADS[t]`.
///
/// The twelve `(frame, threads)` cells are independent closed-form
/// evaluations over one shared accelerator, fanned across the worker
/// pool per frame-size row.
pub fn run(scale: &Scale) -> Vec<Vec<f64>> {
    let accel = DpiAccel::new(
        &synth_patterns(scale.patterns, 0xf18),
        DpiAccelConfig::default(),
    );
    snic_sim::par_map(FRAMES.to_vec(), |frame| {
        THREADS
            .iter()
            .map(|&t| accel.throughput_pps(t, frame) / 1e6)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_figure8() {
        let m = run(&Scale::quick());
        // 64B: flat near the frontend cap (~1.15 Mpps).
        assert!(
            (m[0][0] - m[0][2]).abs() < 0.01,
            "64B should be flat: {:?}",
            m[0]
        );
        assert!(m[0][0] > 1.0);
        // 9KB: scales with threads and never reaches the cap.
        assert!(m[3][2] > 2.5 * m[3][0], "9KB should scale: {:?}", m[3]);
        assert!(m[3][2] < m[0][0]);
        // For every thread count, larger frames are slower in pps.
        for f in 1..FRAMES.len() {
            for (cur, prev) in m[f].iter().zip(&m[f - 1]) {
                assert!(*cur <= *prev + 1e-9);
            }
        }
    }
}
