//! Figure 6: trusted-instruction execution latency per NF.
//!
//! Launch each evaluation NF on an S-NIC sized to its Table 6 memory
//! profile and report the latency breakdowns of `nf_launch` and
//! `nf_destroy` (plus `nf_attest`, which is size-independent).

use rand::SeedableRng;
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchLatency, LaunchRequest, NfImage, TeardownLatency};
use snic_crypto::keys::VendorCa;
use snic_nf::{paper_profile, NfKind};
use snic_types::{ByteSize, CoreId};

/// One NF's measured instruction latencies.
#[derive(Debug, Clone)]
pub struct InstrLatencies {
    /// Which NF.
    pub kind: NfKind,
    /// Memory footprint used for the launch.
    pub memory: ByteSize,
    /// `nf_launch` breakdown.
    pub launch: LaunchLatency,
    /// `nf_teardown` breakdown.
    pub teardown: TeardownLatency,
}

/// Run the experiment for all six NFs.
///
/// Each NF launches on its own freshly built device, so the six
/// measurements are independent and fan across the worker pool; the
/// result order still follows [`NfKind::ALL`].
pub fn run() -> Vec<InstrLatencies> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xf16);
    let vendor = VendorCa::new(&mut rng);
    snic_sim::par_map(NfKind::ALL.to_vec(), |kind| {
        let memory = paper_profile(kind).total();
        let mut nic = SmartNic::new(
            NicConfig {
                dram: ByteSize::gib(2),
                ..NicConfig::small(NicMode::Snic)
            },
            &vendor,
        );
        let receipt = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                memory,
                NfImage {
                    code: vec![0x90; 4096],
                    config: vec![0x42; 1024],
                },
            ))
            .expect("launch");
        let teardown = nic.nf_teardown(receipt.nf_id).expect("teardown");
        InstrLatencies {
            kind,
            memory,
            launch: receipt.latency,
            teardown: teardown.latency,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_dominates_both_instructions() {
        let rows = run();
        let mon = rows.iter().find(|r| r.kind == NfKind::Monitor).unwrap();
        let lb = rows
            .iter()
            .find(|r| r.kind == NfKind::LoadBalancer)
            .unwrap();
        assert!(mon.launch.total().0 > 10 * lb.launch.total().0);
        assert!(mon.launch.sha_digest > lb.launch.sha_digest);
        assert!(mon.teardown.scrub > lb.teardown.scrub);
    }

    #[test]
    fn launch_latencies_match_appendix_c() {
        let rows = run();
        // LB: digest ≈ 29.62 ms, total launch well under 50 ms.
        let lb = rows
            .iter()
            .find(|r| r.kind == NfKind::LoadBalancer)
            .unwrap();
        let digest_ms = lb.launch.sha_digest.as_millis_f64();
        assert!((digest_ms - 29.62).abs() < 1.0, "{digest_ms} ms");
        // Monitor: digest ≈ 763 ms, scrub ≈ 54 ms.
        let mon = rows.iter().find(|r| r.kind == NfKind::Monitor).unwrap();
        assert!((mon.launch.sha_digest.as_millis_f64() - 763.52).abs() < 15.0);
        assert!((mon.teardown.scrub.as_millis_f64() - 54.23).abs() < 4.0);
    }

    #[test]
    fn fixed_costs_are_size_independent() {
        let rows = run();
        for w in rows.windows(2) {
            assert_eq!(w[0].launch.tlb_setup, w[1].launch.tlb_setup);
            assert_eq!(w[0].launch.denylisting, w[1].launch.denylisting);
            assert_eq!(w[0].teardown.allowlisting, w[1].teardown.allowlisting);
        }
    }
}
