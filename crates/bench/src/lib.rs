//! Experiment harness shared by the per-table/per-figure binaries and
//! the Criterion benches.
//!
//! Every binary prints the same rows/series the paper reports; the
//! `all_experiments` binary runs the lot and appends a summary suitable
//! for EXPERIMENTS.md. Scale is controlled by [`Scale`]: `quick` (CI
//! friendly) vs `paper` (full workload sizes); binaries accept `--full`
//! to select the latter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod colo;
pub mod differential;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod golden;
pub mod perf;
pub mod streams;
pub mod tables;
pub mod telemetry;

use std::fmt::Write as _;

/// Workload scale for experiments.
///
/// `Hash` because a scale (plus a seed) keys the memoized trace cache
/// in [`streams::all_traces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scale {
    /// Distinct flows in the ICTF-like pool.
    pub flows: usize,
    /// Packets per NF used to record reference streams.
    pub packets: usize,
    /// DPI pattern count.
    pub patterns: usize,
    /// Firewall rules.
    pub fw_rules: usize,
    /// LPM prefixes.
    pub lpm_prefixes: usize,
    /// Monitor trace duration in milliseconds.
    pub monitor_ms: u64,
}

impl Scale {
    /// Fast scale for tests and smoke runs.
    pub fn quick() -> Scale {
        Scale {
            flows: 14_000,
            packets: 10_000,
            patterns: 1_500,
            fw_rules: 643,
            lpm_prefixes: 4_000,
            monitor_ms: 150,
        }
    }

    /// The paper's workload sizes (§5.1).
    pub fn paper() -> Scale {
        Scale {
            flows: 100_000,
            packets: 60_000,
            patterns: 33_471,
            fw_rules: 643,
            lpm_prefixes: 16_000,
            monitor_ms: 2_000,
        }
    }

    /// Parse from CLI args: `--full` selects [`Scale::paper`].
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full") {
            Scale::paper()
        } else {
            Scale::quick()
        }
    }
}

/// Render a table with a header row.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |cells: &[String], widths: &[usize]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
        }
        s.trim_end().to_string()
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", line(&header_cells, &widths));
    for row in rows {
        let _ = writeln!(out, "{}", line(row, &widths));
    }
    out
}

/// Median of a float slice (panics on empty input).
pub fn median(values: &mut [f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Percentile (0–100) of a float slice.
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let idx = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
    values[idx.min(values.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_bounds() {
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&mut v, 0.0), 1.0);
        assert_eq!(percentile(&mut v, 100.0), 5.0);
        assert_eq!(percentile(&mut v, 50.0), 3.0);
    }

    #[test]
    fn table_renders_aligned() {
        let s = render_table("T", &["a", "long"], &[vec!["1".into(), "2".into()]]);
        assert!(s.contains("== T =="));
        assert!(s.contains("long"));
    }

    #[test]
    fn scales_differ() {
        assert!(Scale::paper().flows > Scale::quick().flows);
    }
}
