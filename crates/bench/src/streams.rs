//! Reference-stream recording: run each NF over an ICTF-like trace and
//! capture its memory accesses (the Figure 5 workload, §5.3).
//!
//! Recordings are expensive (each one drives a full NF over thousands
//! of packets) and every figure/bench/test replays the *same* streams,
//! so [`all_traces`] records the six kinds in parallel and memoizes the
//! result per `(scale, seed)`: bench bins, `fig5`, the ablation, and
//! the paper-claims tests all share one immutable [`SharedTrace`] per
//! NF instead of regenerating and recloning it.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use snic_nf::{build, record_stream, NfKind};
use snic_trace::{IctfConfig, IctfLikeTrace};
use snic_types::Packet;
use snic_uarch::stream::Access;

use crate::Scale;

/// One NF's recorded reference stream, shareable across runs and
/// worker threads without copying.
pub type SharedTrace = Arc<[Access]>;

/// The six NF recordings at one `(scale, seed)`, in [`NfKind::ALL`]
/// order.
pub type TraceSet = Arc<[(NfKind, SharedTrace)]>;

/// Generate the packet workload shared by all NFs at this scale.
pub fn workload(scale: &Scale, seed: u64) -> Vec<Packet> {
    let mut trace = IctfLikeTrace::new(IctfConfig {
        flows: scale.flows,
        theta: 1.1,
        mean_payload: 256,
        signature_rate: 0.02,
        patterns: snic_nf::dpi::synth_patterns(16, seed ^ 0x77),
        seed,
    });
    (0..scale.packets).map(|_| trace.next_packet()).collect()
}

/// Build the NF at this scale (smaller structures than `with_defaults`
/// when the scale asks for it).
pub fn build_scaled(kind: NfKind, scale: &Scale, seed: u64) -> Box<dyn snic_nf::NetworkFunction> {
    match kind {
        NfKind::Dpi => Box::new(snic_nf::DpiNf::new(&snic_nf::dpi::synth_patterns(
            scale.patterns,
            seed,
        ))),
        NfKind::Firewall => Box::new(snic_nf::FirewallNf::new(
            snic_nf::firewall::synth_rules(scale.fw_rules, seed),
            200_000,
        )),
        NfKind::Lpm => Box::new(snic_nf::LpmNf::new(&snic_nf::lpm::synth_prefixes(
            scale.lpm_prefixes,
            seed,
        ))),
        other => build(other, seed),
    }
}

/// Record the reference stream of one NF kind over the shared workload.
pub fn nf_access_trace(kind: NfKind, scale: &Scale, seed: u64) -> Vec<Access> {
    let mut nf = build_scaled(kind, scale, seed);
    let packets = workload(scale, seed ^ kind as u64 ^ 0x5eed);
    record_stream(nf.as_mut(), &packets)
}

/// Record streams for all six kinds, in parallel, memoized per
/// `(scale, seed)`.
///
/// The first call at a given key fans the six recordings across the
/// worker pool and caches the resulting [`TraceSet`]; later calls —
/// from other figure modules, bench bins, or test binaries in the same
/// process — get the cached set for the cost of one `Arc` clone.
/// Recording is deterministic per key, so a racing duplicate compute
/// produces an identical set and either copy may win the cache slot.
pub fn all_traces(scale: &Scale, seed: u64) -> TraceSet {
    static CACHE: OnceLock<Mutex<HashMap<(Scale, u64), TraceSet>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(hit) = cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&(*scale, seed))
    {
        return Arc::clone(hit);
    }
    // Record outside the lock so a slow first recording never blocks an
    // unrelated key.
    let recorded: TraceSet = snic_sim::par_map(NfKind::ALL.to_vec(), |k| {
        (k, SharedTrace::from(nf_access_trace(k, scale, seed)))
    })
    .into();
    Arc::clone(
        cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry((*scale, seed))
            .or_insert(recorded),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            flows: 300,
            packets: 400,
            patterns: 100,
            fw_rules: 50,
            lpm_prefixes: 200,
            monitor_ms: 20,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = workload(&tiny(), 7);
        let b = workload(&tiny(), 7);
        assert_eq!(a.len(), 400);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[399], b[399]);
    }

    #[test]
    fn every_kind_produces_a_stream() {
        for kind in NfKind::ALL {
            let t = nf_access_trace(kind, &tiny(), 3);
            assert!(!t.is_empty(), "{kind:?} produced no accesses");
            assert!(t.iter().all(|a| a.insns >= 1));
        }
    }

    #[test]
    fn all_traces_memoizes_per_key() {
        let a = all_traces(&tiny(), 11);
        let b = all_traces(&tiny(), 11);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = all_traces(&tiny(), 12);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different set");
        // The cached set matches a direct recording, kind for kind.
        for (kind, trace) in a.iter() {
            assert_eq!(trace.as_ref(), nf_access_trace(*kind, &tiny(), 11));
        }
    }

    #[test]
    fn dpi_stream_longest_monitor_compact() {
        // DPI walks payload bytes; the monitor touches a couple of
        // addresses per packet.
        let dpi = nf_access_trace(NfKind::Dpi, &tiny(), 3).len();
        let mon = nf_access_trace(NfKind::Monitor, &tiny(), 3).len();
        assert!(dpi > 3 * mon, "dpi {dpi} vs mon {mon}");
    }
}
