//! Reference-stream recording: run each NF over an ICTF-like trace and
//! capture its memory accesses (the Figure 5 workload, §5.3).
//!
//! Recordings are expensive (each one drives a full NF over thousands
//! of packets) and every figure/bench/test replays the *same* streams,
//! so [`all_traces`] records the six kinds in parallel and memoizes the
//! result per `(scale, seed)`: bench bins, `fig5`, the ablation, and
//! the paper-claims tests all share one immutable [`SharedTrace`] per
//! NF instead of regenerating and recloning it.

use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use snic_nf::{build, record_stream_iter, NfKind, StreamingRecorder};
use snic_trace::{IctfConfig, IctfLikeTrace};
use snic_types::Packet;
use snic_uarch::stream::Access;
use snic_uarch::{EventSource, StreamedSource, TraceSource};

use crate::Scale;

/// One NF's recorded reference stream, shareable across runs and
/// worker threads without copying.
pub type SharedTrace = Arc<[Access]>;

/// The six NF recordings at one `(scale, seed)`, in [`NfKind::ALL`]
/// order.
pub type TraceSet = Arc<[(NfKind, SharedTrace)]>;

/// The lazy packet workload shared by all NFs at this scale: packets
/// are built one at a time as the consumer pulls, so streaming callers
/// never hold `scale.packets` packets resident. `collect()` recovers
/// the old materialized `Vec<Packet>` where a slice is genuinely
/// needed.
#[derive(Debug)]
pub struct WorkloadIter {
    trace: IctfLikeTrace,
    remaining: usize,
}

impl Iterator for WorkloadIter {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.trace.next_packet())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for WorkloadIter {}

/// Generate the packet workload shared by all NFs at this scale,
/// lazily.
pub fn workload(scale: &Scale, seed: u64) -> WorkloadIter {
    let trace = IctfLikeTrace::new(IctfConfig {
        flows: scale.flows,
        theta: 1.1,
        mean_payload: 256,
        signature_rate: 0.02,
        patterns: snic_nf::dpi::synth_patterns(16, seed ^ 0x77),
        seed,
    });
    WorkloadIter {
        trace,
        remaining: scale.packets,
    }
}

/// Build the NF at this scale (smaller structures than `with_defaults`
/// when the scale asks for it).
pub fn build_scaled(kind: NfKind, scale: &Scale, seed: u64) -> Box<dyn snic_nf::NetworkFunction> {
    match kind {
        NfKind::Dpi => Box::new(snic_nf::DpiNf::new(&snic_nf::dpi::synth_patterns(
            scale.patterns,
            seed,
        ))),
        NfKind::Firewall => Box::new(snic_nf::FirewallNf::new(
            snic_nf::firewall::synth_rules(scale.fw_rules, seed),
            200_000,
        )),
        NfKind::Lpm => Box::new(snic_nf::LpmNf::new(&snic_nf::lpm::synth_prefixes(
            scale.lpm_prefixes,
            seed,
        ))),
        other => build(other, seed),
    }
}

/// Record the reference stream of one NF kind over the shared workload.
pub fn nf_access_trace(kind: NfKind, scale: &Scale, seed: u64) -> Vec<Access> {
    let mut nf = build_scaled(kind, scale, seed);
    record_stream_iter(nf.as_mut(), workload(scale, seed ^ kind as u64 ^ 0x5eed))
}

/// Stream one NF kind's reference trace without materializing it: the
/// NF regenerates its accesses packet by packet, and `rewind` rebuilds
/// the NF + workload from their seeds, so multi-pass replays are
/// bit-identical to replaying the [`nf_access_trace`] recording.
pub fn nf_trace_source(kind: NfKind, scale: &Scale, seed: u64) -> Box<dyn TraceSource> {
    let scale = *scale;
    Box::new(StreamingRecorder::new(
        move || build_scaled(kind, &scale, seed),
        move || workload(&scale, seed ^ kind as u64 ^ 0x5eed),
    ))
}

/// An engine-ready streamed source for one NF kind: `passes` rewound
/// replays of [`nf_trace_source`] in O(chunk) resident memory — the
/// drop-in streaming counterpart of wrapping a [`SharedTrace`] in
/// `SharedReplayStream::repeated`.
pub fn streamed_nf_source(kind: NfKind, scale: &Scale, seed: u64, passes: u32) -> EventSource {
    StreamedSource::repeated(nf_trace_source(kind, scale, seed), passes).into()
}

/// A bounded most-recently-used trace cache. Small and linear — the
/// figure pipelines touch a handful of keys, so a capacity of a few
/// entries keeps every hot key resident while long processes (snicd
/// soaks, `all_experiments`) can no longer accumulate every trace set
/// ever generated.
struct TraceCache {
    entries: Vec<((Scale, u64), TraceSet)>,
    cap: usize,
}

impl TraceCache {
    fn new(cap: usize) -> TraceCache {
        TraceCache {
            entries: Vec::new(),
            cap: cap.max(1),
        }
    }

    /// Look up a key, refreshing its recency on hit.
    fn get(&mut self, key: &(Scale, u64)) -> Option<TraceSet> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(idx);
        let hit = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(hit)
    }

    /// Insert (or re-fetch) a key, evicting the least-recently-used
    /// entry beyond capacity. If a racing compute already filled the
    /// slot, the incumbent wins so hot callers keep their pointer.
    fn insert(&mut self, key: (Scale, u64), set: TraceSet) -> TraceSet {
        if let Some(existing) = self.get(&key) {
            return existing;
        }
        self.entries.push((key, Arc::clone(&set)));
        if self.entries.len() > self.cap {
            self.entries.remove(0);
        }
        set
    }
}

/// Capacity of the [`all_traces`] cache: `SNIC_TRACE_CACHE_CAP`
/// (default 8) distinct `(scale, seed)` keys.
fn trace_cache_cap() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        std::env::var("SNIC_TRACE_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(8)
    })
}

/// Record streams for all six kinds, in parallel, memoized per
/// `(scale, seed)` in a bounded LRU cache.
///
/// The first call at a given key fans the six recordings across the
/// worker pool and caches the resulting [`TraceSet`]; later calls —
/// from other figure modules, bench bins, or test binaries in the same
/// process — get the cached set for the cost of one `Arc` clone.
/// Recording is deterministic per key, so a racing duplicate compute
/// produces an identical set and either copy may win the cache slot;
/// an evicted key simply re-records (cheap now that generation
/// streams). Capacity: `SNIC_TRACE_CACHE_CAP`, default 8 keys.
pub fn all_traces(scale: &Scale, seed: u64) -> TraceSet {
    static CACHE: OnceLock<Mutex<TraceCache>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(TraceCache::new(trace_cache_cap())));
    if let Some(hit) = cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&(*scale, seed))
    {
        return hit;
    }
    // Record outside the lock so a slow first recording never blocks an
    // unrelated key.
    let recorded: TraceSet = snic_sim::par_map(NfKind::ALL.to_vec(), |k| {
        (k, SharedTrace::from(nf_access_trace(k, scale, seed)))
    })
    .into();
    cache
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert((*scale, seed), recorded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            flows: 300,
            packets: 400,
            patterns: 100,
            fw_rules: 50,
            lpm_prefixes: 200,
            monitor_ms: 20,
        }
    }

    #[test]
    fn workload_is_deterministic_and_lazy() {
        let mut lazy = workload(&tiny(), 7);
        assert_eq!(lazy.len(), 400);
        let b: Vec<Packet> = workload(&tiny(), 7).collect();
        assert_eq!(b.len(), 400);
        assert_eq!(lazy.next().as_ref(), b.first());
        assert_eq!(lazy.last().as_ref(), b.last());
    }

    #[test]
    fn streamed_source_matches_materialized_recording() {
        for kind in [NfKind::Monitor, NfKind::Dpi] {
            let materialized = nf_access_trace(kind, &tiny(), 9);
            let mut src = streamed_nf_source(kind, &tiny(), 9, 1);
            let mut streamed = Vec::new();
            let mut buf = [Access {
                insns: 1,
                addr: 0,
                kind: snic_uarch::AccessKind::Load,
            }; 128];
            loop {
                let n = snic_uarch::AccessStream::next_batch(&mut src, &mut buf);
                if n == 0 {
                    break;
                }
                streamed.extend_from_slice(&buf[..n]);
            }
            assert_eq!(streamed, materialized, "{kind:?}");
        }
    }

    #[test]
    fn trace_cache_evicts_least_recently_used() {
        let set = |tag: u64| -> TraceSet {
            Arc::from(vec![(
                NfKind::Monitor,
                SharedTrace::from(vec![Access {
                    insns: tag as u32 + 1,
                    addr: tag,
                    kind: snic_uarch::AccessKind::Load,
                }]),
            )])
        };
        let key = |n: u64| (tiny(), n);
        let mut cache = TraceCache::new(2);
        let a = cache.insert(key(1), set(1));
        cache.insert(key(2), set(2));
        // Refresh key 1, then insert key 3: key 2 is the LRU victim.
        assert!(Arc::ptr_eq(&cache.get(&key(1)).unwrap(), &a));
        cache.insert(key(3), set(3));
        assert!(cache.get(&key(2)).is_none(), "LRU entry should evict");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        // A racing insert on an occupied slot keeps the incumbent.
        assert!(Arc::ptr_eq(&cache.insert(key(1), set(9)), &a));
    }

    #[test]
    fn every_kind_produces_a_stream() {
        for kind in NfKind::ALL {
            let t = nf_access_trace(kind, &tiny(), 3);
            assert!(!t.is_empty(), "{kind:?} produced no accesses");
            assert!(t.iter().all(|a| a.insns >= 1));
        }
    }

    #[test]
    fn all_traces_memoizes_per_key() {
        let a = all_traces(&tiny(), 11);
        let b = all_traces(&tiny(), 11);
        assert!(Arc::ptr_eq(&a, &b), "same key must hit the cache");
        let c = all_traces(&tiny(), 12);
        assert!(!Arc::ptr_eq(&a, &c), "different seed, different set");
        // The cached set matches a direct recording, kind for kind.
        for (kind, trace) in a.iter() {
            assert_eq!(trace.as_ref(), nf_access_trace(*kind, &tiny(), 11));
        }
    }

    #[test]
    fn dpi_stream_longest_monitor_compact() {
        // DPI walks payload bytes; the monitor touches a couple of
        // addresses per packet.
        let dpi = nf_access_trace(NfKind::Dpi, &tiny(), 3).len();
        let mon = nf_access_trace(NfKind::Monitor, &tiny(), 3).len();
        assert!(dpi > 3 * mon, "dpi {dpi} vs mon {mon}");
    }
}
