//! Reference-stream recording: run each NF over an ICTF-like trace and
//! capture its memory accesses (the Figure 5 workload, §5.3).

use snic_nf::{build, record_stream, NfKind};
use snic_trace::{IctfConfig, IctfLikeTrace};
use snic_types::Packet;
use snic_uarch::stream::Access;

use crate::Scale;

/// Generate the packet workload shared by all NFs at this scale.
pub fn workload(scale: &Scale, seed: u64) -> Vec<Packet> {
    let mut trace = IctfLikeTrace::new(IctfConfig {
        flows: scale.flows,
        theta: 1.1,
        mean_payload: 256,
        signature_rate: 0.02,
        patterns: snic_nf::dpi::synth_patterns(16, seed ^ 0x77),
        seed,
    });
    (0..scale.packets).map(|_| trace.next_packet()).collect()
}

/// Build the NF at this scale (smaller structures than `with_defaults`
/// when the scale asks for it).
pub fn build_scaled(kind: NfKind, scale: &Scale, seed: u64) -> Box<dyn snic_nf::NetworkFunction> {
    match kind {
        NfKind::Dpi => Box::new(snic_nf::DpiNf::new(&snic_nf::dpi::synth_patterns(
            scale.patterns,
            seed,
        ))),
        NfKind::Firewall => Box::new(snic_nf::FirewallNf::new(
            snic_nf::firewall::synth_rules(scale.fw_rules, seed),
            200_000,
        )),
        NfKind::Lpm => Box::new(snic_nf::LpmNf::new(&snic_nf::lpm::synth_prefixes(
            scale.lpm_prefixes,
            seed,
        ))),
        other => build(other, seed),
    }
}

/// Record the reference stream of one NF kind over the shared workload.
pub fn nf_access_trace(kind: NfKind, scale: &Scale, seed: u64) -> Vec<Access> {
    let mut nf = build_scaled(kind, scale, seed);
    let packets = workload(scale, seed ^ kind as u64 ^ 0x5eed);
    record_stream(nf.as_mut(), &packets)
}

/// Record streams for all six kinds (memoize at the caller).
pub fn all_traces(scale: &Scale, seed: u64) -> Vec<(NfKind, Vec<Access>)> {
    NfKind::ALL
        .iter()
        .map(|&k| (k, nf_access_trace(k, scale, seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            flows: 300,
            packets: 400,
            patterns: 100,
            fw_rules: 50,
            lpm_prefixes: 200,
            monitor_ms: 20,
        }
    }

    #[test]
    fn workload_is_deterministic() {
        let a = workload(&tiny(), 7);
        let b = workload(&tiny(), 7);
        assert_eq!(a.len(), 400);
        assert_eq!(a[0], b[0]);
        assert_eq!(a[399], b[399]);
    }

    #[test]
    fn every_kind_produces_a_stream() {
        for kind in NfKind::ALL {
            let t = nf_access_trace(kind, &tiny(), 3);
            assert!(!t.is_empty(), "{kind:?} produced no accesses");
            assert!(t.iter().all(|a| a.insns >= 1));
        }
    }

    #[test]
    fn dpi_stream_longest_monitor_compact() {
        // DPI walks payload bytes; the monitor touches a couple of
        // addresses per packet.
        let dpi = nf_access_trace(NfKind::Dpi, &tiny(), 3).len();
        let mon = nf_access_trace(NfKind::Monitor, &tiny(), 3).len();
        assert!(dpi > 3 * mon, "dpi {dpi} vs mon {mon}");
    }
}
