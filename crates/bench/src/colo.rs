//! Many-tenant streamed colocation sweeps: fig5-style commodity-vs-S-NIC
//! comparisons extended to 32–64 tenants and billion-event runs in
//! bounded memory.
//!
//! The fig5 sweeps materialize each NF recording once and replay it from
//! an `Arc<[Access]>` — fine at 6 tenants × tens of thousands of
//! packets, impossible at a billion events (16 GB of `Access` alone).
//! This module builds every tenant's reference stream as a
//! [`TraceSource`] pipeline instead: a seeded [`PhasedTrace`] packet
//! generator (diurnal cycles, flash crowds, heavy-hitter migration,
//! churn) feeds a per-tenant NF personality whose recorded accesses
//! stream straight into the engine through an O(chunk) buffer, capped at
//! an exact per-tenant event budget. Memory is O(tenants × chunk)
//! regardless of run length, and every stage is seeded, so serial,
//! parallel, and sharded executions are bit-identical
//! (`crates/bench/tests/streaming_differential.rs` holds this).

use snic_nf::{NfKind, StreamingRecorder};
use snic_sim::{JobSpec, SimJob};
use snic_trace::{IctfConfig, PhaseSchedule, PhasedConfig, PhasedTrace};
use snic_types::Packet;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::RunOutcome;
use snic_uarch::{Access, StreamedSource, TraceSource};

use crate::streams::build_scaled;
use crate::Scale;

/// One tenant of a streamed colocation: an NF personality, a workload
/// phase schedule, a private seed, and an exact event budget.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// The NF personality processing this tenant's packets.
    pub kind: NfKind,
    /// Time-varying workload shape.
    pub schedule: PhaseSchedule,
    /// Seed for the tenant's flow pool, payloads, and NF structures.
    pub seed: u64,
    /// Exactly how many reference-stream events this tenant feeds the
    /// engine (the capped streaming pass length).
    pub events: u64,
}

/// Relative single-core regeneration rate of each personality
/// (accesses/second, measured on the dev host; only ratios matter).
/// DPI walks ~500 payload bytes per packet so it streams fastest;
/// LPM's two table probes per packet make it the slowest to
/// regenerate.
fn regen_weight(kind: NfKind) -> u64 {
    match kind {
        NfKind::Dpi => 33,
        NfKind::Firewall => 15,
        NfKind::Nat => 6,
        NfKind::LoadBalancer => 4,
        NfKind::Lpm => 2,
        NfKind::Monitor => 4,
    }
}

/// Build a mixed-personality tenant list whose event budgets sum to
/// exactly `total_events`.
///
/// Personalities cycle through [`NfKind::ALL`]; each tenant gets its own
/// seed and a phase schedule staggered per tenant (different diurnal
/// phase lengths and crowd onsets) so no two tenants breathe in step.
/// With `weighted` set, budgets are proportional to the square of each
/// personality's regeneration rate — the allocation that keeps a
/// billion-event run's wall clock dominated by the fast streamers while
/// every tenant still contributes at least a 1/(64·tenants) floor.
/// Unweighted budgets split evenly (the sweep default).
pub fn tenant_mix(tenants: usize, seed: u64, total_events: u64, weighted: bool) -> Vec<TenantSpec> {
    assert!(tenants > 0, "no tenants");
    let kinds: Vec<NfKind> = (0..tenants)
        .map(|i| NfKind::ALL[i % NfKind::ALL.len()])
        .collect();
    let weights: Vec<u128> = kinds
        .iter()
        .map(|&k| {
            if weighted {
                let w = regen_weight(k) as u128;
                w * w
            } else {
                1
            }
        })
        .collect();
    let sum_w: u128 = weights.iter().sum();
    let floor = (total_events / (64 * tenants as u64)).max(1);
    let mut events: Vec<u64> = weights
        .iter()
        .map(|&w| ((total_events as u128 * w / sum_w) as u64).max(floor))
        .collect();
    // Rounding and floors drift the sum; settle the difference on the
    // largest budget so the total is exact.
    let assigned: u64 = events.iter().sum();
    let top = (0..tenants)
        .max_by_key(|&i| events[i])
        .expect("at least one tenant");
    if assigned < total_events {
        events[top] += total_events - assigned;
    } else {
        let surplus = assigned - total_events;
        events[top] = events[top].saturating_sub(surplus).max(1);
    }
    (0..tenants)
        .map(|i| {
            let tseed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(i as u64 * 0x0100_0000_01b3);
            // Stagger the phase geometry per tenant: cycle lengths vary
            // ±50% with the tenant index so peaks, crowds, and
            // migrations interleave instead of synchronizing.
            let horizon = events[i].max(64);
            let stretch = 50 + (tseed % 101); // 50..=150 percent
            TenantSpec {
                kind: kinds[i],
                schedule: PhaseSchedule::realistic(horizon * stretch / 100),
                seed: tseed,
                events: events[i],
            }
        })
        .collect()
}

/// Caps an inner trace source at an exact event budget. The cap defines
/// the pass length, so `rewind` restarts both the budget and the inner
/// generator.
struct CappedSource {
    inner: Box<dyn TraceSource>,
    cap: u64,
    emitted: u64,
}

impl TraceSource for CappedSource {
    fn fill(&mut self, out: &mut [Access]) -> usize {
        let left = (self.cap - self.emitted).min(out.len() as u64) as usize;
        if left == 0 {
            return 0;
        }
        let n = self.inner.fill(&mut out[..left]);
        self.emitted += n as u64;
        n
    }

    fn rewind(&mut self) {
        self.inner.rewind();
        self.emitted = 0;
    }
}

/// An endless phased packet stream (the event cap, not a packet count,
/// bounds the pipeline).
struct PhasedPackets {
    trace: PhasedTrace,
}

impl Iterator for PhasedPackets {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        Some(self.trace.next_packet())
    }
}

/// Build one tenant's streaming reference-stream pipeline:
/// phased packets → NF personality → exact event cap.
pub fn tenant_source(spec: &TenantSpec, scale: &Scale) -> Box<dyn TraceSource> {
    let scale = *scale;
    let spec_for_nf = spec.clone();
    let spec_for_pkts = spec.clone();
    let recorder = StreamingRecorder::new(
        move || build_scaled(spec_for_nf.kind, &scale, spec_for_nf.seed),
        move || PhasedPackets {
            trace: PhasedTrace::new(PhasedConfig {
                base: IctfConfig {
                    flows: scale.flows,
                    theta: 1.1,
                    mean_payload: 256,
                    signature_rate: 0.02,
                    patterns: snic_nf::dpi::synth_patterns(16, spec_for_pkts.seed ^ 0x77),
                    seed: spec_for_pkts.seed,
                },
                schedule: spec_for_pkts.schedule.clone(),
            }),
        },
    );
    Box::new(CappedSource {
        inner: Box::new(recorder),
        cap: spec.events,
        emitted: 0,
    })
}

/// Round `l2_bytes` down to the cache model's geometry quantum (`ways ×
/// 64-byte lines`; the model refuses sizes it would silently truncate).
fn quantize_l2(l2_bytes: u64, ways: u32) -> u64 {
    let quantum = ways as u64 * 64;
    (l2_bytes / quantum).max(1) * quantum
}

/// The S-NIC machine for a many-tenant run: one private L2 way per
/// tenant (the 16-way Marvell default only partitions to 16 domains),
/// capped at the engine's 64-way scan limit, with the L2 size snapped
/// to the resulting geometry.
pub fn many_tenant_snic(tenants: usize, l2_bytes: u64) -> MachineConfig {
    let ways = (tenants as u32).clamp(16, 64);
    MachineConfig::snic(tenants as u32, quantize_l2(l2_bytes, ways)).with_l2_ways(ways)
}

/// The commodity counterpart at the identical cache geometry, so the
/// comparison isolates the sharing discipline, not associativity.
pub fn many_tenant_commodity(tenants: usize, l2_bytes: u64) -> MachineConfig {
    let ways = (tenants as u32).clamp(16, 64);
    MachineConfig::commodity(tenants as u32, quantize_l2(l2_bytes, ways)).with_l2_ways(ways)
}

/// A re-windable job spec for one streamed colocation run.
pub fn colo_spec(
    scale: &Scale,
    specs: &[TenantSpec],
    cfg: MachineConfig,
    shards: usize,
) -> JobSpec {
    let scale = *scale;
    let specs = specs.to_vec();
    JobSpec::new(move || {
        let streams = specs
            .iter()
            .map(|s| StreamedSource::new(tenant_source(s, &scale)).into())
            .collect();
        SimJob::new(cfg.clone(), streams).with_shards(shards)
    })
}

/// FNV-1a over every stat field of an outcome — the stable fingerprint
/// the identity gates and EXPERIMENTS.md tables print.
pub fn outcome_digest(outcome: &RunOutcome) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
    };
    for nf in &outcome.nfs {
        eat(nf.insns);
        eat(nf.cycles);
        eat(nf.l1_hits);
        eat(nf.l1_misses);
        eat(nf.l2_hits);
        eat(nf.l2_misses);
    }
    h
}

/// Engine events an outcome actually processed (every event probes L1
/// exactly once).
pub fn outcome_events(outcome: &RunOutcome) -> u64 {
    outcome.nfs.iter().map(|n| n.l1_hits + n.l1_misses).sum()
}

/// Peak resident set of this process in MiB (`VmHWM` from
/// `/proc/self/status`); `None` off Linux.
pub fn peak_rss_mb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024)
}

/// One row of the many-tenant sweep: a commodity/S-NIC pair at one
/// cotenancy, streamed end to end.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Colocated tenant count.
    pub tenants: usize,
    /// Engine events processed per machine config.
    pub events: u64,
    /// Mean IPC across tenants, commodity baseline.
    pub commodity_ipc: f64,
    /// Mean IPC across tenants, S-NIC.
    pub snic_ipc: f64,
    /// Mean S-NIC IPC degradation vs commodity, percent.
    pub degradation_pct: f64,
    /// Wall clock of the pair, seconds.
    pub wall_s: f64,
    /// Engine events per second across the pair.
    pub events_per_sec: f64,
    /// FNV-1a fingerprint of the S-NIC outcome (identity checks).
    pub snic_digest: u64,
}

fn mean_ipc(outcome: &RunOutcome) -> f64 {
    outcome.nfs.iter().map(|n| n.ipc()).sum::<f64>() / outcome.nfs.len().max(1) as f64
}

/// Run the streamed colocation sweep at each cotenancy in
/// `tenant_counts` (32–64 is the headline range). Each count runs a
/// commodity pair serially (shared L2 + FCFS bus cannot shard) and the
/// S-NIC leg with `shards` workers.
pub fn streamed_sweep(
    scale: &Scale,
    tenant_counts: &[usize],
    events_per_tenant: u64,
    seed: u64,
    shards: usize,
) -> Vec<SweepRow> {
    let l2_bytes = 4 << 20;
    tenant_counts
        .iter()
        .map(|&tenants| {
            let specs = tenant_mix(
                tenants,
                seed ^ tenants as u64,
                events_per_tenant * tenants as u64,
                false,
            );
            let start = std::time::Instant::now();
            let commodity =
                colo_spec(scale, &specs, many_tenant_commodity(tenants, l2_bytes), 1).run();
            let snic = colo_spec(scale, &specs, many_tenant_snic(tenants, l2_bytes), shards).run();
            let wall_s = start.elapsed().as_secs_f64();
            let events = outcome_events(&snic);
            let commodity_ipc = mean_ipc(&commodity);
            let snic_ipc = mean_ipc(&snic);
            SweepRow {
                tenants,
                events,
                commodity_ipc,
                snic_ipc,
                degradation_pct: (1.0 - snic_ipc / commodity_ipc) * 100.0,
                wall_s,
                events_per_sec: (events + outcome_events(&commodity)) as f64 / wall_s,
                snic_digest: outcome_digest(&snic),
            }
        })
        .collect()
}

/// Render sweep rows as the EXPERIMENTS.md table.
pub fn render_sweep(rows: &[SweepRow]) -> String {
    crate::render_table(
        "Streamed colocation sweep (commodity vs S-NIC)",
        &[
            "tenants",
            "events",
            "IPC base",
            "IPC snic",
            "degr %",
            "Mevents/s",
            "digest",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.tenants.to_string(),
                    r.events.to_string(),
                    format!("{:.4}", r.commodity_ipc),
                    format!("{:.4}", r.snic_ipc),
                    format!("{:.2}", r.degradation_pct),
                    format!("{:.1}", r.events_per_sec / 1e6),
                    format!("{:016x}", r.snic_digest),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// Report of one bounded-memory billion-event run.
#[derive(Debug, Clone)]
pub struct BillionReport {
    /// Colocated tenant count.
    pub tenants: usize,
    /// Engine events actually processed.
    pub events: u64,
    /// Wall clock, seconds.
    pub wall_s: f64,
    /// Engine events per second (generation + simulation).
    pub events_per_sec: f64,
    /// Peak resident set after the run, MiB (`None` off Linux).
    pub peak_rss_mb: Option<u64>,
    /// FNV-1a fingerprint of the outcome.
    pub digest: u64,
}

/// Run one streamed S-NIC colocation with `total_events` events spread
/// over `tenants` personality-weighted tenants — the billion-event
/// configuration when `total_events >= 1e9`. Memory stays
/// O(tenants × chunk); the materialized equivalent would need
/// `16 × total_events` bytes of `Access` alone.
pub fn billion_run(
    scale: &Scale,
    tenants: usize,
    total_events: u64,
    seed: u64,
    shards: usize,
) -> BillionReport {
    let specs = tenant_mix(tenants, seed, total_events, true);
    let spec = colo_spec(scale, &specs, many_tenant_snic(tenants, 4 << 20), shards);
    let start = std::time::Instant::now();
    let outcome = spec.run();
    let wall_s = start.elapsed().as_secs_f64();
    let events = outcome_events(&outcome);
    BillionReport {
        tenants,
        events,
        wall_s,
        events_per_sec: events as f64 / wall_s,
        peak_rss_mb: peak_rss_mb(),
        digest: outcome_digest(&outcome),
    }
}

/// Render a billion-run report as the EXPERIMENTS.md / gate summary.
pub fn render_billion(r: &BillionReport) -> String {
    format!(
        "billion-event streamed run: tenants={} events={} wall={:.1}s \
         throughput={:.1}M events/s peak_rss={} digest={:016x}",
        r.tenants,
        r.events,
        r.wall_s,
        r.events_per_sec / 1e6,
        r.peak_rss_mb
            .map_or_else(|| "n/a".to_string(), |mb| format!("{mb}MiB")),
        r.digest
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_sim::Exec;

    fn tiny() -> Scale {
        Scale {
            flows: 500,
            packets: 400,
            patterns: 100,
            fw_rules: 50,
            lpm_prefixes: 200,
            monitor_ms: 20,
        }
    }

    #[test]
    fn tenant_mix_conserves_total_events() {
        for tenants in [1, 5, 32, 64] {
            for weighted in [false, true] {
                let specs = tenant_mix(tenants, 0xface, 1_000_000, weighted);
                assert_eq!(specs.len(), tenants);
                let total: u64 = specs.iter().map(|s| s.events).sum();
                assert_eq!(total, 1_000_000, "tenants={tenants} weighted={weighted}");
                assert!(specs.iter().all(|s| s.events >= 1));
            }
        }
    }

    #[test]
    fn tenant_mix_cycles_personalities_and_staggers_schedules() {
        let specs = tenant_mix(12, 3, 600_000, false);
        assert_eq!(specs[0].kind, NfKind::ALL[0]);
        assert_eq!(specs[6].kind, NfKind::ALL[0]);
        assert_eq!(specs[1].kind, NfKind::ALL[1]);
        assert_ne!(specs[0].seed, specs[6].seed);
        assert_ne!(
            specs[0].schedule.diurnal_period, specs[6].schedule.diurnal_period,
            "same personality, staggered phases"
        );
    }

    #[test]
    fn tenant_source_respects_exact_cap_and_rewinds() {
        let spec = TenantSpec {
            kind: NfKind::Monitor,
            schedule: PhaseSchedule::realistic(2_000),
            seed: 0x7777,
            events: 2_000,
        };
        let mut src = tenant_source(&spec, &tiny());
        let mut buf = [Access {
            insns: 1,
            addr: 0,
            kind: snic_uarch::AccessKind::Load,
        }; 333];
        let drain = |src: &mut Box<dyn TraceSource>, buf: &mut [Access]| {
            let mut v = Vec::new();
            loop {
                let n = src.fill(buf);
                if n == 0 {
                    break;
                }
                v.extend_from_slice(&buf[..n]);
            }
            v
        };
        let first = drain(&mut src, &mut buf);
        assert_eq!(first.len(), 2_000, "cap must be exact");
        src.rewind();
        assert_eq!(drain(&mut src, &mut buf), first, "rewind must replay");
    }

    #[test]
    fn streamed_colo_serial_parallel_sharded_identical() {
        let specs = tenant_mix(6, 0xc010, 30_000, false);
        let spec_serial = colo_spec(&tiny(), &specs, many_tenant_snic(6, 1 << 20), 1);
        let serial = spec_serial.run();
        assert_eq!(outcome_events(&serial), 30_000);
        for shards in [2, 3, 6] {
            let sharded = colo_spec(&tiny(), &specs, many_tenant_snic(6, 1 << 20), shards).run();
            assert_eq!(serial.nfs, sharded.nfs, "shards={shards}");
        }
        let parallel = snic_sim::run_specs(&[spec_serial], Exec::Parallel);
        assert_eq!(parallel[0].nfs, serial.nfs);
    }

    #[test]
    fn sweep_rows_report_sane_numbers() {
        let rows = streamed_sweep(&tiny(), &[4], 4_000, 0x5111, 2);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert_eq!(r.events, 16_000);
        assert!(r.commodity_ipc > 0.0 && r.snic_ipc > 0.0);
        assert!(r.events_per_sec > 0.0);
        let rendered = render_sweep(&rows);
        assert!(rendered.contains("digest"));
    }

    #[test]
    fn many_tenant_configs_widen_ways_together() {
        for t in [16, 32, 48, 64] {
            let s = many_tenant_snic(t, 4 << 20);
            let c = many_tenant_commodity(t, 4 << 20);
            assert_eq!(s.l2.ways, t as u32);
            assert_eq!(s.l2.ways, c.l2.ways, "identical geometry");
            assert_eq!(s.l2.size, c.l2.size);
            assert_eq!(s.l2.size % (s.l2.ways as u64 * 64), 0, "geometry quantum");
            assert!(s.l2.size <= 4 << 20, "snap rounds down");
            assert!(snic_sim::shardable(&s));
            assert!(!snic_sim::shardable(&c));
        }
    }

    #[test]
    fn billion_run_shape_at_miniature_scale() {
        // The real billion runs under the lint gate; here the same
        // machinery at 60k events proves the report plumbing.
        let r = billion_run(&tiny(), 6, 60_000, 0xb111, 3);
        assert_eq!(r.events, 60_000);
        assert!(r.events_per_sec > 0.0);
        assert!(render_billion(&r).contains("digest"));
    }
}
