//! Golden-snapshot renderers: one fixed-precision, deterministic text
//! document per figure pipeline.
//!
//! Every simulation in this workspace is bit-deterministic (no wall
//! clock, seeded RNG, order-preserving pool), so each figure's output
//! at a pinned scale/seed can be snapshotted byte-for-byte. The
//! renderers here produce those documents; `tests/golden.rs` compares
//! them against the checked-in files under `tests/golden/` and
//! regenerates them when `SNIC_BLESS=1`.
//!
//! Floats are printed with fixed width (`{:.4}`) — enough precision
//! that a real behaviour change moves the text, while the underlying
//! bit-determinism guarantees the rendering never drifts on its own.

use std::fmt::Write as _;

use snic_sim::Exec;

use crate::blast::{blast_matrix_with, render_matrix};
use crate::fig5::{self, DegradationPoint};
use crate::{fig6, fig8, Scale};

/// The pinned scale every golden document is rendered at: small enough
/// that the whole suite runs inside the CI budget, large enough that
/// each figure's qualitative shape (cache pressure, scrub costs,
/// accelerator scaling) survives.
pub fn golden_scale() -> Scale {
    Scale {
        flows: 2_000,
        packets: 2_500,
        patterns: 200,
        fw_rules: 100,
        lpm_prefixes: 400,
        monitor_ms: 20,
    }
}

/// L2 sweep points for the fig5a snapshot.
pub const GOLDEN_L2_SIZES: [u64; 2] = [64 << 10, 4 << 20];
/// Cotenancy points for the fig5b snapshot.
pub const GOLDEN_NF_COUNTS: [usize; 2] = [2, 4];
/// Fixed L2 for the fig5b snapshot.
pub const GOLDEN_FIG5B_L2: u64 = 4 << 20;

fn write_points(out: &mut String, points: &[DegradationPoint]) {
    for p in points {
        let _ = writeln!(
            out,
            "  {:<14} median {:>9.4}%  p1 {:>9.4}%  p99 {:>9.4}%",
            p.kind.name(),
            p.median_pct,
            p.p1_pct,
            p.p99_pct
        );
    }
}

/// Figure 5a (IPC degradation vs L2 size) as a golden document.
pub fn fig5a_text(scale: &Scale) -> String {
    let mut out = String::from("fig5a: IPC degradation vs L2 size (2 NFs)\n");
    for (l2, points) in fig5::fig5a_with(Exec::Parallel, scale, &GOLDEN_L2_SIZES) {
        let _ = writeln!(out, "l2={} KiB", l2 >> 10);
        write_points(&mut out, &points);
    }
    out
}

/// Figure 5b (IPC degradation vs cotenancy) as a golden document.
pub fn fig5b_text(scale: &Scale) -> String {
    let mut out = String::from("fig5b: IPC degradation vs cotenancy (4 MiB L2)\n");
    for (n, points) in fig5::fig5b_with(Exec::Parallel, scale, &GOLDEN_NF_COUNTS, GOLDEN_FIG5B_L2) {
        let _ = writeln!(out, "nfs={n}");
        write_points(&mut out, &points);
    }
    out
}

/// Figure 6 (trusted-instruction latency per NF) as a golden document.
/// Scale-independent: the workload is each NF's paper memory profile.
pub fn fig6_text() -> String {
    let mut out = String::from("fig6: trusted-instruction latency per NF\n");
    for row in fig6::run() {
        let _ = writeln!(
            out,
            "  {:<14} mem {:>12}  launch {:>10.4} ms (digest {:>9.4} ms)  \
             teardown {:>9.4} ms (scrub {:>9.4} ms)",
            row.kind.name(),
            row.memory.to_string(),
            row.launch.total().as_millis_f64(),
            row.launch.sha_digest.as_millis_f64(),
            row.teardown.total().as_millis_f64(),
            row.teardown.scrub.as_millis_f64()
        );
    }
    out
}

/// Figure 8 (DPI throughput vs threads × frame size) as a golden
/// document.
pub fn fig8_text(scale: &Scale) -> String {
    let mut out = String::from("fig8: DPI throughput (Mpps) vs threads x frame\n");
    let matrix = fig8::run(scale);
    for (frame, row) in fig8::FRAMES.iter().zip(&matrix) {
        let mut line = format!("  frame {frame:>5}B:");
        for (threads, mpps) in fig8::THREADS.iter().zip(row) {
            let _ = write!(line, "  t{threads}={mpps:.4}");
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// The blast-radius matrix as a golden document (the same rendering
/// EXPERIMENTS.md embeds).
pub fn blast_text(scale: &Scale) -> String {
    render_matrix(&blast_matrix_with(Exec::Parallel, scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_text_is_stable_across_runs() {
        let scale = golden_scale();
        assert_eq!(fig8_text(&scale), fig8_text(&scale));
    }

    #[test]
    fn fig6_text_lists_all_nfs() {
        let doc = fig6_text();
        assert_eq!(doc.lines().count(), 1 + 6, "header + six NFs:\n{doc}");
    }
}
