//! Figure 5: IPC degradation from cache partitioning + bus arbitration.
//!
//! For each experimental setting the paper "calculate[s] the median IPC
//! degradation of a function by running every possible colocation with
//! other functions, and determining the median IPC decrease", with
//! 1st/99th percentile error bars.
//!
//! Every colocation is an independent simulation, so the sweeps build
//! the full job list up front and fan it across [`snic_sim`]'s worker
//! pool. Results come back in input order and each job replays shared
//! [`SharedTrace`] recordings instead of private `Vec` clones, so the
//! parallel sweep is bit-identical to the serial one (proved in
//! `crates/bench/tests/parallel_determinism.rs`).

use snic_nf::NfKind;
use snic_sim::{execute, Exec, SendStream, SimJob};
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::RunOutcome;
use snic_uarch::stream::SharedReplayStream;

use crate::streams::{all_traces, SharedTrace, TraceSet};
use crate::{median, percentile, Scale};

/// One measured point: an NF at one setting.
#[derive(Debug, Clone)]
pub struct DegradationPoint {
    /// The function under measurement.
    pub kind: NfKind,
    /// Median IPC degradation (percent) across colocations.
    pub median_pct: f64,
    /// 1st percentile.
    pub p1_pct: f64,
    /// 99th percentile.
    pub p99_pct: f64,
}

/// A stream that replays the recorded trace twice: the first pass warms
/// the caches (as §5.3's 1-billion-instruction warmup does), the second
/// is measured. The recording is shared, not copied — the old owned
/// version materialised four full copies of every trace per measured
/// point (two streams × two machine configs).
fn doubled(trace: &SharedTrace) -> SendStream {
    SharedReplayStream::repeated(SharedTrace::clone(trace), 2).into()
}

/// The two jobs (commodity baseline, S-NIC) measuring one colocation:
/// NF `focus` (index 0) plus `partners`.
pub(crate) fn colocation_jobs(
    traces: &TraceSet,
    focus: NfKind,
    partners: &[NfKind],
    l2_bytes: u64,
) -> [SimJob; 2] {
    let find = |k: NfKind| {
        &traces
            .iter()
            .find(|(kk, _)| *kk == k)
            .expect("trace exists")
            .1
    };
    let tenants = (partners.len() + 1) as u32;
    let mk_streams = || -> Vec<SendStream> {
        let mut v = vec![doubled(find(focus))];
        v.extend(partners.iter().map(|&p| doubled(find(p))));
        v
    };
    let warmups: Vec<u64> = std::iter::once(focus)
        .chain(partners.iter().copied())
        .map(|k| find(k).len() as u64)
        .collect();
    [
        SimJob::new(MachineConfig::commodity(tenants, l2_bytes), mk_streams())
            .with_warmups(warmups.clone()),
        SimJob::new(MachineConfig::snic(tenants, l2_bytes), mk_streams()).with_warmups(warmups),
    ]
}

/// Degradation of the focus NF from one (baseline, snic) outcome pair.
fn degradation(pair: &[RunOutcome]) -> f64 {
    pair[1].ipc_degradation_vs(&pair[0], 0)
}

/// Fold a flat list of per-colocation degradations — `group` values per
/// focus NF, [`NfKind::ALL`] focus order — into [`DegradationPoint`]s.
fn points_from(degs: &[f64], group: usize) -> Vec<DegradationPoint> {
    NfKind::ALL
        .iter()
        .zip(degs.chunks_exact(group))
        .map(|(&kind, chunk)| {
            let mut degs = chunk.to_vec();
            DegradationPoint {
                kind,
                median_pct: median(&mut degs.clone()),
                p1_pct: percentile(&mut degs.clone(), 1.0),
                p99_pct: percentile(&mut degs, 99.0),
            }
        })
        .collect()
}

/// Figure 5a: vary L2 size with two colocated NFs.
pub fn fig5a(scale: &Scale, l2_sizes: &[u64]) -> Vec<(u64, Vec<DegradationPoint>)> {
    fig5a_with(Exec::Parallel, scale, l2_sizes)
}

/// [`fig5a`] with an explicit executor (the serial path exists so the
/// determinism test can hold the pool to bit-identical outputs).
pub fn fig5a_with(
    exec: Exec,
    scale: &Scale,
    l2_sizes: &[u64],
) -> Vec<(u64, Vec<DegradationPoint>)> {
    let traces = all_traces(scale, 0xf15a);
    // Job order: size-major, then focus, then partner — two jobs
    // (commodity, snic) per colocation.
    let mut jobs = Vec::new();
    for &l2 in l2_sizes {
        for &focus in &NfKind::ALL {
            for &partner in &NfKind::ALL {
                jobs.extend(colocation_jobs(&traces, focus, &[partner], l2));
            }
        }
    }
    let outcomes = execute(exec, jobs);
    let degs: Vec<f64> = outcomes.chunks_exact(2).map(degradation).collect();
    let per_size = NfKind::ALL.len() * NfKind::ALL.len();
    l2_sizes
        .iter()
        .zip(degs.chunks_exact(per_size))
        .map(|(&l2, chunk)| (l2, points_from(chunk, NfKind::ALL.len())))
        .collect()
}

/// Figure 5b: vary cotenancy at a fixed 4 MB L2.
///
/// At 8 and 16 NFs the full colocation space is sampled by rotating the
/// six kinds through the co-tenant slots (the paper's space is likewise
/// too large to enumerate at high cotenancy).
pub fn fig5b(
    scale: &Scale,
    nf_counts: &[usize],
    l2_bytes: u64,
) -> Vec<(usize, Vec<DegradationPoint>)> {
    fig5b_with(Exec::Parallel, scale, nf_counts, l2_bytes)
}

/// [`fig5b`] with an explicit executor.
pub fn fig5b_with(
    exec: Exec,
    scale: &Scale,
    nf_counts: &[usize],
    l2_bytes: u64,
) -> Vec<(usize, Vec<DegradationPoint>)> {
    let traces = all_traces(scale, 0xf15b);
    let rotations = NfKind::ALL.len();
    let mut jobs = Vec::new();
    for &n in nf_counts {
        assert!(n >= 2, "cotenancy below 2 is meaningless");
        for &focus in &NfKind::ALL {
            // Rotate which kinds fill the other n-1 slots.
            for rot in 0..rotations {
                let partners: Vec<NfKind> = (0..n - 1)
                    .map(|i| NfKind::ALL[(rot + i) % rotations])
                    .collect();
                jobs.extend(colocation_jobs(&traces, focus, &partners, l2_bytes));
            }
        }
    }
    let outcomes = execute(exec, jobs);
    let degs: Vec<f64> = outcomes.chunks_exact(2).map(degradation).collect();
    let per_count = NfKind::ALL.len() * rotations;
    nf_counts
        .iter()
        .zip(degs.chunks_exact(per_count))
        .map(|(&n, chunk)| (n, points_from(chunk, rotations)))
        .collect()
}

/// The headline §5.3 statistics at one cotenancy: (mean-of-medians,
/// worst 99th percentile).
pub fn headline_stats(points: &[DegradationPoint]) -> (f64, f64) {
    let mean = points.iter().map(|p| p.median_pct).sum::<f64>() / points.len() as f64;
    let worst = points.iter().map(|p| p.p99_pct).fold(f64::MIN, f64::max);
    (mean, worst)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            flows: 5_000,
            packets: 6_000,
            patterns: 300,
            fw_rules: 120,
            lpm_prefixes: 500,
            monitor_ms: 20,
        }
    }

    #[test]
    fn fig5b_degradation_grows_with_cotenancy() {
        let rows = fig5b(&tiny(), &[2, 8], 4 << 20);
        let (mean2, _) = headline_stats(&rows[0].1);
        let (mean8, _) = headline_stats(&rows[1].1);
        assert!(
            mean8 > mean2,
            "expected monotone degradation: 2NF {mean2:.3}% vs 8NF {mean8:.3}%"
        );
        assert!(
            mean8 > 0.05,
            "8NF degradation should be visible: {mean8:.3}%"
        );
    }

    #[test]
    fn fig5a_produces_all_nfs_per_size() {
        let rows = fig5a(&tiny(), &[256 << 10]);
        assert_eq!(rows.len(), 1);
        for (_, points) in &rows {
            assert_eq!(points.len(), 6);
            for p in points {
                assert!(p.p1_pct <= p.median_pct + 1e-9);
                assert!(p.median_pct <= p.p99_pct + 1e-9);
            }
        }
    }

    #[test]
    fn small_cache_hurts_more_than_big_cache() {
        let rows = fig5a(&tiny(), &[64 << 10, 8 << 20]);
        let (small_mean, _) = headline_stats(&rows[0].1);
        let (big_mean, _) = headline_stats(&rows[1].1);
        assert!(
            small_mean >= big_mean - 0.05,
            "small cache {small_mean:.3}% should not beat big cache {big_mean:.3}%"
        );
    }
}
