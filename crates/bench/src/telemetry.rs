//! The fig5 telemetry smoke point: one small colocation sweep that can
//! run with or without a sink attached.
//!
//! This is the workload behind three consumers:
//!
//! - `snicctl telemetry record` — runs it with a [`Recorder`] and
//!   writes the Chrome trace + summary;
//! - the `telemetry_overhead` gate binary — times it sink-off vs
//!   sink-on and fails the build if instrumentation costs more than
//!   the overhead budget;
//! - tests asserting sink-on and sink-off statistics are identical.

use std::sync::Arc;

use snic_nf::NfKind;
use snic_sim::{execute, Exec, SimJob};
use snic_telemetry::{Recorder, Summary, TelemetrySink, TraceEvent};
use snic_uarch::engine::RunOutcome;

use crate::fig5::colocation_jobs;
use crate::streams::all_traces;
use crate::Scale;

/// L2 size of the smoke point (one mid-curve fig5a setting).
pub const SMOKE_L2_BYTES: u64 = 256 << 10;

/// Trace seed of the smoke point (fig5a's, so traces are shared with a
/// real fig5a run at the same scale).
pub const SMOKE_SEED: u64 = 0xf15a;

/// The smoke scale: small enough for a lint-gate, big enough that the
/// engine loop dominates the wall clock.
pub fn smoke_scale() -> Scale {
    Scale {
        flows: 5_000,
        packets: 6_000,
        patterns: 300,
        fw_rules: 120,
        lpm_prefixes: 500,
        monitor_ms: 20,
    }
}

/// Build the smoke jobs: every NF kind colocated with every other at
/// [`SMOKE_L2_BYTES`], commodity + S-NIC personalities. When `sink` is
/// set, every job reports to it.
pub fn smoke_jobs(scale: &Scale, sink: Option<Arc<dyn TelemetrySink>>) -> Vec<SimJob> {
    let traces = all_traces(scale, SMOKE_SEED);
    let mut jobs = Vec::new();
    for &focus in &NfKind::ALL {
        for &partner in &NfKind::ALL {
            jobs.extend(colocation_jobs(&traces, focus, &[partner], SMOKE_L2_BYTES));
        }
    }
    if let Some(sink) = sink {
        jobs = jobs
            .into_iter()
            .map(|j| j.with_sink(Arc::clone(&sink)))
            .collect();
    }
    jobs
}

/// Run the smoke point and return the raw outcomes (job order is
/// deterministic: focus-major, then partner, commodity before S-NIC).
pub fn run_smoke(
    exec: Exec,
    scale: &Scale,
    sink: Option<Arc<dyn TelemetrySink>>,
) -> Vec<RunOutcome> {
    execute(exec, smoke_jobs(scale, sink))
}

/// Run the smoke point under a fresh [`Recorder`] and return the
/// outcomes plus everything it captured.
pub fn record_smoke(exec: Exec, scale: &Scale) -> (Vec<RunOutcome>, Summary, Vec<TraceEvent>) {
    let recorder = Arc::new(Recorder::new());
    let outcomes = run_smoke(
        exec,
        scale,
        Some(Arc::clone(&recorder) as Arc<dyn TelemetrySink>),
    );
    let recorder = Arc::try_unwrap(recorder).expect("no job holds the recorder after execute");
    let (summary, events) = recorder.into_parts();
    (outcomes, summary, events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use snic_telemetry::{parse_chrome_trace, to_chrome_trace};

    #[test]
    fn smoke_sink_on_equals_sink_off() {
        let scale = smoke_scale();
        let off = run_smoke(Exec::Serial, &scale, None);
        let (on, summary, events) = record_smoke(Exec::Serial, &scale);
        assert_eq!(on.len(), off.len());
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.nfs, b.nfs, "sink must not perturb outcomes");
        }
        assert!(!summary.is_empty());
        assert!(!events.is_empty());
    }

    #[test]
    fn recorded_trace_round_trips_through_chrome_format() {
        let (_, _, events) = record_smoke(Exec::Serial, &smoke_scale());
        let doc = to_chrome_trace(&events);
        let back = parse_chrome_trace(&doc).expect("valid Chrome trace JSON");
        assert_eq!(back, events, "export → parse must be lossless");
    }
}
