//! The paper's headline numbers in one place (§1 / §5 summary).

use snic_bench::tables;
use snic_cost::overhead::{snic_overhead, OverheadConfig};

fn main() {
    let overhead = snic_overhead(&OverheadConfig::default());
    println!("== S-NIC headline numbers ==");
    for line in &overhead.lines {
        println!(
            "{:<26} +{:.2}% area  +{:.2}% power  ({:.3} mm2, {:.3} W)",
            line.component, line.area_pct, line.power_pct, line.cost.area_mm2, line.cost.power_w
        );
    }
    let (area, power, tco) = tables::headline();
    println!("total silicon overhead:    +{area:.2}% area (paper 8.89%), +{power:.2}% power (paper 11.45%)");
    println!(
        "TCO advantage reduction:   {:.2}% (paper 8.37%), preserving {:.1}% of the offload benefit (paper 91.6%)",
        tco.advantage_decrease * 100.0,
        (1.0 - tco.advantage_decrease) * 100.0
    );
    println!("throughput cost:           see fig5b (paper: <1.7% worst-case at 4 NFs / 4MB L2)");
}
