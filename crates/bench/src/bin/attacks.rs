//! Run the §3.3 concrete attacks against both device modes.

use snic_attacks::{bus_dos, run_all, watermark};
use snic_bench::render_table;
use snic_core::config::NicMode;

fn main() {
    let mut rows = Vec::new();
    let names = [
        "packet corruption (MazuNAT)",
        "DPI ruleset stealing",
        "IO bus DoS",
        "NIC OS tampering",
    ];
    for mode in [NicMode::Commodity, NicMode::Snic] {
        for (name, outcome) in names.iter().zip(run_all(mode)) {
            rows.push(vec![
                format!("{mode:?}"),
                name.to_string(),
                if outcome.succeeded {
                    "ATTACK SUCCEEDED".into()
                } else {
                    "blocked".to_string()
                },
                outcome.evidence,
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "§3.3 concrete attacks (paper: all succeed on commodity NICs; S-NIC's goal is to prevent all of them)",
            &["mode", "attack", "result", "evidence"],
            &rows,
        )
    );
    let (fcfs, temporal) = bus_dos::flood_latency_impact();
    println!(
        "bus flood latency impact on victim: FCFS +{fcfs} cycles, temporal partitioning +{temporal} cycles"
    );
    let (wm_fcfs, wm_temporal) = watermark::run_watermark();
    println!(
        "watermark fidelity (§4.5): FCFS {:.0}% decoded, temporal partitioning {:.0}% (chance)",
        wm_fcfs * 100.0,
        wm_temporal * 100.0
    );
}
