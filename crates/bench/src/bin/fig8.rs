//! Regenerate Figure 8: DPI accelerator throughput vs. hardware-thread
//! count and frame size.

use snic_bench::{fig8, render_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let m = fig8::run(&scale);
    let rows: Vec<Vec<String>> = fig8::FRAMES
        .iter()
        .enumerate()
        .map(|(f, &frame)| {
            let mut row = vec![if frame >= 1024 {
                format!("{:.1}KB", frame as f64 / 1024.0)
            } else {
                format!("{frame}B")
            }];
            row.extend(m[f].iter().map(|v| format!("{v:.3}")));
            row
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 8: DPI throughput (Mpps) vs threads x frame size (paper shape: small frames flat at frontend cap; 9KB scales with threads)",
            &["frame", "16 thr", "32 thr", "48 thr"],
            &rows,
        )
    );
}
