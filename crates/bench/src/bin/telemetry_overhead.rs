//! CI gate: telemetry must be near-free when off and cheap when on.
//!
//! Runs the fig5 telemetry smoke point alternately with no sink (the
//! `NullSink` zero-cost path) and with a live [`Recorder`], takes the
//! minimum wall clock of each arm (minimum, not mean — the floor is
//! the least noisy location statistic on a shared CI box), checks the
//! outcomes are bit-identical, and fails if the recorded arm exceeds
//! the sink-off arm by more than `SNIC_TELEMETRY_BUDGET_PCT` percent
//! (default 10).
//!
//! Invoked by `scripts/lint.sh`; exits 1 on breach.

use std::time::Instant;

use snic_bench::telemetry::{record_smoke, run_smoke, smoke_scale};
use snic_sim::Exec;

fn budget_pct() -> f64 {
    std::env::var("SNIC_TELEMETRY_BUDGET_PCT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10.0)
}

const REPS: usize = 3;

fn main() {
    let scale = smoke_scale();

    // Warm the memoized trace cache so neither arm pays for trace
    // recording.
    let baseline = run_smoke(Exec::Serial, &scale, None);

    let mut best_off = f64::INFINITY;
    let mut best_on = f64::INFINITY;
    for rep in 0..REPS {
        let t = Instant::now();
        let off = run_smoke(Exec::Serial, &scale, None);
        let off_s = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (on, summary, events) = record_smoke(Exec::Serial, &scale);
        let on_s = t.elapsed().as_secs_f64();

        for (i, (a, b)) in off.iter().zip(&on).enumerate() {
            assert_eq!(
                a.nfs, b.nfs,
                "rep {rep} job {i}: sink-on outcome diverged from sink-off"
            );
        }
        for (i, (a, b)) in baseline.iter().zip(&off).enumerate() {
            assert_eq!(a.nfs, b.nfs, "rep {rep} job {i}: run not deterministic");
        }
        assert!(!summary.is_empty(), "recorder captured no counters");
        assert!(!events.is_empty(), "recorder captured no events");

        best_off = best_off.min(off_s);
        best_on = best_on.min(on_s);
        println!("rep {rep}: sink-off {off_s:.3}s  sink-on {on_s:.3}s");
    }

    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    let budget = budget_pct();
    println!(
        "telemetry overhead: best sink-off {best_off:.3}s, best sink-on {best_on:.3}s \
         => {overhead_pct:+.2}% (budget {budget:.0}%)"
    );
    if overhead_pct > budget {
        eprintln!("FAIL: telemetry overhead {overhead_pct:+.2}% exceeds budget {budget:.0}%");
        std::process::exit(1);
    }
    println!("OK");
}
