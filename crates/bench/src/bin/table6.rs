//! Regenerate Table 6: NF memory profiles and TLB sizing, plus our
//! implementations' measured heap sizes for comparison.

use snic_bench::{render_table, tables, Scale};

fn main() {
    let rows: Vec<Vec<String>> = tables::table6()
        .into_iter()
        .map(|(kind, sizes, entries)| {
            vec![
                kind.name().to_string(),
                format!("{:.2}", sizes[0]),
                format!("{:.2}", sizes[1]),
                format!("{:.2}", sizes[2]),
                format!("{:.2}", sizes[3]),
                format!("{:.2}", sizes[4]),
                entries[0].to_string(),
                entries[1].to_string(),
                entries[2].to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 6: NF memory profiles (paper regions) and planner TLB entries",
            &[
                "NF",
                "Text",
                "Data",
                "Code",
                "Heap&stack",
                "Total",
                "Equal",
                "Flex-low",
                "Flex-high"
            ],
            &rows,
        )
    );

    // Our implementations' live heap estimates (the substitution check).
    let scale = Scale::from_args();
    let measured: Vec<Vec<String>> = snic_nf::NfKind::ALL
        .iter()
        .map(|&k| {
            let nf = snic_bench::streams::build_scaled(k, &scale, 1);
            vec![
                k.name().to_string(),
                format!("{:.2}", nf.memory_profile().heap_stack.as_mib_f64()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Our implementations: measured heap (MiB) at this scale",
            &["NF", "heap"],
            &measured,
        )
    );
}
