//! Ablation: static cache partitioning vs. SecDCP demand partitioning
//! (the §4.2 design alternative), and each mechanism in isolation.
//!
//! DESIGN.md calls out the static-vs-SecDCP choice; this bench
//! quantifies what each isolation mechanism costs by toggling them
//! independently: cache-partitioning-only, bus-partitioning-only, both
//! (S-NIC), and SecDCP instead of static slices.

use snic_bench::streams::all_traces;
use snic_bench::{median, render_table, Scale};
use snic_nf::NfKind;
use snic_uarch::bus::BusKind;
use snic_uarch::cache::Partition;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::run_colocated_warm;
use snic_uarch::stream::{AccessStream, ReplayStream};

fn main() {
    let scale = Scale::from_args();
    let l2 = 4 << 20;
    let tenants = 4u32;
    let traces = all_traces(&scale, 0xab1a);

    let variant = |name: &str, cfg: MachineConfig| -> (String, f64) {
        let kinds = [
            NfKind::Firewall,
            NfKind::Dpi,
            NfKind::Nat,
            NfKind::LoadBalancer,
        ];
        let streams = || -> Vec<Box<dyn AccessStream>> {
            kinds
                .iter()
                .map(|k| {
                    let t = &traces.iter().find(|(kk, _)| kk == k).unwrap().1;
                    // Replay twice: warm pass + measured pass.
                    let mut v = t.clone();
                    v.extend_from_slice(t);
                    Box::new(ReplayStream::new(v)) as Box<dyn AccessStream>
                })
                .collect()
        };
        let warmups: Vec<u64> = kinds
            .iter()
            .map(|k| traces.iter().find(|(kk, _)| kk == k).unwrap().1.len() as u64)
            .collect();
        let base = run_colocated_warm(&MachineConfig::commodity(tenants, l2), streams(), &warmups);
        let run = run_colocated_warm(&cfg, streams(), &warmups);
        let mut degs: Vec<f64> = (0..kinds.len())
            .map(|i| run.ipc_degradation_vs(&base, i))
            .collect();
        (name.to_string(), median(&mut degs))
    };

    let rows: Vec<Vec<String>> = [
        variant(
            "cache partitioning only",
            MachineConfig {
                l2_partition: Partition::StaticWays { tenants },
                ..MachineConfig::commodity(tenants, l2)
            },
        ),
        variant(
            "bus partitioning only",
            MachineConfig {
                bus: BusKind::Temporal { domains: tenants },
                ..MachineConfig::commodity(tenants, l2)
            },
        ),
        variant("both (S-NIC, static)", MachineConfig::snic(tenants, l2)),
        variant(
            "both (S-NIC, SecDCP 4/4/4/4)",
            MachineConfig::snic_secdcp(vec![4, 4, 4, 4], l2),
        ),
        variant(
            "both (SecDCP skewed 7/3/3/3)",
            MachineConfig::snic_secdcp(vec![7, 3, 3, 3], l2),
        ),
    ]
    .into_iter()
    .map(|(name, deg)| vec![name, format!("{deg:.3}%")])
    .collect();

    print!(
        "{}",
        render_table(
            "Ablation: median IPC degradation @4 NFs / 4MB L2 (paper S-NIC total: 0.93% median)",
            &["configuration", "median IPC degradation"],
            &rows,
        )
    );
}
