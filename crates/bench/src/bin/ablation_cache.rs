//! Ablation: static cache partitioning vs. SecDCP demand partitioning
//! (the §4.2 design alternative), and each mechanism in isolation.
//!
//! DESIGN.md calls out the static-vs-SecDCP choice; this bench
//! quantifies what each isolation mechanism costs by toggling them
//! independently: cache-partitioning-only, bus-partitioning-only, both
//! (S-NIC), and SecDCP instead of static slices. All variant runs (plus
//! the shared commodity baseline) are independent colocation
//! simulations, so they fan across the `snic-sim` worker pool as one
//! job list.

use snic_bench::streams::{all_traces, TraceSet};
use snic_bench::{median, render_table, Scale};
use snic_nf::NfKind;
use snic_sim::{run_jobs, SendStream, SimJob};
use snic_uarch::bus::BusKind;
use snic_uarch::cache::Partition;
use snic_uarch::config::MachineConfig;
use snic_uarch::stream::SharedReplayStream;

const KINDS: [NfKind; 4] = [
    NfKind::Firewall,
    NfKind::Dpi,
    NfKind::Nat,
    NfKind::LoadBalancer,
];

fn job(traces: &TraceSet, cfg: MachineConfig) -> SimJob {
    let find = |k: NfKind| {
        &traces
            .iter()
            .find(|(kk, _)| *kk == k)
            .expect("trace exists")
            .1
    };
    // Replay twice: warm pass + measured pass, over the shared
    // recording (no per-run copies).
    let streams: Vec<SendStream> = KINDS
        .iter()
        .map(|&k| SharedReplayStream::repeated(find(k).clone(), 2).into())
        .collect();
    let warmups: Vec<u64> = KINDS.iter().map(|&k| find(k).len() as u64).collect();
    SimJob::new(cfg, streams).with_warmups(warmups)
}

fn main() {
    let scale = Scale::from_args();
    let l2 = 4 << 20;
    let tenants = 4u32;
    let traces = all_traces(&scale, 0xab1a);

    let variants: Vec<(&str, MachineConfig)> = vec![
        (
            "cache partitioning only",
            MachineConfig {
                l2_partition: Partition::StaticWays { tenants },
                ..MachineConfig::commodity(tenants, l2)
            },
        ),
        (
            "bus partitioning only",
            MachineConfig {
                bus: BusKind::Temporal { domains: tenants },
                ..MachineConfig::commodity(tenants, l2)
            },
        ),
        ("both (S-NIC, static)", MachineConfig::snic(tenants, l2)),
        (
            "both (S-NIC, SecDCP 4/4/4/4)",
            MachineConfig::snic_secdcp(vec![4, 4, 4, 4], l2),
        ),
        (
            "both (SecDCP skewed 7/3/3/3)",
            MachineConfig::snic_secdcp(vec![7, 3, 3, 3], l2),
        ),
    ];

    // Job 0 is the shared commodity baseline; jobs 1.. are the variants.
    let mut jobs = vec![job(&traces, MachineConfig::commodity(tenants, l2))];
    jobs.extend(variants.iter().map(|(_, cfg)| job(&traces, cfg.clone())));
    let outcomes = run_jobs(jobs);
    let base = &outcomes[0];

    let rows: Vec<Vec<String>> = variants
        .iter()
        .zip(&outcomes[1..])
        .map(|((name, _), run)| {
            let mut degs: Vec<f64> = (0..KINDS.len())
                .map(|i| run.ipc_degradation_vs(base, i))
                .collect();
            vec![name.to_string(), format!("{:.3}%", median(&mut degs))]
        })
        .collect();

    print!(
        "{}",
        render_table(
            "Ablation: median IPC degradation @4 NFs / 4MB L2 (paper S-NIC total: 0.93% median)",
            &["configuration", "median IPC degradation"],
            &rows,
        )
    );
}
