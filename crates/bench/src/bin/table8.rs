//! Regenerate Table 8: memory utilization ratios, with our measured
//! Monitor MUR alongside the paper's values.

use snic_bench::{fig7, render_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let run = fig7::run(&scale);
    let rows: Vec<Vec<String>> = fig7::table8_rows(run.mur)
        .into_iter()
        .map(|(kind, peak, paper_mur, ours)| {
            vec![
                kind.name().to_string(),
                format!("{peak:.2}"),
                format!("{:.1}%", paper_mur * 100.0),
                ours.map(|m| format!("{:.1}%", m * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 8: memory utilization ratios (paper MURs: FW 100%, DPI 100%, NAT 72.3%, LB 30.2%, LPM 100%, Mon 68.3%)",
            &["NF", "prealloc MB", "paper MUR", "our measured MUR"],
            &rows,
        )
    );
    println!(
        "our Monitor: peak {} steady {} over {} flows",
        run.peak, run.steady, run.flows
    );
}
