//! Regenerate Table 2: estimated hardware costs for TLBs on
//! programmable cores.

use snic_bench::{render_table, tables};
use snic_cost::tlb_model::{A9_QUAD_AREA_MM2, A9_QUAD_POWER_W};

fn main() {
    let mut rows = Vec::new();
    for (mb, entries, per_count) in tables::table2() {
        let mut area_row = vec![
            format!("{mb}MB/core ({entries} entries)"),
            "Area (mm2)".into(),
        ];
        let mut power_row = vec![String::new(), "Power (W)".into()];
        for (cores, cost) in &per_count {
            let rel = if *cores == 4 {
                format!(
                    " ({:.2}%)",
                    cost.area_mm2 / (A9_QUAD_AREA_MM2 + cost.area_mm2) * 100.0
                )
            } else {
                String::new()
            };
            area_row.push(format!("{:.3}{rel}", cost.area_mm2));
            let relp = if *cores == 4 {
                format!(
                    " ({:.2}%)",
                    cost.power_w / (A9_QUAD_POWER_W + cost.power_w) * 100.0
                )
            } else {
                String::new()
            };
            power_row.push(format!("{:.3}{relp}", cost.power_w));
        }
        rows.push(area_row);
        rows.push(power_row);
    }
    print!(
        "{}",
        render_table(
            "Table 2: TLB costs for programmable cores (paper: 0.045mm2/0.026W @183x4 ... 1.956mm2/1.052W @512x48)",
            &["config", "metric", "4-core", "8-core", "16-core", "48-core"],
            &rows,
        )
    );
}
