//! Regenerate Table 3: TLB banks on virtualized accelerators.

use snic_bench::{render_table, tables};

fn main() {
    let mut rows = Vec::new();
    for (kind, entries, per_config) in tables::table3() {
        let mut area = vec![
            format!("{} (TLB {entries})", kind.name()),
            "Area (mm2)".into(),
        ];
        let mut power = vec![String::new(), "Power (W)".into()];
        for (clusters, cost) in &per_config {
            let _ = clusters;
            area.push(format!("{:.3}", cost.area_mm2));
            power.push(format!("{:.3}", cost.power_w));
        }
        rows.push(area);
        rows.push(power);
    }
    print!(
        "{}",
        render_table(
            "Table 3: accelerator TLB banks (paper: DPI 0.074/0.037 ZIP 0.091/0.044 RAID 0.050/0.023 @16 clusters)",
            &["accel", "metric", "16 clusters", "8 clusters", "4 clusters"],
            &rows,
        )
    );
}
