//! Regenerate Table 4: TLB banks for the virtual packet pipeline and
//! the DMA controller.

use snic_bench::{render_table, tables};

fn main() {
    let mut rows = Vec::new();
    for (name, entries, per_unit) in tables::table4() {
        let mut area = vec![format!("{name} (TLB {entries})"), "Area (mm2)".into()];
        let mut power = vec![String::new(), "Power (W)".into()];
        for (_, cost) in &per_unit {
            area.push(format!("{:.3}", cost.area_mm2));
            power.push(format!("{:.3}", cost.power_w));
        }
        rows.push(area);
        rows.push(power);
    }
    print!(
        "{}",
        render_table(
            "Table 4: VPP/DMA TLB banks (paper: 0.037mm2/0.017W @12 units each)",
            &["unit", "metric", "12 units", "6 units", "3 units"],
            &rows,
        )
    );
}
