//! Regenerate Figure 7: Monitor memory-usage time series.

use snic_bench::{fig7, Scale};

fn main() {
    let scale = Scale::from_args();
    let run = fig7::run(&scale);
    println!("== Figure 7: Monitor memory usage over a CAIDA-like window ==");
    println!("flows observed: {}", run.flows);
    println!("minimum preallocation (peak): {}", run.peak);
    println!("steady-state usage:           {}", run.steady);
    println!(
        "memory utilization ratio:     {:.1}% (paper: 68.3%)",
        run.mur * 100.0
    );
    println!();
    println!("{:>10}  {:>12}  curve", "t (ms)", "MiB");
    let max = run
        .series
        .iter()
        .map(|&(_, b)| b.bytes())
        .max()
        .unwrap_or(1)
        .max(1);
    for (t, b) in &run.series {
        let bar = "#".repeat((b.bytes() * 60 / max) as usize);
        println!(
            "{:>10.1}  {:>12.2}  {bar}",
            t.as_millis_f64(),
            b.as_mib_f64()
        );
    }
    println!();
    println!(
        "shape check: startup hugepage spike (2x pool) and HashMap-resize \
         spikes inflate the peak above steady state, exactly as in the paper."
    );
}
