//! Regenerate Table 5: TLB hardware costs per page-size policy.

use snic_bench::{render_table, tables};

fn main() {
    let rows: Vec<Vec<String>> = tables::table5()
        .into_iter()
        .map(|(name, entries, cost)| {
            vec![
                name.to_string(),
                format!("{entries}x48"),
                format!("{:.3}", cost.area_mm2),
                format!("{:.3}", cost.power_w),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Table 5: page-size policy vs TLB cost, 48 cores (paper: 183x16->0.538/0.311, 51x16->0.214/0.106, 13x16->0.150/0.069)",
            &["policy", "TLB size", "Area (mm2)", "Power (W)"],
            &rows,
        )
    );
    println!(
        "note: Table 5's row labels in the paper are swapped relative to the \
         §5.2 definitions; we follow §5.2 (Flex-low = small pages)."
    );
}
