//! Run every experiment binary in sequence (quick scale unless
//! `--full`). This is the one-shot regeneration entry point referenced
//! by EXPERIMENTS.md.
//!
//! Sibling binaries are invoked through `cargo run` so they are built on
//! demand; pass `--full` to forward the paper-scale flag to each.

use std::process::Command;

fn main() {
    let forward: Vec<&str> = if std::env::args().any(|a| a == "--full") {
        vec!["--full"]
    } else {
        vec![]
    };
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "tco",
        "headline",
        "fig6",
        "fig7",
        "fig8",
        "attacks",
        "ablation_cache",
        "fig5a",
        "fig5b",
    ];
    for bin in bins {
        println!("\n########## {bin} ##########");
        let status = Command::new("cargo")
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "snic-bench",
                "--bin",
                bin,
                "--",
            ])
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments completed");
}
