//! Run every experiment binary (quick scale unless `--full`). This is
//! the one-shot regeneration entry point referenced by EXPERIMENTS.md.
//!
//! Sibling binaries are invoked through `cargo run` so they are built
//! on demand; pass `--full` to forward the paper-scale flag to each.
//! The binaries are independent processes, so they fan across the
//! `snic-sim` worker pool with their output captured and printed in the
//! fixed input order — the transcript is byte-identical to a serial
//! run, only the wall clock changes.

use std::process::Command;

fn main() {
    let forward: Vec<&str> = if std::env::args().any(|a| a == "--full") {
        vec!["--full"]
    } else {
        vec![]
    };
    let bins = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "table8",
        "tco",
        "headline",
        "fig6",
        "fig7",
        "fig8",
        "attacks",
        "ablation_cache",
        "fig5a",
        "fig5b",
    ];
    // Build everything up front so the concurrent `cargo run`s below
    // only contend on a no-op build lock, not on compilation.
    let build = Command::new("cargo")
        .args(["build", "--release", "-q", "-p", "snic-bench", "--bins"])
        .status()
        .expect("failed to spawn cargo build");
    assert!(build.success(), "building the experiment binaries failed");

    let outputs = snic_sim::par_map(bins.to_vec(), |bin| {
        Command::new("cargo")
            .args([
                "run",
                "--release",
                "-q",
                "-p",
                "snic-bench",
                "--bin",
                bin,
                "--",
            ])
            .args(&forward)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"))
    });

    for (bin, out) in bins.iter().zip(outputs) {
        println!("\n########## {bin} ##########");
        print!("{}", String::from_utf8_lossy(&out.stdout));
        eprint!("{}", String::from_utf8_lossy(&out.stderr));
        assert!(out.status.success(), "{bin} failed");
    }
    println!("\nall experiments completed");
}
