//! Regenerate Table 7: accelerator memory profiles.

use snic_bench::{render_table, tables};

fn main() {
    let mut rows = Vec::new();
    for (kind, regions, total, entries) in tables::table7() {
        let region_str = regions
            .iter()
            .map(|(n, mb)| format!("{n}={mb:.2}MB"))
            .collect::<Vec<_>>()
            .join(" ");
        rows.push(vec![
            kind.name().to_string(),
            region_str,
            format!("{total:.2}"),
            entries.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "Table 7: accelerator buffers (paper: DPI 101.90MB/54, ZIP 132.24MB/70, RAID 8.13MB/5)",
            &["accel", "regions", "total MB", "TLB entries"],
            &rows,
        )
    );
}
