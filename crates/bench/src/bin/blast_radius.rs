//! Blast-radius fault matrix: per fault scenario, victim containment at
//! the device layer (scripted episodes + Pass-3 lint) and at the
//! microarchitectural layer (fig5-style colocation with perturbed
//! aggressor streams).

use snic_bench::blast::{blast_matrix, render_matrix, FaultScenario};
use snic_bench::Scale;

fn main() {
    let scale = Scale::from_args();
    let rows = blast_matrix(&scale);
    print!("{}", render_matrix(&rows));
    println!(
        "{} scenarios; expectation: S-NIC victims bit-identical + transcripts lint clean, \
         commodity victims perturbed (except pure management-plane faults at the device layer).",
        FaultScenario::ALL.len()
    );
    for r in &rows {
        for f in &r.device_commodity.findings {
            println!("  commodity/{}: {f}", r.scenario.name());
        }
        for f in &r.device_snic.findings {
            println!("  S-NIC/{}: {f}", r.scenario.name());
        }
    }
}
