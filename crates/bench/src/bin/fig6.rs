//! Regenerate Figure 6: trusted-instruction execution latency.

use snic_bench::{fig6, render_table};

fn main() {
    let rows: Vec<Vec<String>> = fig6::run()
        .into_iter()
        .map(|r| {
            vec![
                r.kind.name().to_string(),
                format!("{:.2}", r.memory.as_mib_f64()),
                format!("{:.4}", r.launch.tlb_setup.as_millis_f64()),
                format!("{:.4}", r.launch.denylisting.as_millis_f64()),
                format!("{:.2}", r.launch.sha_digest.as_millis_f64()),
                format!("{:.2}", r.launch.total().as_millis_f64()),
                format!("{:.4}", r.teardown.allowlisting.as_millis_f64()),
                format!("{:.2}", r.teardown.scrub.as_millis_f64()),
                format!("{:.2}", r.teardown.total().as_millis_f64()),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            "Figure 6: nf_launch / nf_destroy latency (ms) — paper: digest dominates launch (LB 29.62ms, Mon 763.52ms); scrub is 99.99% of destroy (2.11-54.23ms)",
            &["NF", "mem MB", "tlb+cfg", "denylist", "sha", "launch total", "allowlist", "scrub", "destroy total"],
            &rows,
        )
    );
    println!("nf_attest: 5.596 ms RSA + 0.004 ms SHA (size-independent, paper 5.6 ms)");
}
