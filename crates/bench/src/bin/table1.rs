//! Regenerate Table 1: the management APIs and the trusted instructions
//! they invoke — exercised live against a device rather than merely
//! printed.

use rand::SeedableRng;
use snic_bench::render_table;
use snic_core::attest::{FunctionAttestation, Verifier};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_core::nicos::NicOs;
use snic_crypto::dh::DhParams;
use snic_crypto::keys::VendorCa;
use snic_types::{ByteSize, CoreId};

fn main() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let vendor = VendorCa::new(&mut rng);
    let mut device = SmartNic::new(NicConfig::small(NicMode::Snic), &vendor);
    let mut os = NicOs::new(&mut device);

    // NF_create → nf_launch.
    let receipt = os
        .nf_create(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(8),
            NfImage {
                code: b"table1-demo".to_vec(),
                config: vec![],
            },
        ))
        .expect("NF_create");
    let create_result = format!(
        "nf_id={} hash={}…  ({:.1} ms)",
        receipt.nf_id,
        &snic_crypto::sha256::to_hex(&receipt.measurement)[..8],
        receipt.latency.total().as_millis_f64()
    );

    // nf_attest with a Diffie–Hellman transcript.
    let params = DhParams::tiny_test_group();
    let mut verifier = Verifier::hello(&mut rng);
    let nonce = verifier.nonce;
    let attestation =
        FunctionAttestation::respond(&mut rng, os.device(), receipt.nf_id, &params, nonce)
            .expect("nf_attest");
    let verified = verifier
        .accept(
            &mut rng,
            vendor.public(),
            &receipt.measurement,
            &attestation.quote,
        )
        .is_ok();
    let attest_result = format!("signed <Hash(init), g, p, n, g^x>; verifier accepts={verified}");

    // NF_destroy → nf_teardown.
    let teardown = os.nf_destroy(receipt.nf_id).expect("NF_destroy");
    let destroy_result = format!(
        "resources released, memory scrubbed ({:.2} ms)",
        teardown.latency.total().as_millis_f64()
    );

    print!(
        "{}",
        render_table(
            "Table 1: management APIs <-> trusted instructions (executed live)",
            &["management API", "trusted instruction", "observed result"],
            &[
                vec![
                    "NF_create(net_config, core_config, ...)".into(),
                    "nf_launch: core_mask, page_table, pkt_pipeline_config, accel_mask".into(),
                    create_result,
                ],
                vec![
                    "N/A (function-invoked)".into(),
                    "nf_attest: ptr to <g, p, n, g^x mod p>".into(),
                    attest_result,
                ],
                vec![
                    "NF_destroy(nf_id)".into(),
                    "nf_teardown: nf_id".into(),
                    destroy_result,
                ],
            ],
        )
    );
}
