//! Regenerate Figure 5b: IPC degradation vs. degree of cotenancy at a
//! 4 MB L2 (the Marvell NIC's size).

use snic_bench::{fig5, render_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let counts: Vec<usize> = if std::env::args().any(|a| a == "--full") {
        vec![2, 3, 4, 8, 16]
    } else {
        vec![2, 4, 8]
    };
    let results = fig5::fig5b(&scale, &counts, 4 << 20);
    let mut rows = Vec::new();
    for (n, points) in &results {
        for p in points {
            rows.push(vec![
                format!("{n} NFs"),
                p.kind.name().to_string(),
                format!("{:.3}", p.median_pct),
                format!("{:.3}", p.p1_pct),
                format!("{:.3}", p.p99_pct),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Figure 5b: IPC degradation (%) vs cotenancy @4MB L2 (paper: 2NF 0.24%, 4NF 0.93%/1.66%, 8NF 3.41%/5.12%, 16NF 9.44%/13.71%)",
            &["cotenancy", "NF", "median", "p1", "p99"],
            &rows,
        )
    );
    for (n, points) in &results {
        let (mean, worst) = fig5::headline_stats(points);
        println!("{n} NFs: mean-of-medians {mean:.2}%, worst p99 {worst:.2}%");
    }
}
