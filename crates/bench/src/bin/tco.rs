//! Regenerate the §5.2 TCO analysis.

use snic_cost::tco::{tco_report, TcoInputs};

fn main() {
    let r = tco_report(&TcoInputs::default());
    println!("== §5.2 three-year TCO analysis ==");
    println!(
        "LiquidIO per-core TCO:  ${:.2}   (paper $38.97)",
        r.nic_per_core
    );
    println!(
        "Host core per-core TCO: ${:.2}  (paper $163.56)",
        r.host_per_core
    );
    println!(
        "S-NIC per-core TCO:     ${:.2}   (paper $42.53)",
        r.snic_per_core
    );
    println!("TCO advantage before:   {:.3}x", r.advantage_before);
    println!("TCO advantage with S-NIC: {:.3}x", r.advantage_after);
    println!(
        "advantage decrease:     {:.2}%  (paper 8.37%; i.e. {:.1}% of the benefit preserved)",
        r.advantage_decrease * 100.0,
        (1.0 - r.advantage_decrease) * 100.0
    );
}
