//! `uarch_perf` — wall-clock harness for the microarchitectural engine
//! and keeper of the repo-root `BENCH_uarch.json` perf baseline.
//!
//! Modes:
//!
//! ```text
//! uarch_perf                  # measure (median of 5) and print the JSON
//! uarch_perf --full           # same at the paper scale
//! uarch_perf --shards 8       # fan S-NIC cells across up to 8 threads
//! uarch_perf --write          # also write BENCH_uarch.json, preserving
//!                             #   the baseline events_per_sec_before
//! uarch_perf --smoke          # lint-gate mode: median of 3, compare
//!                             #   against the committed baseline, fail
//!                             #   on >10% regression
//! SNIC_BLESS_BENCH=1 uarch_perf --smoke   # re-bless the baseline
//! ```
//!
//! The regression tolerance is `SNIC_BENCH_TOLERANCE_PCT` (default 10).
//! `--shards` defaults to 1 so the gate number stays comparable across
//! hosts with different core counts; the report always records the
//! `shards` and `host_threads` it was measured with.

use snic_bench::perf::{baseline_before, extract_f64, run, run_extras, to_json};
use snic_bench::Scale;

/// Repo-root location of the committed baseline.
fn bench_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_uarch.json")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let smoke = has("--smoke");
    let (scale, scale_name) = if has("--full") {
        (Scale::paper(), "paper")
    } else {
        (Scale::quick(), "quick")
    };
    let shards = match args.iter().position(|a| a == "--shards") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                eprintln!("uarch_perf: --shards needs a positive integer");
                std::process::exit(2);
            }),
        None => 1,
    };
    let reps = if smoke { 3 } else { 5 };

    eprintln!("uarch_perf: measuring (scale={scale_name}, shards={shards}, median of {reps})...");
    let report = run(&scale, reps, shards);
    for p in &report.points {
        eprintln!(
            "  {:>14}: {:>10} events in {:.4}s = {:>12.0} events/s",
            p.label, p.events, p.secs, p.eps
        );
    }
    eprintln!(
        "uarch_perf: events/sec = {:.0} ({} events, {} shards on {} host threads)",
        report.events_per_sec, report.total_events, report.shards, report.host_threads
    );

    let path = bench_path();
    let committed = std::fs::read_to_string(&path).ok();
    let before = committed.as_deref().and_then(baseline_before);
    let after = committed
        .as_deref()
        .and_then(|j| extract_f64(j, "events_per_sec_after"));

    if smoke {
        let bless = std::env::var("SNIC_BLESS_BENCH").is_ok_and(|v| v == "1");
        if bless {
            eprintln!("uarch_perf: measuring streaming + multicore companion entries...");
            let extras = run_extras(&scale, reps, shards.max(3));
            std::fs::write(&path, to_json(&report, scale_name, before, Some(&extras)))
                .expect("write BENCH_uarch.json");
            eprintln!("uarch_perf: blessed new baseline -> {}", path.display());
            return;
        }
        let Some(after) = after else {
            eprintln!(
                "uarch_perf: no committed baseline at {} (run with --write or \
                 SNIC_BLESS_BENCH=1 --smoke first)",
                path.display()
            );
            std::process::exit(1);
        };
        let tolerance: f64 = std::env::var("SNIC_BENCH_TOLERANCE_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10.0);
        let floor = after * (1.0 - tolerance / 100.0);
        if report.events_per_sec < floor {
            eprintln!(
                "uarch_perf: FAIL — measured {:.0} events/s is more than {tolerance}% below \
                 the committed baseline {after:.0} (floor {floor:.0}). If the slowdown is \
                 intentional, re-bless with SNIC_BLESS_BENCH=1 uarch_perf --smoke.",
                report.events_per_sec
            );
            std::process::exit(1);
        }
        eprintln!(
            "uarch_perf: OK — measured {:.0} events/s vs baseline {after:.0} \
             (floor {floor:.0}, tolerance {tolerance}%)",
            report.events_per_sec
        );
        return;
    }

    eprintln!("uarch_perf: measuring streaming + multicore companion entries...");
    let extras = run_extras(&scale, reps, shards.max(3));
    eprintln!(
        "uarch_perf: streaming {:.0} events/s ({} events); multicore (shards={}) {:.0} events/s",
        extras.streaming.events_per_sec,
        extras.streaming.total_events,
        extras.multicore.shards,
        extras.multicore.events_per_sec
    );
    let json = to_json(&report, scale_name, before, Some(&extras));
    if has("--write") {
        std::fs::write(&path, &json).expect("write BENCH_uarch.json");
        eprintln!("uarch_perf: wrote {}", path.display());
    }
    println!("{json}");
}
