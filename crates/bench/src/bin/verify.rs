//! `snic-verify` from the command line: run both verifier passes against
//! live device models and print the typed reports.
//!
//! Pass 1 verifies the manifest sets of freshly provisioned devices in
//! both modes, then demonstrates a refusal: a launch whose region
//! overlaps a live function is rejected by the verifier (with a paper
//! citation) before any device state changes. Pass 2 replays every
//! attack scenario under the trace recorder and prints what the offline
//! linter flagged.

use rand::SeedableRng;
use snic_attacks::traced::lint_all;
use snic_bench::render_table;
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_types::{ByteSize, CoreId, SnicError};

fn provision(mode: NicMode) -> (SmartNic, snic_types::NfId) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);
    let mut first = None;
    for (core, mem) in [(0u16, 8u64), (1, 4)] {
        let receipt = nic
            .nf_launch(LaunchRequest::minimal(
                CoreId(core),
                ByteSize::mib(mem),
                NfImage {
                    code: format!("tenant-{core}").into_bytes(),
                    config: vec![],
                },
            ))
            .expect("provisioning launch");
        first.get_or_insert(receipt.nf_id);
    }
    (nic, first.expect("two launches"))
}

fn main() {
    println!("== Pass 1: manifest verification ==\n");
    for mode in [NicMode::Commodity, NicMode::Snic] {
        let (mut nic, tenant0) = provision(mode);
        println!("{mode:?}: {}", nic.verify_state());

        // A third tenant asks for a region on top of tenant 0.
        let (base, _) = nic.record_of(tenant0).expect("tenant 0 live").region;
        let mut overlapping = LaunchRequest::minimal(
            CoreId(2),
            ByteSize::mib(4),
            NfImage {
                code: b"squatter".to_vec(),
                config: vec![],
            },
        );
        overlapping.region_base = Some(base + 0x1000);
        match nic.nf_launch(overlapping) {
            Err(SnicError::Verification(report)) => {
                println!("{mode:?}: overlapping launch refused:\n{report}");
            }
            other => println!("{mode:?}: UNEXPECTED launch outcome: {other:?}"),
        }
    }

    println!("== Pass 2: trace linting of the attack scenarios ==\n");
    let mut rows = Vec::new();
    for mode in [NicMode::Commodity, NicMode::Snic] {
        for scenario in lint_all(mode) {
            if scenario.findings.is_empty() {
                rows.push(vec![
                    format!("{mode:?}"),
                    scenario.name.to_string(),
                    "clean".to_string(),
                    String::new(),
                ]);
            } else {
                for f in &scenario.findings {
                    rows.push(vec![
                        format!("{mode:?}"),
                        scenario.name.to_string(),
                        format!("{:?}", f.kind),
                        format!("{} x{} [{}]", f.actor, f.count, f.citation()),
                    ]);
                }
            }
        }
    }
    print!(
        "{}",
        render_table(
            "Pass 2 findings (commodity traces must light up; S-NIC traces must be clean)",
            &["mode", "scenario", "finding", "attribution"],
            &rows,
        )
    );
}
