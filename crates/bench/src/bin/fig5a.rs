//! Regenerate Figure 5a: IPC degradation vs. L2 cache size with two
//! colocated NFs.

use snic_bench::{fig5, render_table, Scale};

fn main() {
    let scale = Scale::from_args();
    let sizes: Vec<u64> = if std::env::args().any(|a| a == "--full") {
        // The paper's full sweep: 8 KB .. 16 MB.
        (0..12).map(|i| (8 * 1024u64) << i).collect()
    } else {
        vec![64 << 10, 512 << 10, 4 << 20, 16 << 20]
    };
    let results = fig5::fig5a(&scale, &sizes);
    let mut rows = Vec::new();
    for (l2, points) in &results {
        for p in points {
            rows.push(vec![
                format!("{}KB", l2 / 1024),
                p.kind.name().to_string(),
                format!("{:.3}", p.median_pct),
                format!("{:.3}", p.p1_pct),
                format!("{:.3}", p.p99_pct),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            "Figure 5a: IPC degradation (%) vs L2 size, 2 colocated NFs (paper: ~0-3%, worst at small caches; FW/DPI/NAT worst)",
            &["L2", "NF", "median", "p1", "p99"],
            &rows,
        )
    );
    if let Some((_, points)) = results.iter().find(|(l2, _)| *l2 == 4 << 20) {
        let (mean, worst) = fig5::headline_stats(points);
        println!("@4MB L2, 2 NFs: mean-of-medians {mean:.2}% (paper 0.24%), worst p99 {worst:.2}%");
    }
}
