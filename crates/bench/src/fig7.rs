//! Figure 7 and Table 8: Monitor memory time series and memory
//! utilization ratios.
//!
//! The Monitor NF observes a CAIDA-like trace; its allocation tracker
//! records the hugepage-init spike and every HashMap-resize spike. The
//! time series is the paper's Figure 7; the peak/steady ratio feeds the
//! Table 8 MUR row. For the other five NFs the MURs come from the
//! paper's own measured peak vs. steady values (their spikes are DPDK
//! artifacts of the same two shapes).

use snic_nf::{MonitorNf, NfKind, NullSink};
use snic_trace::{CaidaConfig, CaidaLikeTrace};
use snic_types::{ByteSize, Picos};

use crate::Scale;

/// The Monitor experiment output.
#[derive(Debug)]
pub struct MonitorRun {
    /// Sampled `(time, bytes)` usage curve.
    pub series: Vec<(Picos, ByteSize)>,
    /// Minimum S-NIC preallocation (peak).
    pub peak: ByteSize,
    /// Steady-state usage.
    pub steady: ByteSize,
    /// Memory utilization ratio.
    pub mur: f64,
    /// Flows observed.
    pub flows: usize,
}

/// Drive the Monitor over a CAIDA-like trace of `scale.monitor_ms`.
///
/// Unlike the fig5/fig6/fig8 sweeps this is a *single* stateful
/// simulation (one Monitor, one ordered flow trace), so there is
/// nothing to fan out; it runs concurrently with its sibling
/// experiments via the `all_experiments` driver instead.
pub fn run(scale: &Scale) -> MonitorRun {
    let trace = CaidaLikeTrace::generate(
        &CaidaConfig {
            flow_arrival_rate: 250_000.0,
            ..CaidaConfig::default()
        },
        Picos::millis(scale.monitor_ms),
    );
    let mut monitor = MonitorNf::new(ByteSize::mib(8));
    for rec in trace.records() {
        monitor.observe(rec.flow, rec.time, &mut NullSink);
    }
    MonitorRun {
        series: monitor.tracker().time_series(60),
        peak: monitor.peak_bytes(),
        steady: monitor.steady_bytes(),
        mur: monitor.tracker().mur(),
        flows: monitor.tracked_flows(),
    }
}

/// Table 8's MUR values from the paper's own peak/steady measurements,
/// alongside our Monitor measurement.
pub fn table8_rows(our_monitor_mur: f64) -> Vec<(NfKind, f64, f64, Option<f64>)> {
    NfKind::ALL
        .iter()
        .map(|&k| {
            let peak = snic_nf::paper_profile(k).total().as_mib_f64();
            let steady = snic_nf::profile::paper_steady_state_mb(k);
            let paper_mur = steady / peak;
            let ours = (k == NfKind::Monitor).then_some(our_monitor_mur);
            (k, peak, paper_mur, ours)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_run_has_spike_shape() {
        let r = run(&Scale::quick());
        assert!(r.flows > 1000, "{} flows", r.flows);
        assert!(r.peak > r.steady, "peak {} vs steady {}", r.peak, r.steady);
        assert!(r.mur < 1.0 && r.mur > 0.2, "mur {}", r.mur);
        assert_eq!(r.series.len(), 60);
    }

    #[test]
    fn series_grows_with_flow_arrivals() {
        let r = run(&Scale::quick());
        // Memory at the end exceeds memory shortly after start (map grew).
        let early = r.series[5].1;
        let late = r.series.last().unwrap().1;
        assert!(late >= early);
    }

    #[test]
    fn table8_murs_match_paper() {
        let rows = table8_rows(0.7);
        let get = |k: NfKind| rows.iter().find(|r| r.0 == k).unwrap().2;
        assert!((get(NfKind::Firewall) - 1.0).abs() < 0.01);
        assert!((get(NfKind::Nat) - 0.723).abs() < 0.01);
        assert!((get(NfKind::LoadBalancer) - 0.302).abs() < 0.01);
        assert!((get(NfKind::Monitor) - 0.683).abs() < 0.01);
    }
}
