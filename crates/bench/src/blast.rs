//! Blast-radius differential: what does one tenant's fault cost its
//! neighbors?
//!
//! For every [`FaultScenario`] the harness measures containment at two
//! layers and under both personalities:
//!
//! - **Device layer** ([`device_differential`]): a scripted episode
//!   drives a [`SmartNic`] through launch / traffic / fault / teardown /
//!   relaunch twice — once clean, once with the scenario's deterministic
//!   [`FaultPlan`] armed — and compares the *victim's* observables
//!   (delivered packets, payload digest, TX availability) plus a
//!   data-remanence probe of the recycled region. The faulted episode's
//!   transcript is linted by `snic-verify` Pass 3.
//! - **Microarchitectural layer** ([`uarch_jobs`]): the fig5-style
//!   colocation engine replays a fixed victim trace against an
//!   aggressor + NIC-OS trace pair, then replays it again with the
//!   aggressor/NIC-OS streams perturbed the way the fault would perturb
//!   them (early crash, retry storm, scrub sweep...). Under S-NIC the
//!   victim's [`NfRunStats`] must be **bit-identical** with and without
//!   the fault; on the commodity machine the shared L2 and FCFS bus let
//!   the perturbation through.
//!
//! Every run is deterministic: no wall clock, no unseeded RNG, and the
//! sweep fans through `snic-sim`'s order-preserving pool, so the serial
//! and parallel matrices are byte-identical
//! (`crates/bench/tests/fault_determinism.rs`).

use rand::SeedableRng;
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_core::nicos::{NicOs, RetryPolicy};
use snic_crypto::keys::VendorCa;
use snic_faults::{
    render_transcript, FaultEventKind, FaultKind, FaultPlan, FaultRecord, FaultSite,
};
use snic_nf::NfKind;
use snic_pktio::rules::{RuleMatch, SwitchRule};
use snic_sim::{execute, map_exec, Exec, SendStream, SimJob};
use snic_types::packet::PacketBuilder;
use snic_types::{AccelKind, ByteSize, CoreId, NfId, Packet, Protocol, SnicError};
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::RunOutcome;
use snic_uarch::stream::{Access, AccessKind, ReplayStream, SharedReplayStream};
use snic_verify::{lint_fault_transcript, Finding};

use crate::streams::{all_traces, SharedTrace, TraceSet};
use crate::{render_table, Scale};

/// L2 size used for the microarchitectural differential: small enough
/// that the tiny recorded traces still thrash it: commodity cache
/// sharing then makes any aggressor perturbation
/// visible in the victim's hit rates.
pub const BLAST_L2_BYTES: u64 = 32 << 10;

/// One injectable failure mode, spanning the fault sites of §4.3
/// (accelerators), §4.6 (teardown/scrub/lifecycle) and the transient
/// management-plane failures in between.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultScenario {
    /// An NF core crashes mid-datapath and sprays wild stores.
    NfCrash,
    /// An accelerator cluster bound to the aggressor dies (§4.3
    /// cluster-fatal).
    AccelClusterFault,
    /// A bus error hits the aggressor's DMA transaction.
    DmaBusError,
    /// Transient DRAM + accelerator-pool exhaustion at `nf_launch`.
    TransientExhaustion,
    /// The (untrusted, restartable) NIC OS crashes mid-call.
    NicOsRestart,
    /// Power is lost in the middle of a teardown scrub.
    PowerLossMidTeardown,
}

impl FaultScenario {
    /// Every scenario, in matrix order.
    pub const ALL: [FaultScenario; 6] = [
        FaultScenario::NfCrash,
        FaultScenario::AccelClusterFault,
        FaultScenario::DmaBusError,
        FaultScenario::TransientExhaustion,
        FaultScenario::NicOsRestart,
        FaultScenario::PowerLossMidTeardown,
    ];

    /// Short name for tables and labels.
    pub fn name(self) -> &'static str {
        match self {
            FaultScenario::NfCrash => "nf-crash",
            FaultScenario::AccelClusterFault => "accel-cluster-fault",
            FaultScenario::DmaBusError => "dma-bus-error",
            FaultScenario::TransientExhaustion => "transient-exhaustion",
            FaultScenario::NicOsRestart => "nicos-restart",
            FaultScenario::PowerLossMidTeardown => "power-loss-mid-teardown",
        }
    }

    /// The deterministic injection plan the device episode arms. Event
    /// ordinals are pinned to the scripted episode: the first `DataPath`
    /// event after arming is the aggressor's poll, the second `Dma`
    /// event is the aggressor's host transfer (the first seeds the
    /// remanence probe), and so on.
    pub fn plan(self) -> FaultPlan {
        match self {
            FaultScenario::NfCrash => {
                FaultPlan::none().on_nth(FaultSite::DataPath, 1, FaultKind::NfCrash)
            }
            FaultScenario::AccelClusterFault => {
                FaultPlan::none().on_nth(FaultSite::Accel, 1, FaultKind::AccelClusterFault)
            }
            FaultScenario::DmaBusError => {
                FaultPlan::none().on_nth(FaultSite::Dma, 2, FaultKind::DmaBusError)
            }
            FaultScenario::TransientExhaustion => FaultPlan::none()
                .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
                .on_nth(FaultSite::Launch, 2, FaultKind::AccelPoolExhaustion),
            FaultScenario::NicOsRestart => {
                FaultPlan::none().on_nth(FaultSite::NicOs, 1, FaultKind::NicOsCrash)
            }
            FaultScenario::PowerLossMidTeardown => {
                FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss)
            }
        }
    }
}

// --------------------------------------------------------------------
// Device-layer episodes
// --------------------------------------------------------------------

/// Everything the victim can observe about its own service during an
/// episode. Bit-compared between the clean and the faulted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimObservables {
    /// Packets the victim successfully polled.
    pub delivered: u32,
    /// FNV-1a digest over the polled packet bytes (catches silent
    /// corruption, not just loss).
    pub payload_digest: u64,
    /// Whether the victim's TX path stayed available.
    pub tx_ok: bool,
}

/// The result of one scripted episode on one device.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// The victim function's id.
    pub victim: NfId,
    /// What the victim observed.
    pub observables: VictimObservables,
    /// Whether the remanence probe of the recycled aggressor region
    /// read back all zeros.
    pub residue_clean: bool,
    /// The fault/lifecycle transcript of the run.
    pub transcript: Vec<FaultRecord>,
}

fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = if seed == 0 {
        0xcbf2_9ce4_8422_2325
    } else {
        seed
    };
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pkt(dst_port: u16, fill: u8) -> Packet {
    PacketBuilder::new(0x0a00_0001, 0x0a00_0002, Protocol::Udp, 4096, dst_port)
        .payload(vec![fill; 96])
        .build()
}

fn port_rule(dst_port: u16) -> SwitchRule {
    SwitchRule {
        dst_port: RuleMatch::Exact(dst_port),
        priority: 5,
        ..SwitchRule::any(NfId(0))
    }
}

const VICTIM_PORT: u16 = 100;
const AGGRESSOR_PORT: u16 = 200;
/// Offset inside the aggressor's region where the episode plants a
/// secret via DMA; the remanence probe reads it back after the region
/// is recycled.
const SECRET_OFF: u64 = 2048;
const SECRET: [u8; 64] = [0x5e; 64];
const HOST_WINDOW: (u64, u64) = (0x1000, 0x1_0000);

/// Run the scripted episode on a fresh device.
///
/// The script is identical for every scenario and both personalities —
/// launch victim + aggressor, deliver traffic, plant a DMA secret,
/// exercise the aggressor's data/accel/DMA paths, admit a third
/// function with retry, read the victim's service, tear the aggressor
/// down and recycle its region — so the only degree of freedom is the
/// armed [`FaultPlan`]. `faulted == false` arms an empty plan and is
/// the baseline the differential compares against.
pub fn run_episode(mode: NicMode, scenario: FaultScenario, faulted: bool) -> EpisodeReport {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xb1a5);
    let vendor = VendorCa::new(&mut rng);
    let mut nic = SmartNic::new(NicConfig::small(mode), &vendor);

    // Victim on core 0, aggressor on core 1 (with an accelerator
    // cluster and a host DMA window so every fault site is reachable).
    let mut victim_req = LaunchRequest::minimal(
        CoreId(0),
        ByteSize::mib(4),
        NfImage {
            code: vec![0x11; 128],
            config: vec![0x22; 64],
        },
    );
    victim_req.rules.push(port_rule(VICTIM_PORT));
    let victim = nic.nf_launch(victim_req).expect("victim launch").nf_id;

    let mut aggr_req = LaunchRequest::minimal(
        CoreId(1),
        ByteSize::mib(4),
        NfImage {
            code: vec![0x33; 128],
            config: vec![0x44; 64],
        },
    );
    aggr_req.rules.push(port_rule(AGGRESSOR_PORT));
    aggr_req.accel = vec![(AccelKind::Zip, 1)];
    aggr_req.host_window = Some(HOST_WINDOW);
    let aggr = nic.nf_launch(aggr_req).expect("aggressor launch").nf_id;
    let aggr_base = nic.record_of(aggr).expect("aggressor record").region.0;

    // Arm the plan only now, so the two admission launches above do not
    // consume Launch-site ordinals.
    nic.inject_faults(if faulted {
        scenario.plan()
    } else {
        FaultPlan::none()
    });

    // Traffic: four packets each, interleaved victim-first.
    for i in 0..4u8 {
        let _ = nic.rx_packet(&pkt(VICTIM_PORT, 0x60 + i));
        let _ = nic.rx_packet(&pkt(AGGRESSOR_PORT, 0xa0 + i));
    }

    // Plant the secret in the aggressor's region (first Dma ordinal).
    nic.host_mem().write(HOST_WINDOW.0, &SECRET);
    let _ = nic.dma_from_host(
        aggr,
        CoreId(1),
        SECRET_OFF,
        HOST_WINDOW.0,
        SECRET.len() as u64,
    );

    // Aggressor-side triggers, one per fault site. Each may fail under
    // injection; the script carries on regardless, as a real
    // multi-tenant device would.
    let _ = nic.poll_packet(aggr);
    let _ = nic.poll_packet(aggr);
    let _ = nic.accel_submit(aggr);
    let _ = nic.dma_to_host(aggr, CoreId(1), SECRET_OFF, HOST_WINDOW.0 + 0x100, 64);

    // Management plane: admit a third function with capped backoff (the
    // transient-exhaustion and NIC-OS-restart scenarios hit here).
    {
        let mut os = NicOs::new(&mut nic);
        let _ = os.nf_create_with_retry(
            LaunchRequest::minimal(CoreId(2), ByteSize::mib(2), NfImage::default()),
            RetryPolicy::default(),
        );
    }

    // The victim reads its own service.
    let mut delivered = 0u32;
    let mut digest = 0u64;
    for _ in 0..4 {
        if let Ok(Some(p)) = nic.poll_packet(victim) {
            delivered += 1;
            digest = fnv1a(digest, &p.data);
        }
    }
    let tx_ok = nic.tx_packet(victim, pkt(VICTIM_PORT, 0xee)).is_ok();

    // Teardown the aggressor and recycle its region under a placement
    // hint, resuming any power-lost scrub first.
    let _ = nic.nf_teardown(aggr);
    if nic.is_crashed() {
        nic.restore_power();
    }
    let relaunch = |nic: &mut SmartNic| {
        let mut r = LaunchRequest::minimal(CoreId(1), ByteSize::mib(4), NfImage::default());
        r.region_base = Some(aggr_base);
        nic.nf_launch(r)
    };
    if let Err(SnicError::ScrubPending { .. }) = relaunch(&mut nic) {
        nic.resume_scrubs();
        let _ = relaunch(&mut nic);
    }

    // Remanence probe: does the recycled region still hold the secret?
    let mut probe = [0u8; SECRET.len()];
    let _ = nic.mem_read(
        snic_mem::guard::Principal::TrustedHardware,
        aggr_base + SECRET_OFF,
        &mut probe,
    );
    let residue_clean = probe.iter().all(|&b| b == 0);

    EpisodeReport {
        victim,
        observables: VictimObservables {
            delivered,
            payload_digest: digest,
            tx_ok,
        },
        residue_clean,
        transcript: nic.take_fault_log(),
    }
}

/// The device-layer verdict for one `(mode, scenario)` cell.
#[derive(Debug, Clone)]
pub struct DeviceDiff {
    /// Victim observables bit-identical between the clean and faulted
    /// episode.
    pub victim_intact: bool,
    /// The recycled region read back as zeros in the faulted episode.
    pub residue_clean: bool,
    /// Pass-3 findings over the faulted episode's transcript.
    pub findings: Vec<Finding>,
    /// Rendered faulted-episode transcript (byte-comparable).
    pub transcript: String,
}

/// Run the clean/faulted episode pair for one cell, note any victim
/// perturbation into the transcript, and lint it with Pass 3.
pub fn device_differential(mode: NicMode, scenario: FaultScenario) -> DeviceDiff {
    let clean = run_episode(mode, scenario, false);
    let mut fault = run_episode(mode, scenario, true);

    let mut perturbed: Vec<&'static str> = Vec::new();
    if fault.observables.delivered != clean.observables.delivered {
        perturbed.push("rx_delivered");
    }
    if fault.observables.payload_digest != clean.observables.payload_digest {
        perturbed.push("rx_payload_digest");
    }
    if fault.observables.tx_ok != clean.observables.tx_ok {
        perturbed.push("tx_available");
    }
    let victim_intact = perturbed.is_empty();
    // Observed perturbations become transcript records so Pass 3 can
    // attribute the blast radius.
    let (mut seq, at) = fault
        .transcript
        .last()
        .map(|r| (r.seq + 1, r.at))
        .unwrap_or((0, snic_types::Picos::ZERO));
    for metric in perturbed {
        fault.transcript.push(FaultRecord {
            seq,
            at,
            nf: Some(fault.victim),
            kind: FaultEventKind::VictimPerturbed { metric },
        });
        seq += 1;
    }

    DeviceDiff {
        victim_intact,
        residue_clean: fault.residue_clean,
        findings: lint_fault_transcript(&fault.transcript),
        transcript: render_transcript(&fault.transcript),
    }
}

// --------------------------------------------------------------------
// Microarchitectural layer
// --------------------------------------------------------------------

/// How a scenario perturbs the aggressor and NIC-OS reference streams.
/// The *victim* stream is never touched: any victim-visible difference
/// must therefore flow through a shared resource.
fn perturb_streams(
    scenario: FaultScenario,
    aggr: &[Access],
    nicos: &[Access],
) -> (Vec<Access>, Vec<Access>) {
    let store = |addr: u64| Access {
        insns: 1,
        addr,
        kind: AccessKind::Store,
    };
    match scenario {
        // The aggressor dies a third of the way in.
        FaultScenario::NfCrash => (aggr[..aggr.len() / 3].to_vec(), nicos.to_vec()),
        // Half a run, then an error-handling store storm across the
        // cluster's queue pages.
        FaultScenario::AccelClusterFault => {
            let mut v = aggr[..aggr.len() / 2].to_vec();
            v.extend((0..4096u64).map(|i| store(i * 4096)));
            (v, nicos.to_vec())
        }
        // Every 64th transfer retried eight times.
        FaultScenario::DmaBusError => {
            let mut v = Vec::with_capacity(aggr.len() + aggr.len() / 8);
            for (i, a) in aggr.iter().enumerate() {
                v.push(*a);
                if i % 64 == 0 {
                    v.extend(std::iter::repeat_n(*a, 8));
                }
            }
            (v, nicos.to_vec())
        }
        // The admission retry loop replays the warm-up prefix.
        FaultScenario::TransientExhaustion => {
            let mut v = aggr[..aggr.len() / 4].to_vec();
            v.extend_from_slice(aggr);
            (v, nicos.to_vec())
        }
        // The NIC OS reboots halfway through: it walks its management
        // structures back into cache (a strided load sweep), replays
        // its startup accesses, then resumes where it left off.
        FaultScenario::NicOsRestart => {
            let half = nicos.len() / 2;
            let mut v = nicos[..half].to_vec();
            v.extend((0..8192u64).map(|i| Access {
                insns: 1,
                addr: i * 64,
                kind: AccessKind::Load,
            }));
            v.extend_from_slice(&nicos[..half]);
            v.extend_from_slice(&nicos[half..]);
            (aggr.to_vec(), v)
        }
        // The aggressor disappears two thirds in; the management core
        // then sweeps its region with sequential scrub stores.
        FaultScenario::PowerLossMidTeardown => {
            let mut v = aggr[..aggr.len() * 2 / 3].to_vec();
            v.extend((0..2048u64).map(|i| store(i * 64)));
            (v, nicos.to_vec())
        }
    }
}

fn replay(v: Vec<Access>) -> SendStream {
    ReplayStream::new(v).into()
}

fn doubled(trace: &SharedTrace) -> SendStream {
    SharedReplayStream::repeated(SharedTrace::clone(trace), 2).into()
}

/// Repeat a recorded trace end to end `repeats` times (owned; the
/// perturbation functions need a materialized sequence to cut up).
fn tiled(trace: &[Access], repeats: usize) -> Vec<Access> {
    let mut v = Vec::with_capacity(trace.len() * repeats);
    for _ in 0..repeats {
        v.extend_from_slice(trace);
    }
    v
}

/// The four colocation jobs of one scenario, in
/// `[commodity-clean, commodity-faulted, snic-clean, snic-faulted]`
/// order. Stream slot 0 is the victim (a firewall trace — a working set
/// that lives in the L2, so shared-cache and bus coupling is visible —
/// replayed twice with the first pass as warmup), slot 1 the aggressor
/// (NAT), slot 2 the NIC OS (monitor). The aggressor/NIC-OS recordings
/// are tiled until they outlast both victim passes — otherwise the
/// fault perturbation would land entirely inside the victim's warmup
/// window and be invisible by construction.
pub fn uarch_jobs(scenario: FaultScenario, traces: &TraceSet) -> Vec<SimJob> {
    let find = |k: NfKind| {
        &traces
            .iter()
            .find(|(kk, _)| *kk == k)
            .expect("trace exists")
            .1
    };
    let victim = find(NfKind::Firewall);
    let aggr = find(NfKind::Nat);
    let nicos = find(NfKind::Monitor);
    let span = 2 * victim.len();
    let aggr_reps = span.div_ceil(aggr.len());
    let nicos_reps = span.div_ceil(nicos.len());
    let (aggr_f, nicos_f) =
        perturb_streams(scenario, &tiled(aggr, aggr_reps), &tiled(nicos, nicos_reps));
    let warmups = vec![victim.len() as u64, 0, 0];
    let clean = || -> Vec<SendStream> {
        vec![
            doubled(victim),
            SharedReplayStream::repeated(SharedTrace::clone(aggr), aggr_reps as u32).into(),
            SharedReplayStream::repeated(SharedTrace::clone(nicos), nicos_reps as u32).into(),
        ]
    };
    let faulted = || -> Vec<SendStream> {
        vec![
            doubled(victim),
            replay(aggr_f.clone()),
            replay(nicos_f.clone()),
        ]
    };
    vec![
        SimJob::new(MachineConfig::commodity(3, BLAST_L2_BYTES), clean())
            .with_warmups(warmups.clone()),
        SimJob::new(MachineConfig::commodity(3, BLAST_L2_BYTES), faulted())
            .with_warmups(warmups.clone()),
        SimJob::new(MachineConfig::snic(3, BLAST_L2_BYTES), clean()).with_warmups(warmups.clone()),
        SimJob::new(MachineConfig::snic(3, BLAST_L2_BYTES), faulted()).with_warmups(warmups),
    ]
}

/// The microarchitectural verdict for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct UarchDiff {
    /// Victim stats bit-identical across the fault on the commodity
    /// machine.
    pub commodity_bit_identical: bool,
    /// Victim stats bit-identical across the fault under S-NIC.
    pub snic_bit_identical: bool,
    /// Victim IPC delta (%) caused by the fault on commodity.
    pub commodity_delta_pct: f64,
    /// Victim IPC delta (%) caused by the fault under S-NIC.
    pub snic_delta_pct: f64,
}

/// Fold one scenario's four outcomes (see [`uarch_jobs`] order) into a
/// verdict.
pub fn uarch_diff_from(outcomes: &[RunOutcome]) -> UarchDiff {
    assert_eq!(outcomes.len(), 4, "one scenario = four runs");
    UarchDiff {
        commodity_bit_identical: outcomes[1].nfs[0] == outcomes[0].nfs[0],
        snic_bit_identical: outcomes[3].nfs[0] == outcomes[2].nfs[0],
        commodity_delta_pct: outcomes[1].ipc_degradation_vs(&outcomes[0], 0),
        snic_delta_pct: outcomes[3].ipc_degradation_vs(&outcomes[2], 0),
    }
}

// --------------------------------------------------------------------
// The matrix
// --------------------------------------------------------------------

/// One row of the blast-radius matrix.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The injected failure mode.
    pub scenario: FaultScenario,
    /// Device-layer verdict on the commodity personality.
    pub device_commodity: DeviceDiff,
    /// Device-layer verdict under S-NIC.
    pub device_snic: DeviceDiff,
    /// Microarchitectural verdict.
    pub uarch: UarchDiff,
}

/// Run the full matrix with the default (parallel) executor.
pub fn blast_matrix(scale: &Scale) -> Vec<ScenarioOutcome> {
    blast_matrix_with(Exec::Parallel, scale)
}

/// Run the full matrix: six scenarios × (device episodes on both
/// personalities + four colocation runs each). Uarch jobs fan through
/// [`execute`], device differentials through [`map_exec`]; both paths
/// preserve input order, so serial and parallel matrices are
/// byte-identical.
pub fn blast_matrix_with(exec: Exec, scale: &Scale) -> Vec<ScenarioOutcome> {
    let traces = all_traces(scale, 0xb1a57);
    let jobs: Vec<SimJob> = FaultScenario::ALL
        .iter()
        .flat_map(|&s| uarch_jobs(s, &traces))
        .collect();
    let outcomes = execute(exec, jobs);
    let device: Vec<(DeviceDiff, DeviceDiff)> = map_exec(exec, FaultScenario::ALL.to_vec(), |s| {
        (
            device_differential(NicMode::Commodity, s),
            device_differential(NicMode::Snic, s),
        )
    });
    FaultScenario::ALL
        .iter()
        .zip(outcomes.chunks_exact(4))
        .zip(device)
        .map(
            |((&scenario, chunk), (device_commodity, device_snic))| ScenarioOutcome {
                scenario,
                device_commodity,
                device_snic,
                uarch: uarch_diff_from(chunk),
            },
        )
        .collect()
}

fn device_cell(d: &DeviceDiff) -> String {
    let victim = if d.victim_intact {
        "intact"
    } else {
        "perturbed"
    };
    let residue = if d.residue_clean { "clean" } else { "dirty" };
    format!("{victim}/{residue}/{} findings", d.findings.len())
}

fn uarch_cell(identical: bool, delta_pct: f64) -> String {
    if identical {
        "bit-identical".to_string()
    } else {
        format!("perturbed ({delta_pct:+.2}% IPC)")
    }
}

/// Render the matrix as the EXPERIMENTS.md table.
pub fn render_matrix(rows: &[ScenarioOutcome]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.name().to_string(),
                device_cell(&r.device_commodity),
                device_cell(&r.device_snic),
                uarch_cell(r.uarch.commodity_bit_identical, r.uarch.commodity_delta_pct),
                uarch_cell(r.uarch.snic_bit_identical, r.uarch.snic_delta_pct),
            ]
        })
        .collect();
    render_table(
        "Blast radius: victim under fault (victim/scrub/Pass-3)",
        &[
            "scenario",
            "device commodity",
            "device S-NIC",
            "uarch commodity",
            "uarch S-NIC",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::{assert_commodity_device_leaks, assert_snic_device_contained};
    use snic_verify::FindingKind;

    #[test]
    fn every_scenario_has_a_nonempty_unique_plan() {
        let mut names = Vec::new();
        for s in FaultScenario::ALL {
            assert!(!s.plan().is_empty(), "{} has no rules", s.name());
            assert!(!names.contains(&s.name()), "duplicate name {}", s.name());
            names.push(s.name());
        }
    }

    #[test]
    fn nf_crash_corrupts_victim_only_on_commodity() {
        let c = device_differential(NicMode::Commodity, FaultScenario::NfCrash);
        assert!(!c.victim_intact, "commodity victim must see the wild store");
        assert_commodity_device_leaks(FaultScenario::NfCrash, &c);
        assert!(
            c.findings
                .iter()
                .any(|f| f.kind == FindingKind::FaultPropagation),
            "commodity transcript must lint dirty: {}",
            c.transcript
        );
        assert_snic_device_contained(
            FaultScenario::NfCrash,
            &device_differential(NicMode::Snic, FaultScenario::NfCrash),
        );
    }

    #[test]
    fn accel_fault_crashes_whole_commodity_device() {
        let c = device_differential(NicMode::Commodity, FaultScenario::AccelClusterFault);
        assert!(!c.victim_intact);
        assert!(c.transcript.contains("device hard-crashed"));
        assert_snic_device_contained(
            FaultScenario::AccelClusterFault,
            &device_differential(NicMode::Snic, FaultScenario::AccelClusterFault),
        );
    }

    #[test]
    fn teardown_scrub_is_snic_only() {
        // Even the clean power-loss episode recycles dirty memory on a
        // commodity NIC (no teardown scrubbing at all), and Pass 3
        // flags the reuse.
        let c = device_differential(NicMode::Commodity, FaultScenario::PowerLossMidTeardown);
        assert!(!c.residue_clean, "commodity leaks the DMA'd secret");
        assert!(c
            .findings
            .iter()
            .any(|f| f.kind == FindingKind::UnscrubbedReuse));
        assert_snic_device_contained(
            FaultScenario::PowerLossMidTeardown,
            &device_differential(NicMode::Snic, FaultScenario::PowerLossMidTeardown),
        );
    }

    #[test]
    fn management_plane_faults_are_contained_everywhere() {
        for scenario in [
            FaultScenario::TransientExhaustion,
            FaultScenario::NicOsRestart,
        ] {
            for mode in [NicMode::Commodity, NicMode::Snic] {
                let d = device_differential(mode, scenario);
                assert!(
                    d.victim_intact,
                    "{:?}/{} must not perturb the victim",
                    mode,
                    scenario.name()
                );
            }
            let s = device_differential(NicMode::Snic, scenario);
            assert!(s.transcript.contains("retry"), "{}", s.transcript);
        }
    }

    #[test]
    fn episodes_are_deterministic() {
        let a = run_episode(NicMode::Snic, FaultScenario::DmaBusError, true);
        let b = run_episode(NicMode::Snic, FaultScenario::DmaBusError, true);
        assert_eq!(a.observables, b.observables);
        assert_eq!(
            render_transcript(&a.transcript),
            render_transcript(&b.transcript)
        );
    }
}
