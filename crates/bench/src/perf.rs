//! Wall-clock performance harness for the microarchitectural engine.
//!
//! Every figure in the reproduction bottoms out in
//! [`snic_uarch::engine::run_colocated_sink`], so this module measures
//! exactly that: events per second over the recorded fig5 NF traces
//! (seed `0xf15a`, the fig5a seed, so the workload is the real sweep
//! workload, not a synthetic stand-in) at several colocation scales,
//! warm-started the way the sweeps are (first trace pass warms the
//! caches), median-of-k. With `shards > 1` the S-NIC cells go through
//! [`snic_sim::run_sharded`] — the model-level independence of
//! partitioned tenants turned into worker threads — while commodity
//! cells (shared L2, not shardable) stay serial, exactly as `run()`
//! would dispatch them in production.
//!
//! The numbers land in `BENCH_uarch.json` at the repo root (schema 3):
//!
//! - `events_per_sec_before` — the serial baseline this PR started
//!   from, kept so the recorded speedup survives re-blessing (a
//!   schema-1 file's `after` becomes the schema-2 `before`);
//! - `events_per_sec_after` — the committed baseline every future PR is
//!   gated against (`scripts/lint.sh` runs `uarch_perf --smoke` and
//!   fails on a >10 % regression; re-bless with `SNIC_BLESS_BENCH=1`);
//! - `shards` / `host_threads` — how the `after` number was obtained,
//!   so a one-core box's honest measurement is never mistaken for the
//!   multi-core headline (see EXPERIMENTS.md for the scaling analysis);
//! - `streaming` / `multicore` — the schema-3 companion entries: the
//!   regenerate-on-pull streamed pipeline rate and the replay harness
//!   through sharded dispatch (`--shards >= 3`), each labelled with the
//!   shard count and host threads it was measured under.
//!
//! Timing uses the wall clock, so this module is for the perf binary
//! and `snicctl bench` only — simulation results never depend on it.

use std::time::Instant;

use snic_nf::NfKind;
use snic_sim::run_sharded;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::run_colocated_warm;
use snic_uarch::stream::{EventSource, SharedReplayStream};

use crate::streams::{all_traces, streamed_nf_source, SharedTrace, TraceSet};
use crate::{median, Scale};

/// Trace seed: fig5a's, so the harness replays the same recordings as a
/// real fig5a run at the same scale.
pub const PERF_SEED: u64 = 0xf15a;

/// L2 size of every measured point (one mid-curve fig5a setting).
pub const PERF_L2_BYTES: u64 = 256 << 10;

/// Colocation scales on the x-axis: solo, the fig5a pair, and the two
/// fig5b multi-tenant points that fit six recorded kinds.
pub const PERF_TENANTS: [usize; 4] = [1, 2, 4, 6];

/// One measured cell: a colocation scale under one personality.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// `"{n}nf-{commodity|snic}"`.
    pub label: String,
    /// Colocated stream count.
    pub tenants: usize,
    /// S-NIC (partitioned) or commodity personality.
    pub snic: bool,
    /// Engine events processed per run (both trace passes).
    pub events: u64,
    /// Median wall-clock seconds over the harness repetitions.
    pub secs: f64,
    /// `events / secs`.
    pub eps: f64,
}

/// The full harness result.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Every measured cell, scale-major, commodity before S-NIC.
    pub points: Vec<PerfPoint>,
    /// Events per run summed over all cells.
    pub total_events: u64,
    /// Median seconds summed over all cells.
    pub total_secs: f64,
    /// The headline metric: `total_events / total_secs`.
    pub events_per_sec: f64,
    /// Repetitions per cell (median taken).
    pub median_of: usize,
    /// Shard count the S-NIC cells were measured with (1 = serial).
    pub shards: usize,
    /// Hardware threads the host reports (how much parallelism the
    /// sharded cells could actually use).
    pub host_threads: usize,
}

/// Hardware threads available on this host (1 when unknown).
pub fn host_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// The streams of one cell: `tenants` recorded traces (kinds taken
/// round-robin from the trace set), each replayed twice with the first
/// pass as warmup — the fig5 sweep shape.
fn cell_streams(traces: &TraceSet, tenants: usize) -> (Vec<EventSource>, Vec<u64>, u64) {
    let mut streams = Vec::with_capacity(tenants);
    let mut warmups = Vec::with_capacity(tenants);
    let mut events = 0u64;
    for slot in 0..tenants {
        let (_, trace) = &traces[slot % traces.len()];
        streams.push(EventSource::from(SharedReplayStream::repeated(
            SharedTrace::clone(trace),
            2,
        )));
        warmups.push(trace.len() as u64);
        events += 2 * trace.len() as u64;
    }
    (streams, warmups, events)
}

/// Run the harness: every `(scale, personality)` cell `reps` times,
/// median wall clock per cell. `shards > 1` routes each cell through
/// [`snic_sim::run_sharded`]: S-NIC cells fan their tenants out across
/// up to `shards` worker threads, commodity cells (shared L2 — not
/// shardable) fall back to the serial engine inside `run_sharded`, so
/// both personalities are timed through the same production dispatch.
pub fn run(scale: &Scale, reps: usize, shards: usize) -> PerfReport {
    assert!(reps >= 1, "need at least one repetition");
    let shards = shards.max(1);
    let traces = all_traces(scale, PERF_SEED);
    let mut points = Vec::new();
    for &tenants in &PERF_TENANTS {
        for snic in [false, true] {
            let cfg = if snic {
                MachineConfig::snic(tenants as u32, PERF_L2_BYTES)
            } else {
                MachineConfig::commodity(tenants as u32, PERF_L2_BYTES)
            };
            let mut secs = Vec::with_capacity(reps);
            let mut events = 0;
            for _ in 0..reps {
                let (streams, warmups, ev) = cell_streams(&traces, tenants);
                events = ev;
                let start = Instant::now();
                let out = if shards > 1 {
                    run_sharded(&cfg, streams, &warmups, shards)
                } else {
                    run_colocated_warm(&cfg, streams, &warmups)
                };
                secs.push(start.elapsed().as_secs_f64());
                assert_eq!(out.nfs.len(), tenants);
            }
            let med = median(&mut secs);
            points.push(PerfPoint {
                label: format!("{tenants}nf-{}", if snic { "snic" } else { "commodity" }),
                tenants,
                snic,
                events,
                secs: med,
                eps: events as f64 / med.max(1e-12),
            });
        }
    }
    let total_events: u64 = points.iter().map(|p| p.events).sum();
    let total_secs: f64 = points.iter().map(|p| p.secs).sum();
    PerfReport {
        total_events,
        total_secs,
        events_per_sec: total_events as f64 / total_secs.max(1e-12),
        median_of: reps,
        shards,
        host_threads: host_threads(),
        points,
    }
}

/// The streamed-pipeline measurement: S-NIC colocations whose events
/// are regenerated on the fly through the O(chunk) streaming pipeline
/// (NF + workload rebuilt from seeds) instead of replayed from a
/// materialized recording, so the rate includes generation cost and the
/// resident set stays bounded.
#[derive(Debug, Clone)]
pub struct StreamedPerf {
    /// Engine events processed across all cells (from the outcomes:
    /// every event probes L1 exactly once).
    pub total_events: u64,
    /// Median seconds summed over all cells.
    pub total_secs: f64,
    /// `total_events / total_secs`.
    pub events_per_sec: f64,
    /// Shard count the cells ran with.
    pub shards: usize,
}

/// Measure the streamed pipeline: the [`PERF_TENANTS`] S-NIC cells with
/// single-pass [`streamed_nf_source`] streams (kinds round-robin, fig5a
/// seed), dispatched through [`run_sharded`] like the colocation
/// sweeps. No warmup window — the streamed production path counts every
/// event, and the engine events come from the outcome itself.
pub fn run_streamed(scale: &Scale, reps: usize, shards: usize) -> StreamedPerf {
    assert!(reps >= 1, "need at least one repetition");
    let shards = shards.max(1);
    let mut total_events = 0u64;
    let mut total_secs = 0.0;
    for &tenants in &PERF_TENANTS {
        let cfg = MachineConfig::snic(tenants as u32, PERF_L2_BYTES);
        let mut secs = Vec::with_capacity(reps);
        let mut events = 0u64;
        for _ in 0..reps {
            let streams: Vec<EventSource> = (0..tenants)
                .map(|slot| {
                    streamed_nf_source(NfKind::ALL[slot % NfKind::ALL.len()], scale, PERF_SEED, 1)
                })
                .collect();
            let start = Instant::now();
            let out = run_sharded(&cfg, streams, &[], shards);
            secs.push(start.elapsed().as_secs_f64());
            events = out.nfs.iter().map(|n| n.l1_hits + n.l1_misses).sum();
        }
        total_events += events;
        total_secs += median(&mut secs);
    }
    StreamedPerf {
        total_events,
        total_secs,
        events_per_sec: total_events as f64 / total_secs.max(1e-12),
        shards,
    }
}

/// The schema-3 companion measurements embedded next to the gated
/// serial baseline: the streamed pipeline and a multicore-sharded
/// re-measurement of the replay cells.
#[derive(Debug, Clone)]
pub struct PerfExtras {
    /// Streamed-pipeline rate (see [`run_streamed`]).
    pub streaming: StreamedPerf,
    /// The replay harness re-run with `shards >= 3` (see [`run`]); on a
    /// one-core host this records the honest sharded-dispatch number
    /// next to `host_threads: 1` rather than pretending to scale.
    pub multicore: PerfReport,
}

/// Measure both schema-3 extras: the streamed pipeline (serial, so the
/// number is host-independent) and the replay harness through the
/// sharded dispatch path.
pub fn run_extras(scale: &Scale, reps: usize, shards: usize) -> PerfExtras {
    PerfExtras {
        streaming: run_streamed(scale, reps, 1),
        multicore: run(scale, reps, shards.max(3)),
    }
}

/// Render the report as the `BENCH_uarch.json` document (schema 3).
///
/// `before_eps` is the baseline measurement carried forward from the
/// existing file on re-bless (see [`baseline_before`]); when absent the
/// current number doubles as its own baseline (speedup 1.0). `extras`
/// adds the schema-3 `streaming` and `multicore` objects; every
/// schema-2 field keeps its name and meaning (the lint gate still
/// compares `events_per_sec_after` alone), so schema-2 consumers read a
/// schema-3 document unchanged.
pub fn to_json(
    report: &PerfReport,
    scale_name: &str,
    before_eps: Option<f64>,
    extras: Option<&PerfExtras>,
) -> String {
    let before = before_eps.unwrap_or(report.events_per_sec);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": 3,\n");
    s.push_str("  \"workload\": \"fig5-traces colocation sweep, warm-started, sharded engine\",\n");
    s.push_str(&format!("  \"scale\": \"{scale_name}\",\n"));
    s.push_str(&format!("  \"median_of\": {},\n", report.median_of));
    s.push_str(&format!("  \"shards\": {},\n", report.shards));
    s.push_str(&format!("  \"host_threads\": {},\n", report.host_threads));
    s.push_str(&format!("  \"total_events\": {},\n", report.total_events));
    s.push_str(&format!("  \"events_per_sec_before\": {:.1},\n", before));
    s.push_str(&format!(
        "  \"events_per_sec_after\": {:.1},\n",
        report.events_per_sec
    ));
    s.push_str(&format!(
        "  \"speedup\": {:.2},\n",
        report.events_per_sec / before.max(1e-12)
    ));
    if let Some(extras) = extras {
        let st = &extras.streaming;
        s.push_str(&format!(
            "  \"streaming\": {{\"pipeline\": \"regenerate-on-pull, O(chunk) resident\", \
             \"stream_shards\": {}, \"stream_events\": {}, \"stream_events_per_sec\": {:.1}}},\n",
            st.shards, st.total_events, st.events_per_sec
        ));
        let mc = &extras.multicore;
        s.push_str(&format!(
            "  \"multicore\": {{\"mc_shards\": {}, \"mc_host_threads\": {}, \
             \"mc_events_per_sec\": {:.1}}},\n",
            mc.shards, mc.host_threads, mc.events_per_sec
        ));
    }
    s.push_str("  \"points\": [\n");
    for (i, p) in report.points.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"label\": \"{}\", \"tenants\": {}, \"events\": {}, \"secs\": {:.4}, \
             \"eps\": {:.1}}}{}\n",
            p.label,
            p.tenants,
            p.events,
            p.secs,
            p.eps,
            if i + 1 == report.points.len() {
                ""
            } else {
                ","
            }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The `events_per_sec_before` to carry into a re-blessed document,
/// migrating across schema versions:
///
/// - schema 2 — keep the file's own `before` (the frozen reference);
/// - schema 1 — that era's `after` **becomes** the new `before`: the
///   schema-1 serial baseline is exactly the number the sharded engine
///   is being compared against;
/// - unreadable / absent — `None` (the new measurement self-baselines).
pub fn baseline_before(json: &str) -> Option<f64> {
    match extract_f64(json, "schema") {
        Some(s) if s >= 2.0 => extract_f64(json, "events_per_sec_before"),
        Some(_) => extract_f64(json, "events_per_sec_after"),
        None => extract_f64(json, "events_per_sec_before"),
    }
}

/// Extract a top-level numeric field from a `BENCH_uarch.json` document
/// (good enough for the documents [`to_json`] writes; no external JSON
/// dependency in the offline workspace).
pub fn extract_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)?;
    let rest = json[at + needle.len()..].trim_start();
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            flows: 300,
            packets: 300,
            patterns: 60,
            fw_rules: 40,
            lpm_prefixes: 100,
            monitor_ms: 10,
        }
    }

    #[test]
    fn harness_covers_all_cells_and_json_round_trips() {
        let report = run(&tiny(), 1, 1);
        assert_eq!(report.points.len(), PERF_TENANTS.len() * 2);
        assert!(report.total_events > 0);
        assert!(report.events_per_sec > 0.0);
        assert_eq!(report.shards, 1);
        assert!(report.host_threads >= 1);
        let json = to_json(&report, "tiny", Some(report.events_per_sec / 3.0), None);
        let after = extract_f64(&json, "events_per_sec_after").expect("after present");
        assert!((after - report.events_per_sec).abs() / report.events_per_sec < 1e-3);
        let speedup = extract_f64(&json, "speedup").expect("speedup present");
        assert!((speedup - 3.0).abs() < 0.05, "speedup {speedup}");
        assert_eq!(extract_f64(&json, "schema"), Some(3.0));
        assert_eq!(extract_f64(&json, "shards"), Some(1.0));
        assert!(extract_f64(&json, "host_threads").is_some_and(|t| t >= 1.0));
        assert!(extract_f64(&json, "no_such_key").is_none());
        assert!(!json.contains("\"streaming\""), "no extras unless given");
    }

    #[test]
    fn sharded_harness_counts_the_same_events() {
        // Same cells, same event totals — only the wall clock may move.
        let serial = run(&tiny(), 1, 1);
        let sharded = run(&tiny(), 1, 4);
        assert_eq!(sharded.shards, 4);
        assert_eq!(serial.total_events, sharded.total_events);
        for (a, b) in serial.points.iter().zip(&sharded.points) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.events, b.events);
        }
    }

    #[test]
    fn streamed_harness_and_extras_embed_in_schema_3() {
        let extras = run_extras(&tiny(), 1, 3);
        assert!(extras.streaming.total_events > 0);
        assert!(extras.streaming.events_per_sec > 0.0);
        assert_eq!(extras.streaming.shards, 1);
        assert_eq!(extras.multicore.shards, 3);
        // Streamed cells process one pass of the S-NIC half of the grid;
        // the replay harness counts both machines at two passes each.
        let replay = run(&tiny(), 1, 1);
        assert_eq!(extras.streaming.total_events * 4, replay.total_events);
        let json = to_json(&replay, "tiny", None, Some(&extras));
        assert_eq!(
            extract_f64(&json, "stream_events"),
            Some(extras.streaming.total_events as f64)
        );
        assert_eq!(extract_f64(&json, "mc_shards"), Some(3.0));
        assert!(extract_f64(&json, "stream_events_per_sec").is_some_and(|e| e > 0.0));
        assert!(extract_f64(&json, "mc_events_per_sec").is_some_and(|e| e > 0.0));
    }

    #[test]
    fn baseline_before_migrates_schema_1_after() {
        let v1 = "{\n  \"schema\": 1,\n  \"events_per_sec_before\": 100.0,\n  \
                  \"events_per_sec_after\": 250.0\n}\n";
        assert_eq!(baseline_before(v1), Some(250.0));
        let v2 = "{\n  \"schema\": 2,\n  \"events_per_sec_before\": 250.0,\n  \
                  \"events_per_sec_after\": 900.0\n}\n";
        assert_eq!(baseline_before(v2), Some(250.0));
        // Pre-schema documents fall back to their own before field.
        let v0 = "{\n  \"events_per_sec_before\": 42.0\n}\n";
        assert_eq!(baseline_before(v0), Some(42.0));
        assert_eq!(baseline_before("{}"), None);
    }

    #[test]
    fn events_count_both_passes() {
        let traces = all_traces(&tiny(), PERF_SEED);
        let (streams, warmups, events) = cell_streams(&traces, 2);
        assert_eq!(streams.len(), 2);
        assert_eq!(warmups.len(), 2);
        let expect: u64 = (0..2).map(|i| 2 * traces[i].1.len() as u64).sum();
        assert_eq!(events, expect);
    }
}
