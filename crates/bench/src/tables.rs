//! Tables 2–8 as data-producing functions shared by the binaries.

use snic_accel::profile::accel_profile;
use snic_cost::overhead::{snic_overhead, OverheadConfig};
use snic_cost::tco::{tco_report, TcoInputs, TcoReport};
use snic_cost::tlb_model::CostEstimate;
use snic_mem::planner::PagePolicy;
use snic_nf::{paper_profile, NfKind};
use snic_pktio::dma::dma_bank_tlb_entries;
use snic_pktio::vpp::VppBufferSpec;
use snic_types::AccelKind;

/// Cost estimates per unit count: `(count, estimate)` rows.
pub type CostRows = Vec<(u64, CostEstimate)>;
/// Named buffer regions with sizes in MiB.
pub type RegionSizes = Vec<(&'static str, f64)>;

/// Table 2: per-core TLB costs across memory-per-core and core counts.
pub fn table2() -> Vec<(u64, u64, CostRows)> {
    // (MB per core, TLB entries) rows; 2 MB pages.
    let rows = [(366u64, 183u64), (512, 256), (1024, 512)];
    let core_counts = [4u64, 8, 16, 48];
    rows.iter()
        .map(|&(mb, entries)| {
            let per_count = core_counts
                .iter()
                .map(|&n| (n, CostEstimate::tlbs(entries, n)))
                .collect();
            (mb, entries, per_count)
        })
        .collect()
}

/// Table 3: accelerator TLB-bank costs across cluster configurations.
pub fn table3() -> Vec<(AccelKind, u64, CostRows)> {
    let kinds = [AccelKind::Dpi, AccelKind::Zip, AccelKind::Raid];
    let cluster_counts = [16u64, 8, 4];
    kinds
        .iter()
        .map(|&k| {
            let entries = accel_profile(k)
                .expect("Table 7 profiles DPI/Zip/RAID")
                .tlb_entries(&PagePolicy::Equal);
            let per_config = cluster_counts
                .iter()
                .map(|&c| (c, CostEstimate::tlbs(entries, c)))
                .collect();
            (k, entries, per_config)
        })
        .collect()
}

/// Table 4: VPP + DMA TLB costs across unit counts.
pub fn table4() -> Vec<(&'static str, u64, CostRows)> {
    let vpp_entries = VppBufferSpec::default().tlb_entries();
    // McPAT note: 2 entries cost the same as 3.
    let dma_entries = dma_bank_tlb_entries().max(3);
    let unit_counts = [12u64, 6, 3];
    [("VPP", vpp_entries), ("DMA", dma_entries)]
        .iter()
        .map(|&(name, entries)| {
            let per = unit_counts
                .iter()
                .map(|&u| (u, CostEstimate::tlbs(entries, u)))
                .collect();
            (name, entries, per)
        })
        .collect()
}

/// Table 5: TLB size and cost per page policy (max entries over the six
/// NFs, 48 cores).
pub fn table5() -> Vec<(&'static str, u64, CostEstimate)> {
    let policies = [
        ("Equal (2MB)", PagePolicy::Equal),
        ("Flex-low (128KB,2MB,64MB)", PagePolicy::FlexLow),
        ("Flex-high (2MB,32MB,128MB)", PagePolicy::FlexHigh),
    ];
    policies
        .iter()
        .map(|(name, policy)| {
            let entries = NfKind::ALL
                .iter()
                .map(|&k| paper_profile(k).tlb_entries(policy))
                .max()
                .expect("six NFs");
            (*name, entries, CostEstimate::tlbs(entries, 48))
        })
        .collect()
}

/// Table 6: NF memory profiles and TLB entries under the three policies.
pub fn table6() -> Vec<(NfKind, [f64; 5], [u64; 3])> {
    NfKind::ALL
        .iter()
        .map(|&k| {
            let p = paper_profile(k);
            let sizes = [
                p.text.as_mib_f64(),
                p.data.as_mib_f64(),
                p.code.as_mib_f64(),
                p.heap_stack.as_mib_f64(),
                p.total().as_mib_f64(),
            ];
            let entries = [
                p.tlb_entries(&PagePolicy::Equal),
                p.tlb_entries(&PagePolicy::FlexLow),
                p.tlb_entries(&PagePolicy::FlexHigh),
            ];
            (k, sizes, entries)
        })
        .collect()
}

/// Table 7: accelerator buffer inventories and TLB entries.
pub fn table7() -> Vec<(AccelKind, RegionSizes, f64, u64)> {
    [AccelKind::Dpi, AccelKind::Zip, AccelKind::Raid]
        .iter()
        .map(|&k| {
            let p = accel_profile(k).expect("Table 7 profiles DPI/Zip/RAID");
            let regions: Vec<(&'static str, f64)> = p
                .regions
                .iter()
                .map(|&(n, s)| (n, s.as_mib_f64()))
                .collect();
            (
                k,
                regions,
                p.total().as_mib_f64(),
                p.tlb_entries(&PagePolicy::Equal),
            )
        })
        .collect()
}

/// The §5.2 aggregate: overhead percentages and TCO report.
pub fn headline() -> (f64, f64, TcoReport) {
    let overhead = snic_overhead(&OverheadConfig::default());
    let area_pct = overhead.total_area_pct();
    let power_pct = overhead.total_power_pct();
    let tco = tco_report(&TcoInputs {
        snic_area_overhead: area_pct / 100.0,
        snic_power_overhead: power_pct / 100.0,
        ..TcoInputs::default()
    });
    (area_pct, power_pct, tco)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_and_scaling() {
        let t = table2();
        assert_eq!(t.len(), 3);
        let (_, entries, per_count) = &t[0];
        assert_eq!(*entries, 183);
        assert_eq!(per_count.len(), 4);
        // Cost scales linearly with core count.
        let a4 = per_count[0].1.area_mm2;
        let a48 = per_count[3].1.area_mm2;
        assert!((a48 / a4 - 12.0).abs() < 1e-9);
    }

    #[test]
    fn table3_entries_match_paper() {
        let t = table3();
        assert_eq!(t[0].1, 54);
        assert_eq!(t[1].1, 70);
        assert_eq!(t[2].1, 5);
    }

    #[test]
    fn table4_entries() {
        let t = table4();
        assert_eq!(t[0].1, 3);
        assert_eq!(t[1].1, 3, "2-entry DMA costed as 3 per the paper's note");
    }

    #[test]
    fn table5_matches_paper_max_entries() {
        let t = table5();
        assert_eq!(t[0].1, 183);
        assert!((t[1].1 as i64 - 51).abs() <= 2, "Flex-low max {}", t[1].1);
        assert_eq!(t[2].1, 13);
        // Larger tables cost more.
        assert!(t[0].2.area_mm2 > t[1].2.area_mm2);
        assert!(t[1].2.area_mm2 > t[2].2.area_mm2);
    }

    #[test]
    fn table6_totals() {
        let t = table6();
        let mon = t.iter().find(|(k, _, _)| *k == NfKind::Monitor).unwrap();
        assert!((mon.1[4] - 360.54).abs() < 0.05);
        assert_eq!(mon.2[0], 183);
        assert_eq!(mon.2[2], 12);
    }

    #[test]
    fn table7_totals() {
        let t = table7();
        assert!((t[0].2 - 101.90).abs() < 0.1);
        assert_eq!(t[0].3, 54);
        assert!((t[1].2 - 132.24).abs() < 0.1);
        assert!((t[2].2 - 8.13).abs() < 0.1);
    }

    #[test]
    fn headline_matches_paper() {
        let (area, power, tco) = headline();
        assert!((area - 8.89).abs() < 0.9, "area {area:.2}%");
        assert!((power - 11.45).abs() < 1.2, "power {power:.2}%");
        assert!(
            (tco.advantage_decrease - 0.0837).abs() < 0.01,
            "{}",
            tco.advantage_decrease
        );
    }
}
