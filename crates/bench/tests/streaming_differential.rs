//! Differential suite: the streaming trace pipeline must be
//! bit-identical to the materialized one, at every layer.
//!
//! The tentpole claim of the streaming engine is that swapping a
//! materialized `SharedTrace` replay for a regenerate-on-pull
//! [`TraceSource`] pipeline changes *memory behavior only* — every
//! access, every engine statistic, every digest stays byte-for-byte.
//! Each test here pins one link of that chain:
//!
//! - raw access streams: streamed recording ≡ `nf_access_trace`, for
//!   every NF kind, across chunk sizes;
//! - rewind: a rewound source replays its exact stream (idempotent over
//!   many passes);
//! - engine outcomes: a colocation fed by [`StreamedSource`]s ≡ the
//!   same colocation fed by `SharedReplayStream`s, including multi-pass
//!   (`passes = 2`) replays and warmup windows;
//! - dispatch: serial ≡ parallel ≡ sharded for streamed jobs.

use snic_bench::streams::{all_traces, nf_access_trace, nf_trace_source, streamed_nf_source};
use snic_bench::Scale;
use snic_nf::NfKind;
use snic_sim::{run_specs, Exec, JobSpec, SimJob};
use snic_uarch::config::MachineConfig;
use snic_uarch::stream::SharedReplayStream;
use snic_uarch::{Access, AccessKind, EventSource, StreamedSource};

fn tiny() -> Scale {
    Scale {
        flows: 300,
        packets: 350,
        patterns: 80,
        fw_rules: 50,
        lpm_prefixes: 150,
        monitor_ms: 20,
    }
}

/// Drain an event source through `next_batch` with the given buffer
/// size.
fn drain(src: &mut EventSource, buf_len: usize) -> Vec<Access> {
    let mut buf = vec![
        Access {
            insns: 1,
            addr: 0,
            kind: AccessKind::Load,
        };
        buf_len
    ];
    let mut out = Vec::new();
    loop {
        let n = src.next_batch(&mut buf);
        if n == 0 {
            return out;
        }
        out.extend_from_slice(&buf[..n]);
    }
}

#[test]
fn streaming_matches_materialized_for_every_kind() {
    for kind in NfKind::ALL {
        let materialized = nf_access_trace(kind, &tiny(), 0xd1f);
        let streamed = drain(&mut streamed_nf_source(kind, &tiny(), 0xd1f, 1), 128);
        assert_eq!(streamed, materialized, "{kind:?}");
    }
}

#[test]
fn chunk_size_never_changes_the_stream() {
    let reference = drain(&mut streamed_nf_source(NfKind::Dpi, &tiny(), 3, 1), 4096);
    for chunk in [1, 7, 63, 100, 1024] {
        let mut src: EventSource =
            StreamedSource::with_chunk(nf_trace_source(NfKind::Dpi, &tiny(), 3), 1, chunk).into();
        assert_eq!(drain(&mut src, 97), reference, "chunk={chunk}");
    }
}

#[test]
fn rewind_is_idempotent_over_many_passes() {
    let one_pass = drain(
        &mut streamed_nf_source(NfKind::Firewall, &tiny(), 7, 1),
        256,
    );
    let mut repeated = streamed_nf_source(NfKind::Firewall, &tiny(), 7, 3);
    let three = drain(&mut repeated, 256);
    assert_eq!(three.len(), 3 * one_pass.len());
    for (i, pass) in three.chunks(one_pass.len()).enumerate() {
        assert_eq!(pass, &one_pass[..], "pass {i}");
    }
    // An explicit rewind after exhaustion restores the full replay.
    assert!(repeated.rewind());
    assert_eq!(drain(&mut repeated, 256), three, "post-exhaustion rewind");
}

/// Streamed and materialized engine runs at one colocation scale, both
/// with double-pass replays and first-pass warmups — the fig5 shape.
fn paired_specs(tenants: usize) -> (JobSpec, JobSpec) {
    let scale = tiny();
    let traces = all_traces(&scale, 0xf5f5);
    let warmups: Vec<u64> = (0..tenants)
        .map(|slot| traces[slot % traces.len()].1.len() as u64)
        .collect();
    let cfg = MachineConfig::snic(tenants as u32, 1 << 20);
    let materialized = {
        let (cfg, traces, warmups) = (cfg.clone(), traces.clone(), warmups.clone());
        JobSpec::new(move || {
            let streams = (0..tenants)
                .map(|slot| {
                    SharedReplayStream::repeated(traces[slot % traces.len()].1.clone(), 2).into()
                })
                .collect();
            SimJob::new(cfg.clone(), streams).with_warmups(warmups.clone())
        })
    };
    let streamed = JobSpec::new(move || {
        let streams = (0..tenants)
            .map(|slot| {
                streamed_nf_source(NfKind::ALL[slot % NfKind::ALL.len()], &scale, 0xf5f5, 2)
            })
            .collect();
        SimJob::new(cfg.clone(), streams).with_warmups(warmups.clone())
    });
    (materialized, streamed)
}

#[test]
fn engine_outcome_identical_streamed_vs_materialized() {
    for tenants in [1, 4, 6] {
        let (materialized, streamed) = paired_specs(tenants);
        let a = materialized.run();
        let b = streamed.run();
        assert_eq!(a.nfs, b.nfs, "tenants={tenants}");
    }
}

#[test]
fn streamed_jobs_serial_parallel_sharded_identical() {
    let (_, streamed) = paired_specs(6);
    let serial = streamed.run();
    for shards in [2, 3, 6] {
        assert_eq!(
            serial.nfs,
            streamed.run_with_shards(shards).nfs,
            "shards={shards}"
        );
    }
    let parallel = run_specs(&[streamed], Exec::Parallel);
    assert_eq!(parallel[0].nfs, serial.nfs);
}
