//! Golden-snapshot suite: every figure pipeline rendered at the pinned
//! golden scale and compared byte-for-byte against the checked-in
//! documents under `tests/golden/`.
//!
//! On an intentional behaviour change, regenerate the snapshots with
//!
//! ```text
//! SNIC_BLESS=1 cargo test -p snic-bench --test golden
//! ```
//!
//! and review the diff like any other code change. An *unintentional*
//! diff here means a simulation result moved — exactly what this suite
//! exists to catch.

use std::path::PathBuf;

use snic_bench::blast::{blast_matrix_with, render_matrix};
use snic_bench::differential::assert_blast_invariants;
use snic_bench::golden;
use snic_sim::Exec;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

fn blessing() -> bool {
    std::env::var("SNIC_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Compare `actual` against the checked-in snapshot `name`, or rewrite
/// the snapshot when `SNIC_BLESS=1`.
fn check(name: &str, actual: &str) {
    let path = golden_path(name);
    if blessing() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {name} ({e}); regenerate with SNIC_BLESS=1")
    });
    assert_eq!(
        expected, actual,
        "\ngolden snapshot {name} diverged; if the change is intentional, \
         regenerate with SNIC_BLESS=1 and review the diff\n"
    );
}

#[test]
fn fig5a_matches_golden() {
    check("fig5a.txt", &golden::fig5a_text(&golden::golden_scale()));
}

#[test]
fn fig5b_matches_golden() {
    check("fig5b.txt", &golden::fig5b_text(&golden::golden_scale()));
}

#[test]
fn fig6_matches_golden() {
    check("fig6.txt", &golden::fig6_text());
}

#[test]
fn fig8_matches_golden() {
    check("fig8.txt", &golden::fig8_text(&golden::golden_scale()));
}

#[test]
fn blast_matrix_matches_golden_and_invariants_hold() {
    let rows = blast_matrix_with(Exec::Parallel, &golden::golden_scale());
    // The snapshot freezes the rendering; the differential assertions
    // freeze the *meaning* (S-NIC contained, commodity leaking), so a
    // blessed-but-wrong snapshot cannot slip through.
    for row in &rows {
        assert_blast_invariants(row);
    }
    check("blast.txt", &render_matrix(&rows));
}
