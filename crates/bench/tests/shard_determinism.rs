//! The sharded engine's contract: splitting one S-NIC colocation run
//! across worker threads changes *where* each tenant simulates, never
//! *what* it computes. These tests replay the real recorded NF traces
//! (the same shape the figure sweeps use) and hold `run_sharded` to
//! byte-identical `RunOutcome`s versus the serial interleaving engine,
//! for every shard count, with and without a live telemetry sink —
//! the companion of `parallel_determinism.rs`, one level down: that
//! suite shards a *sweep* across runs, this one shards a *run* across
//! tenants.

use snic_bench::streams::all_traces;
use snic_bench::Scale;
use snic_sim::{run_sharded, run_sharded_sink, shardable, SendStream};
use snic_telemetry::Recorder;
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::{run_colocated_sink, run_colocated_warm};
use snic_uarch::stream::SharedReplayStream;

fn tiny() -> Scale {
    Scale {
        flows: 2_000,
        packets: 2_500,
        patterns: 200,
        fw_rules: 100,
        lpm_prefixes: 400,
        monitor_ms: 20,
    }
}

/// `tenants` recorded traces round-robin, each replayed twice with the
/// first pass as warmup — the fig5 sweep shape.
fn cell(tenants: usize) -> (Vec<SendStream>, Vec<u64>) {
    let traces = all_traces(&tiny(), 0xdead);
    let streams: Vec<SendStream> = (0..tenants)
        .map(|i| {
            let (_, trace) = &traces[i % traces.len()];
            SharedReplayStream::repeated(trace.clone(), 2).into()
        })
        .collect();
    let warmups: Vec<u64> = (0..tenants)
        .map(|i| traces[i % traces.len()].1.len() as u64)
        .collect();
    (streams, warmups)
}

#[test]
fn sharded_byte_identical_to_serial_for_every_shard_count() {
    for tenants in [2usize, 4, 6] {
        for cfg in [
            MachineConfig::snic(tenants as u32, 1 << 20),
            MachineConfig::snic_secdcp(
                (0..tenants as u32)
                    .map(|t| if t == 0 { 16 - tenants as u32 + 1 } else { 1 })
                    .collect(),
                1 << 20,
            ),
        ] {
            assert!(shardable(&cfg), "fixture must exercise the sharded path");
            let (streams, warmups) = cell(tenants);
            let serial = run_colocated_warm(&cfg, streams, &warmups);
            for shards in [1usize, 2, 3, tenants, tenants + 5] {
                let (streams, warmups) = cell(tenants);
                let sharded = run_sharded(&cfg, streams, &warmups, shards);
                // NfRunStats is all-integer, so == is byte equality.
                assert_eq!(
                    serial.nfs, sharded.nfs,
                    "{tenants} tenants diverged at {shards} shards under {cfg:?}"
                );
            }
        }
    }
}

#[test]
fn sharded_telemetry_byte_identical_to_serial() {
    let cfg = MachineConfig::snic(4, 1 << 20);
    let (streams, warmups) = cell(4);
    let serial_rec = Recorder::new();
    let serial = run_colocated_sink(&cfg, streams, &warmups, &serial_rec);
    for shards in [2usize, 4] {
        let (streams, warmups) = cell(4);
        let rec = Recorder::new();
        let sharded = run_sharded_sink(&cfg, streams, &warmups, shards, Some(&rec));
        assert_eq!(serial.nfs, sharded.nfs, "stats diverged at {shards} shards");
        assert_eq!(
            serial_rec.summary().render(),
            rec.summary().render(),
            "telemetry summary diverged at {shards} shards"
        );
    }
}

#[test]
fn sink_on_sharded_matches_sink_off_sharded() {
    // The zero-cost-off contract survives sharding: attaching a live
    // recorder to a sharded run leaves every statistic untouched.
    let cfg = MachineConfig::snic(4, 1 << 20);
    let (streams, warmups) = cell(4);
    let bare = run_sharded(&cfg, streams, &warmups, 2);
    let (streams, warmups) = cell(4);
    let rec = Recorder::new();
    let recorded = run_sharded_sink(&cfg, streams, &warmups, 2, Some(&rec));
    assert_eq!(bare.nfs, recorded.nfs);
    assert!(!rec.summary().is_empty(), "the sink saw the sharded run");
}

#[test]
fn commodity_runs_fall_back_to_serial_unchanged() {
    // A shared-L2/FCFS personality is not shardable; asking for shards
    // must silently take the serial path, not change results.
    let cfg = MachineConfig::commodity(3, 1 << 20);
    assert!(!shardable(&cfg));
    let (streams, warmups) = cell(3);
    let serial = run_colocated_warm(&cfg, streams, &warmups);
    let (streams, warmups) = cell(3);
    let sharded = run_sharded(&cfg, streams, &warmups, 3);
    assert_eq!(serial.nfs, sharded.nfs);
}
