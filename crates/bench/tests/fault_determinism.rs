//! The blast-radius matrix's contract, end to end:
//!
//! - the matrix is deterministic and byte-identical between the serial
//!   and parallel executors (transcripts included);
//! - per scenario, the victim's microarchitectural stats are
//!   **bit-identical** across the fault under S-NIC and perturbed on
//!   the commodity machine;
//! - S-NIC fault transcripts lint clean under `snic-verify` Pass 3,
//!   commodity transcripts produce findings for every
//!   tenant-originated fault.

use snic_bench::blast::{
    blast_matrix_with, device_differential, uarch_diff_from, uarch_jobs, FaultScenario,
};
use snic_bench::differential::{
    assert_commodity_device_leaks, assert_snic_device_contained, assert_uarch_contained,
};
use snic_bench::streams::all_traces;
use snic_bench::Scale;
use snic_core::config::NicMode;
use snic_sim::{execute, Exec};

fn tiny() -> Scale {
    Scale {
        flows: 2_000,
        packets: 2_500,
        patterns: 200,
        fw_rules: 100,
        lpm_prefixes: 400,
        monitor_ms: 20,
    }
}

#[test]
fn matrix_serial_and_parallel_byte_identical() {
    let serial = blast_matrix_with(Exec::Serial, &tiny());
    let parallel = blast_matrix_with(Exec::Parallel, &tiny());
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(a.scenario, b.scenario);
        // The uarch verdict compares f64s produced by identical
        // arithmetic on identical integer stats: bit equality expected.
        assert_eq!(a.uarch, b.uarch, "{}", a.scenario.name());
        for (x, y) in [
            (&a.device_commodity, &b.device_commodity),
            (&a.device_snic, &b.device_snic),
        ] {
            assert_eq!(x.victim_intact, y.victim_intact, "{}", a.scenario.name());
            assert_eq!(x.residue_clean, y.residue_clean, "{}", a.scenario.name());
            assert_eq!(x.transcript, y.transcript, "{}", a.scenario.name());
            assert_eq!(x.findings.len(), y.findings.len(), "{}", a.scenario.name());
        }
    }
}

#[test]
fn snic_victim_bit_identical_commodity_perturbed() {
    let traces = all_traces(&tiny(), 0xb1a57);
    for scenario in FaultScenario::ALL {
        let outcomes = execute(Exec::Parallel, uarch_jobs(scenario, &traces));
        assert_uarch_contained(scenario, &uarch_diff_from(&outcomes));
    }
}

#[test]
fn snic_transcripts_lint_clean_commodity_dirty() {
    // Tenant-originated faults: the commodity episode must produce
    // Pass-3 findings; the S-NIC episode must lint clean. (Management-
    // plane faults — transient exhaustion, NIC-OS restart — are
    // contained on both personalities at the device layer; commodity
    // still shows the unscrubbed-reuse finding from its scrub-free
    // teardown.)
    for scenario in FaultScenario::ALL {
        assert_commodity_device_leaks(scenario, &device_differential(NicMode::Commodity, scenario));
        assert_snic_device_contained(scenario, &device_differential(NicMode::Snic, scenario));
    }
}

#[test]
fn repeat_runs_are_identical() {
    let a = blast_matrix_with(Exec::Serial, &tiny());
    let b = blast_matrix_with(Exec::Serial, &tiny());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.uarch, y.uarch);
        assert_eq!(x.device_snic.transcript, y.device_snic.transcript);
        assert_eq!(x.device_commodity.transcript, y.device_commodity.transcript);
    }
}
