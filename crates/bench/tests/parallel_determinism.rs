//! The parallel pool's contract: fanning a sweep across workers changes
//! *when* each simulation runs, never *what* it computes. These tests
//! hold the pool to byte-identical outputs versus the serial path, at
//! the raw `RunOutcome` level and at the figure level (`fig5`'s
//! `DegradationPoint`s, compared on f64 *bit patterns*, not epsilons).

use std::sync::Arc;

use snic_bench::fig5::{self, DegradationPoint};
use snic_bench::streams::all_traces;
use snic_bench::telemetry::{run_smoke, smoke_scale};
use snic_bench::Scale;
use snic_sim::{run_jobs_on, run_jobs_serial, Exec, SendStream, SimJob};
use snic_telemetry::{Recorder, TelemetrySink};
use snic_uarch::config::MachineConfig;
use snic_uarch::stream::SharedReplayStream;

fn tiny() -> Scale {
    Scale {
        flows: 2_000,
        packets: 2_500,
        patterns: 200,
        fw_rules: 100,
        lpm_prefixes: 400,
        monitor_ms: 20,
    }
}

/// Jobs replaying the real NF reference traces under both disciplines
/// at several cotenancies — the same shape the figure sweeps fan out.
fn trace_jobs() -> Vec<SimJob> {
    let traces = all_traces(&tiny(), 0xdead);
    let mut jobs = Vec::new();
    for tenants in [2usize, 3, 4] {
        for (cfg_i, cfg) in [
            MachineConfig::commodity(tenants as u32, 1 << 20),
            MachineConfig::snic(tenants as u32, 1 << 20),
        ]
        .into_iter()
        .enumerate()
        {
            let streams: Vec<SendStream> = (0..tenants)
                .map(|i| {
                    let (_, trace) = &traces[(i + cfg_i) % traces.len()];
                    SharedReplayStream::repeated(trace.clone(), 2).into()
                })
                .collect();
            let warmups: Vec<u64> = (0..tenants)
                .map(|i| traces[(i + cfg_i) % traces.len()].1.len() as u64)
                .collect();
            jobs.push(SimJob::new(cfg, streams).with_warmups(warmups));
        }
    }
    jobs
}

#[test]
fn pool_outcomes_byte_identical_to_serial() {
    let serial = run_jobs_serial(trace_jobs());
    for threads in [2, 4, 16] {
        let pooled = run_jobs_on(trace_jobs(), threads);
        assert_eq!(serial.len(), pooled.len());
        for (i, (a, b)) in serial.iter().zip(&pooled).enumerate() {
            // NfRunStats is all-integer, so == is byte equality.
            assert_eq!(a.nfs, b.nfs, "job {i} diverged at {threads} threads");
        }
    }
}

fn assert_points_bitwise_eq(a: &[DegradationPoint], b: &[DegradationPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.kind, y.kind);
        for (fa, fb, what) in [
            (x.median_pct, y.median_pct, "median"),
            (x.p1_pct, y.p1_pct, "p1"),
            (x.p99_pct, y.p99_pct, "p99"),
        ] {
            assert_eq!(
                fa.to_bits(),
                fb.to_bits(),
                "{:?} {what}: serial {fa} vs parallel {fb}",
                x.kind
            );
        }
    }
}

#[test]
fn sink_on_parallel_bit_identical_to_sink_off_serial() {
    // The strongest cross-product of the two determinism contracts:
    // attaching a live recorder AND fanning across the pool must both
    // leave every simulated statistic untouched.
    let scale = smoke_scale();
    let baseline = run_smoke(Exec::Serial, &scale, None);
    let recorder: Arc<dyn TelemetrySink> = Arc::new(Recorder::new());
    let recorded = run_smoke(Exec::Parallel, &scale, Some(recorder));
    assert_eq!(baseline.len(), recorded.len());
    for (i, (a, b)) in baseline.iter().zip(&recorded).enumerate() {
        assert_eq!(a.nfs, b.nfs, "job {i}: sink+pool diverged from bare serial");
    }
}

#[test]
fn fig5a_parallel_bit_identical_to_serial() {
    let sizes = [256 << 10, 4 << 20];
    let serial = fig5::fig5a_with(Exec::Serial, &tiny(), &sizes);
    let parallel = fig5::fig5a_with(Exec::Parallel, &tiny(), &sizes);
    assert_eq!(serial.len(), parallel.len());
    for ((l2_s, pts_s), (l2_p, pts_p)) in serial.iter().zip(&parallel) {
        assert_eq!(l2_s, l2_p);
        assert_points_bitwise_eq(pts_s, pts_p);
    }
}

#[test]
fn fig5b_parallel_bit_identical_to_serial() {
    let counts = [2usize, 4];
    let serial = fig5::fig5b_with(Exec::Serial, &tiny(), &counts, 4 << 20);
    let parallel = fig5::fig5b_with(Exec::Parallel, &tiny(), &counts, 4 << 20);
    assert_eq!(serial.len(), parallel.len());
    for ((n_s, pts_s), (n_p, pts_p)) in serial.iter().zip(&parallel) {
        assert_eq!(n_s, n_p);
        assert_points_bitwise_eq(pts_s, pts_p);
    }
}
