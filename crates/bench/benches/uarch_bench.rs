//! Criterion: microarchitectural simulator performance — cache access
//! rate and full colocation runs under both disciplines.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use snic_uarch::cache::{Cache, CacheConfig, Partition};
use snic_uarch::config::MachineConfig;
use snic_uarch::engine::run_colocated;
use snic_uarch::stream::{EventSource, SyntheticStream};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group.throughput(Throughput::Elements(100_000));
    for (name, partition) in [
        ("shared", Partition::Shared),
        ("static4", Partition::StaticWays { tenants: 4 }),
    ] {
        group.bench_function(name, |b| {
            let mut cache = Cache::new(
                CacheConfig {
                    size: 4 << 20,
                    ways: 16,
                    line: 64,
                },
                partition.clone(),
            );
            let mut addr = 0u64;
            b.iter(|| {
                let mut hits = 0u64;
                for i in 0..100_000u64 {
                    addr = addr.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i);
                    if cache.access((i % 4) as u32, addr % (8 << 20)) {
                        hits += 1;
                    }
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let streams = || -> Vec<EventSource> {
        (0..4)
            .map(|i| SyntheticStream::new(2 << 20, 6, 4, 50_000, 100 + i).into())
            .collect()
    };
    let mut group = c.benchmark_group("colocated_run_4nf_50k");
    group.bench_function("commodity", |b| {
        b.iter(|| run_colocated(&MachineConfig::commodity(4, 4 << 20), streams()))
    });
    group.bench_function("snic", |b| {
        b.iter(|| run_colocated(&MachineConfig::snic(4, 4 << 20), streams()))
    });
    group.finish();
}

criterion_group!(benches, bench_cache, bench_engine);
criterion_main!(benches);
