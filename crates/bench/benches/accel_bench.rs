//! Criterion: accelerator engine throughput (DPI scan, ZIP round trip,
//! RAID parity) plus the launch/teardown instruction path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use snic_accel::dpi::{DpiAccel, DpiAccelConfig};
use snic_accel::engine::{AccelEngine, AccelRequest};
use snic_accel::raid::RaidAccel;
use snic_accel::zip::{ZipAccel, OP_COMPRESS};
use snic_core::config::{NicConfig, NicMode};
use snic_core::device::SmartNic;
use snic_core::instr::{LaunchRequest, NfImage};
use snic_crypto::keys::VendorCa;
use snic_nf::dpi::synth_patterns;
use snic_types::{ByteSize, CoreId};

fn bench_dpi(c: &mut Criterion) {
    let mut accel = DpiAccel::new(&synth_patterns(2_000, 1), DpiAccelConfig::default());
    let payload: Vec<u8> = b"GET /index.html HTTP/1.1 host example payload "
        .iter()
        .copied()
        .cycle()
        .take(1500)
        .collect();
    let mut group = c.benchmark_group("accel_dpi_scan");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("1500B", |b| {
        b.iter(|| {
            accel.execute(&AccelRequest {
                data: payload.clone(),
                opcode: 0,
            })
        })
    });
    group.finish();
}

fn bench_zip(c: &mut Criterion) {
    let mut accel = ZipAccel::new();
    let data: Vec<u8> = b"network function state block "
        .iter()
        .copied()
        .cycle()
        .take(64 << 10)
        .collect();
    let mut group = c.benchmark_group("accel_zip");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("compress_64k", |b| {
        b.iter(|| {
            accel.execute(&AccelRequest {
                data: data.clone(),
                opcode: OP_COMPRESS,
            })
        })
    });
    group.finish();
}

fn bench_raid(c: &mut Criterion) {
    let mut accel = RaidAccel::new();
    let block = vec![0x5au8; 64 << 10];
    let framed = RaidAccel::frame(&[&block, &block, &block, &block]);
    let mut group = c.benchmark_group("accel_raid");
    group.throughput(Throughput::Bytes(framed.len() as u64));
    group.bench_function("parity_4x64k", |b| {
        b.iter(|| {
            accel.execute(&AccelRequest {
                data: framed.clone(),
                opcode: 0,
            })
        })
    });
    group.finish();
}

fn bench_launch_teardown(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let vendor = VendorCa::new(&mut rng);
    c.bench_function("nf_launch_teardown_16mib", |b| {
        let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &vendor);
        b.iter(|| {
            let r = nic
                .nf_launch(LaunchRequest::minimal(
                    CoreId(0),
                    ByteSize::mib(16),
                    NfImage {
                        code: vec![0x90; 4096],
                        config: vec![],
                    },
                ))
                .expect("launch");
            nic.nf_teardown(r.nf_id).expect("teardown");
        });
    });
}

criterion_group!(
    benches,
    bench_dpi,
    bench_zip,
    bench_raid,
    bench_launch_teardown
);
criterion_main!(benches);
