//! Criterion: crypto substrate throughput (SHA-256, ChaCha20, RSA sign,
//! DH, attestation round trip).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::SeedableRng;
use snic_crypto::chacha20::ChaCha20;
use snic_crypto::dh::{DhKeyPair, DhParams};
use snic_crypto::rsa::RsaKeyPair;
use snic_crypto::sha256::sha256;

fn bench_sha256(c: &mut Criterion) {
    let data = vec![0xabu8; 1 << 20];
    let mut group = c.benchmark_group("sha256");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("digest_1mib", |b| b.iter(|| sha256(&data)));
    group.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let cipher = ChaCha20::new(&[7u8; 32], &[3u8; 12]);
    let mut group = c.benchmark_group("chacha20");
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("encrypt_1mib", |b| {
        let mut data = vec![0u8; 1 << 20];
        b.iter(|| cipher.apply(1, &mut data));
    });
    group.finish();
}

fn bench_rsa_and_dh(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let key = RsaKeyPair::generate(&mut rng, 768);
    c.bench_function("rsa_sign_768", |b| {
        b.iter(|| key.sign(b"attestation statement"))
    });
    let sig = key.sign(b"attestation statement");
    c.bench_function("rsa_verify_768", |b| {
        b.iter(|| assert!(key.public.verify(b"attestation statement", &sig)))
    });
    let params = DhParams::rfc3526_group14();
    let peer = DhKeyPair::generate(&mut rng, &params);
    c.bench_function("dh_2048_keygen_exchange", |b| {
        b.iter(|| {
            let kp = DhKeyPair::generate(&mut rng, &params);
            kp.shared_secret(&peer.public)
        })
    });
}

criterion_group!(benches, bench_sha256, bench_chacha20, bench_rsa_and_dh);
criterion_main!(benches);
