//! Criterion: packet-IO substrate throughput — rule classification,
//! VXLAN encap/decap, and the packet schedulers.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use snic_pktio::rules::{RuleMatch, RuleTable, SwitchRule};
use snic_pktio::scheduler::{DrrScheduler, FifoScheduler, PacketScheduler, TxItem};
use snic_pktio::vxlan::{vxlan_decap, vxlan_encap};
use snic_types::packet::PacketBuilder;
use snic_types::{NfId, Protocol};

fn bench_classify(c: &mut Criterion) {
    let mut table = RuleTable::new();
    for i in 0..64u16 {
        table.install(SwitchRule {
            dst_port: RuleMatch::Exact(1000 + i),
            priority: u32::from(i),
            ..SwitchRule::any(NfId(u64::from(i)))
        });
    }
    let packets: Vec<_> = (0..256u16)
        .map(|i| PacketBuilder::new(1, 2, Protocol::Udp, 9999, 1000 + (i % 80)).build())
        .collect();
    let mut group = c.benchmark_group("rule_classify");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("64_rules", |b| {
        b.iter(|| packets.iter().filter_map(|p| table.classify(p)).count())
    });
    group.finish();
}

fn bench_vxlan(c: &mut Criterion) {
    let inner = PacketBuilder::new(1, 2, Protocol::Tcp, 10, 20)
        .payload(vec![0xab; 1400])
        .build();
    let mut group = c.benchmark_group("vxlan");
    group.throughput(Throughput::Bytes(inner.len() as u64));
    group.bench_function("encap_decap_1400B", |b| {
        b.iter(|| {
            let enc = vxlan_encap(&inner, 7, 0x0101, 0x0202).expect("encap");
            vxlan_decap(&enc).expect("decap")
        })
    });
    group.finish();
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_10k_items");
    group.bench_function("fifo", |b| {
        b.iter(|| {
            let mut s = FifoScheduler::new();
            for i in 0..10_000u64 {
                s.enqueue(TxItem {
                    tenant: NfId(i % 4),
                    bytes: 1500,
                });
            }
            let mut n = 0;
            while s.dequeue().is_some() {
                n += 1;
            }
            n
        })
    });
    group.bench_function("drr_4_tenants", |b| {
        b.iter(|| {
            let mut s = DrrScheduler::new(&[
                (NfId(0), 1500),
                (NfId(1), 1500),
                (NfId(2), 1500),
                (NfId(3), 1500),
            ]);
            for i in 0..10_000u64 {
                s.enqueue(TxItem {
                    tenant: NfId(i % 4),
                    bytes: 1500,
                });
            }
            let mut n = 0;
            while s.dequeue().is_some() {
                n += 1;
            }
            n
        })
    });
    group.finish();
}

criterion_group!(benches, bench_classify, bench_vxlan, bench_schedulers);
criterion_main!(benches);
