//! Criterion: packet-processing throughput of the six network functions.
//!
//! Complements the simulated-IPC experiments with real wall-clock
//! throughput of our NF implementations (useful for spotting regressions
//! in the algorithmic substrates: Aho-Corasick, DIR-24-8, Maglev, ...).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use snic_bench::streams::{build_scaled, workload};
use snic_bench::Scale;
use snic_nf::{NfKind, NullSink};

fn bench_nfs(c: &mut Criterion) {
    let scale = Scale {
        packets: 2_000,
        ..Scale::quick()
    };
    // The criterion loop replays the same packets many times, so this
    // is one place the lazy workload is deliberately collected.
    let packets: Vec<_> = workload(&scale, 0xbe7c).collect();
    let mut group = c.benchmark_group("nf_process");
    group.throughput(Throughput::Elements(packets.len() as u64));
    for kind in NfKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                let mut nf = build_scaled(kind, &scale, 1);
                b.iter(|| {
                    let mut verdicts = 0u64;
                    for p in &packets {
                        let _ = nf.process(p, &mut NullSink);
                        verdicts += 1;
                    }
                    verdicts
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_nfs);
criterion_main!(benches);
