#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (deny warnings), then the
# tier-1 check from ROADMAP.md with a per-test-binary runtime budget.
# Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Any single test binary (or doctest batch) slower than this many
# seconds fails the gate — the wall-clock regression ISSUE 2 fixed must
# not silently return. Override for slow machines: SNIC_TEST_BUDGET_S.
budget="${SNIC_TEST_BUDGET_S:-120}"

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q (budget ${budget}s per test binary)"
cargo build --release
test_log="$(mktemp)"
trap 'rm -f "$test_log"' EXIT
cargo test -q 2>&1 | tee "$test_log"

# `cargo test -q` ends each binary's summary with "... finished in X.XXs".
slow="$(awk -v budget="$budget" '/finished in [0-9.]+s$/ { if ($NF + 0 > budget) print }' "$test_log")"
if [ -n "$slow" ]; then
    echo "FAIL: test runtime budget of ${budget}s exceeded:" >&2
    echo "$slow" >&2
    exit 1
fi

# Fault-matrix smoke gate: the blast-radius differential must be
# deterministic regardless of executor parallelism, and the fault-
# injection demo must run (its S-NIC transcript lints clean or it
# panics).
echo "==> fault-matrix smoke: serial/parallel determinism + demo"
cargo test -q -p snic-bench --test fault_determinism matrix_serial_and_parallel_byte_identical
cargo run -q --release --example fault_injection > /dev/null

# Pass 0 analyze gate: the six paper NFs must verify clean, every
# seeded adversarial corpus program must be rejected with its exact
# stable code, and the analyzer itself must fit the runtime budget —
# any drift (a code rename, a lowering change that trips the engine, a
# fixpoint slowdown) fails here.
echo "==> static analysis gate (snicctl analyze --gate)"
cargo run -q --release --bin snicctl -- analyze --gate > /dev/null

# snicd soak gate: the seeded ~30-simulated-second multi-tenant
# overload schedule with its mid-run fault plan. Non-faulted tenants
# must see zero failed requests, the faulted tenant's queue must be
# frozen and then reclaimed, Pass 4 must lint the serve transcript
# clean, and a snapshot/restart at the schedule midpoint must be
# byte-identical to the uninterrupted run. The summary is also pinned
# by tests/golden/soak.txt (re-bless with SNIC_BLESS=1).
echo "==> snicd soak gate (snicctl soak --gate)"
cargo run -q --release --bin snicctl -- soak --gate > /dev/null

# Covert-channel leakage gate: the smoke sweep (every family ×
# geometry × mode at the paper-default epoch) must diff clean against
# tests/golden/leakage.txt and satisfy the differential security
# bounds — every S-NIC cell's measured capacity under the hard ceiling,
# every exploitable commodity cell over the floor (re-bless the golden
# with SNIC_BLESS=1).
echo "==> covert-channel leakage gate (snicctl leakage --smoke --gate)"
cargo run -q --release --bin snicctl -- leakage --smoke --gate > /dev/null

# Golden snapshots: every figure pipeline's rendered output at the
# pinned scale must match the checked-in documents byte-for-byte
# (regenerate intentionally with SNIC_BLESS=1).
echo "==> golden snapshots"
cargo test -q -p snic-bench --test golden

# Determinism differentials: the optimized hot path (packed tag scan,
# two-phase bulk probing) must match the reference models event-for-
# event, and sharding a colocation run across worker threads must be
# byte-identical to the serial interleaving engine — stats and
# telemetry both — for every shard count.
echo "==> engine differentials + shard determinism"
cargo test -q -p snic-uarch --test cache_differential
cargo test -q -p snic-uarch --test engine_differential
cargo test -q -p snic-bench --test shard_determinism

# Telemetry overhead gate: recording the fig5 smoke sweep must stay
# within SNIC_TELEMETRY_BUDGET_PCT (default 10) percent wall clock of
# the sink-off run, with bit-identical outcomes.
echo "==> telemetry overhead budget"
cargo run -q --release -p snic-bench --bin telemetry_overhead

# Bounded-memory streaming gate: the billion-event streamed colocation
# (48 personality-weighted tenants, diurnal/flash-crowd phase
# schedules) must first prove serial≡sharded bit-identity at small
# scale, then process exactly 1e9 engine events through O(chunk)
# streaming sources with peak RSS under SNIC_MEM_BUDGET_MB (default
# 640 — the mix's resident NF structures, dominated by eight 64 MB
# DIR-24-8 tables, plus streaming state; independent of event count).
# SNIC_TRACE_GATE_EVENTS trims the run on slow machines.
echo "==> bounded-memory streaming gate (snicctl trace billion --gate)"
cargo run -q --release --bin snicctl -- trace billion --gate \
    ${SNIC_TRACE_GATE_EVENTS:+--events "$SNIC_TRACE_GATE_EVENTS"} > /dev/null

# Engine perf gate: the fig5 sweep must stay within
# SNIC_BENCH_TOLERANCE_PCT (default 10) percent of the committed
# BENCH_uarch.json baseline. Intentional slowdowns re-bless with
# SNIC_BLESS_BENCH=1 scripts/lint.sh (or uarch_perf --smoke directly).
echo "==> engine perf baseline (BENCH_uarch.json)"
cargo run -q --release -p snic-bench --bin uarch_perf -- --smoke

echo "lint gate: OK"
