#!/usr/bin/env bash
# Workspace lint gate: formatting, clippy (deny warnings), then the
# tier-1 check from ROADMAP.md. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "lint gate: OK"
