//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.8 API this workspace's
//! benches use: `Criterion::bench_function`/`benchmark_group`,
//! `BenchmarkGroup::{throughput, bench_function, bench_with_input,
//! finish}`, `Bencher::iter`, `Throughput`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark
//! for a short, fixed wall-clock budget and reports mean time per
//! iteration (plus derived throughput). Under `cargo test` (cargo
//! passes `--test` to `harness = false` targets) each benchmark runs a
//! single iteration as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How a benchmark's work is counted for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A parameterized benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function label and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    budget: Duration,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `routine` repeatedly within the time budget, recording the
    /// mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            hint::black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.elapsed = elapsed;
                self.iters = iters;
                return;
            }
        }
    }
}

fn report(name: &str, throughput: Option<Throughput>, b: &Bencher) {
    if b.iters == 0 {
        return;
    }
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let time = if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<40} {time:>12}/iter{rate}  ({} iters)",
        b.iters
    );
}

/// The top-level benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Criterion {
    fn budget_from_args() -> Duration {
        // `cargo test` invokes harness=false targets with `--test`:
        // run each bench once as a smoke test.
        if std::env::args().any(|a| a == "--test") {
            Duration::ZERO
        } else {
            Duration::from_millis(300)
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut routine: R,
    ) -> &mut Criterion {
        let mut b = Bencher {
            budget: self.budget,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        report(name, None, &b);
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            budget: Criterion::budget_from_args(),
        }
    }
}

/// A group of related benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput used for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark within the group.
    pub fn bench_function<R: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.criterion.budget,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        report(&format!("{}/{id}", self.name), self.throughput, &b);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I, R: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: R,
    ) -> &mut Self {
        let mut b = Bencher {
            budget: self.criterion.budget,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b, input);
        report(&format!("{}/{id}", self.name), self.throughput, &b);
        self
    }

    /// Close the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a named runner group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            budget: Duration::ZERO,
        };
        let mut ran = 0u32;
        c.bench_function("probe", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_with_throughput_and_input() {
        let mut c = Criterion {
            budget: Duration::ZERO,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }
}
