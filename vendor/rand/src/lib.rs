//! Offline stand-in for the `rand` crate (0.9 API subset).
//!
//! The build container has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `random`, `random_range`, and `fill`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not
//! `rand`'s ChaCha12, but deterministic, well-distributed, and more than
//! adequate for simulation workloads and property tests. Sequences
//! therefore differ from upstream `rand` for the same seed; nothing in
//! this workspace depends on upstream sequences.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness: the object-safe core trait.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG (the
/// `StandardUniform` distribution of real `rand`).
pub trait Random {
    /// Draw one uniformly random value.
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl Random for $t {
            fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for u128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Random for i128 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::random_from(rng) as i128
    }
}

impl Random for bool {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Random for [u8; N] {
    fn random_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Integer types usable with [`Rng::random_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Sample uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                debug_assert!(low <= high, "random_range: low > high");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                if span == u128::MAX {
                    return <$t>::random_from(rng);
                }
                // Wide-multiply rejection-free mapping (Lemire-style,
                // without the rejection step: bias is negligible for the
                // simulation spans used here).
                let draw = u128::from(rng.next_u64());
                let scaled = (draw * (span + 1)) >> 64;
                ((low as $wide).wrapping_add(scaled as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::random_from(rng) * (high - low)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + Bounded + StepDown> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.step_down())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "random_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Helper bound: the value just below an exclusive upper bound.
pub trait StepDown {
    /// `self - 1` for integers (must not be called on the type minimum).
    fn step_down(self) -> Self;
}

macro_rules! impl_step_down {
    ($($t:ty),*) => {$(
        impl StepDown for $t {
            fn step_down(self) -> Self { self - 1 }
        }
    )*};
}
impl_step_down!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Helper bound marker (upstream uses `UniformSampler` internals).
pub trait Bounded {}
macro_rules! impl_bounded {
    ($($t:ty),*) => {$( impl Bounded for $t {} )*};
}
impl_bounded!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing extension trait (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Sample a uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random_from(self)
    }

    /// Sample uniformly from `range` (half-open or inclusive).
    fn random_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Return true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::random_from(self) < p
    }

    /// Fill `dest` with random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; sequences differ from upstream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let mut r = StdRng::seed_from_u64(seed);
            (0..8).map(|_| r.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.random_range(5..=5);
            assert_eq!(w, 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_distribution_covers_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_covers_tail_chunks() {
        let mut r = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn object_safe_core() {
        let mut r = StdRng::seed_from_u64(4);
        let dynrng: &mut dyn RngCore = &mut r;
        let _ = dynrng.next_u64();
    }
}
