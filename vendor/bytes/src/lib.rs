//! Offline stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`BufMut`] write trait —
//! the subset this workspace uses for packet encoding. Backed by
//! `Arc<[u8]>` rather than the real crate's vtable machinery; clone and
//! slice are still O(1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Wrap a static slice (zero-copy in the real crate; one copy here).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Wrap an owned byte vector.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// O(1) sub-view sharing the same backing allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable, unique byte buffer used to build [`Bytes`] values.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::from(self.buf.clone()).fmt(f)
    }
}

/// Sequential byte-sink trait (network byte order for multi-byte puts).
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, n: u8);
    /// Append a `u16` big-endian.
    fn put_u16(&mut self, n: u16);
    /// Append a `u32` big-endian.
    fn put_u32(&mut self, n: u32);
    /// Append a `u64` big-endian.
    fn put_u64(&mut self, n: u64);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, n: u8) {
        self.buf.push(n);
    }
    fn put_u16(&mut self, n: u16) {
        self.buf.extend_from_slice(&n.to_be_bytes());
    }
    fn put_u32(&mut self, n: u32) {
        self.buf.extend_from_slice(&n.to_be_bytes());
    }
    fn put_u64(&mut self, n: u64) {
        self.buf.extend_from_slice(&n.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, n: u8) {
        self.push(n);
    }
    fn put_u16(&mut self, n: u16) {
        self.extend_from_slice(&n.to_be_bytes());
    }
    fn put_u32(&mut self, n: u32) {
        self.extend_from_slice(&n.to_be_bytes());
    }
    fn put_u64(&mut self, n: u64) {
        self.extend_from_slice(&n.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_endian_puts() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(&[0xaa]);
        let frozen = b.freeze();
        assert_eq!(&frozen[..], &[1, 2, 3, 4, 5, 6, 7, 0xaa]);
    }

    #[test]
    fn slice_is_a_view() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
    }

    #[test]
    fn equality_and_clone() {
        let a = Bytes::from_static(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, b"hello"[..]);
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn slice_bounds_checked() {
        Bytes::from(vec![1, 2, 3]).slice(1..9);
    }
}
