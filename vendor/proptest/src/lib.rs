//! Offline stand-in for the `proptest` property-testing crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`Strategy`] trait with `prop_map`/`boxed`, range and tuple
//! strategies, [`arbitrary::any`], [`collection::vec`], [`Just`],
//! [`ProptestConfig`], and the `proptest!` / `prop_assert*` /
//! `prop_assume!` / `prop_oneof!` macros.
//!
//! Differences from upstream: no shrinking (a failing case is reported
//! verbatim), and generation uses a deterministic xorshift generator
//! seeded per test case, so failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// Deterministic generator handed to strategies during a test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generator (xorshift64*; seed 0 is remapped).
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform draw from `[0, bound)` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform-enough draw from `[0, bound)` over the full 128-bit range
    /// (`bound` must be non-zero). Rejection sampling on the top limb
    /// keeps it simple; the stub does not promise exact uniformity.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        if let Ok(b) = u64::try_from(bound) {
            return u128::from(self.below(b));
        }
        loop {
            let x = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            if x < bound {
                return x;
            }
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — retry with new inputs.
    Reject(String),
    /// An assertion failed — the property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "property failed: {m}"),
        }
    }
}

/// Runner configuration (subset: only `cases` is consulted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections per successful case.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// A generator of test-case values.
///
/// Object-safe core (`generate`) plus `Sized` combinators, so
/// `Box<dyn Strategy<Value = T>>` works and `prop_oneof!` can mix
/// heterogeneous strategies with a common value type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one alternative.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.below(span)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start;
                let span = (<$t>::MAX as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as u64).wrapping_add(rng.below(span + 1)) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + rng.below_u128(span)
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        let span = u128::MAX - self.start;
        if span == u128::MAX {
            return (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        }
        self.start + rng.below_u128(span + 1)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// `any::<T>()` support.
pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Generate an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<const N: usize> Arbitrary for [u8; N] {
        fn arbitrary(rng: &mut TestRng) -> [u8; N] {
            let mut out = [0u8; N];
            for chunk in out.chunks_mut(8) {
                let bytes = rng.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
            out
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for vectors with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vector strategy: `len` drawn from `size`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
    /// Alias module matching upstream's `prop::` prelude path.
    pub mod prop {
        pub use crate::collection;
    }
}

#[doc(hidden)]
pub mod runner {
    //! Internal driver invoked by the `proptest!` macro expansion.
    use super::{ProptestConfig, TestCaseError, TestRng};

    /// Run `case` under `config`, panicking on the first failure.
    pub fn run(
        test_name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    ) {
        // Deterministic per-test seed so failures reproduce.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in test_name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rejects = 0u32;
        let mut passed = 0u32;
        let mut attempt = 0u64;
        while passed < config.cases {
            let mut rng = TestRng::new(seed ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            attempt += 1;
            let (inputs, outcome) = case(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!("{test_name}: too many prop_assume! rejections (last: {why})");
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: property failed after {passed} passing case(s)\n\
                         inputs: {inputs}\n{msg}"
                    );
                }
            }
        }
    }
}

/// Define property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn holds(x in 0u8..10, ys in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(usize::from(x) < 10 + ys.len());
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (@cfg ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(stringify!($name), &config, |rng| {
                    let values = ($($crate::Strategy::generate(&($strategy), rng),)+);
                    let inputs = format!("{:?}", values);
                    let ($($arg,)+) = values;
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    (inputs, outcome)
                });
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "{}\n  both: {:?}",
            format!($($fmt)+), l
        );
    }};
}

/// Reject the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::Strategy::boxed($strategy),)+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u8..4).prop_map(u32::from),
                (10u8..14).prop_map(u32::from),
            ]
        ) {
            prop_assert!(v < 4 || (10..14).contains(&v));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u8..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        crate::runner::run("failing", &ProptestConfig::with_cases(8), |rng| {
            let x: u64 = crate::Strategy::generate(&(0u64..100), rng);
            let outcome = if x < 1000 {
                Err(TestCaseError::Fail("always fails".into()))
            } else {
                Ok(())
            };
            (format!("{x}"), outcome)
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let gen_once = || {
            let mut rng = crate::TestRng::new(42);
            crate::Strategy::generate(&crate::collection::vec(any::<u32>(), 3..6), &mut rng)
        };
        assert_eq!(gen_once(), gen_once());
    }
}
