//! Soundness link between Pass 0 and Pass 2.
//!
//! Pass 0 proves, over the NF's dataflow IR, that every load and store
//! stays inside the regions its manifest grants. Pass 2 watches the NF
//! *actually run* and flags granted references that land in another
//! domain's memory. If the IR lowering is faithful, a program Pass 0
//! certifies clean can never trip Pass 2's memory lints under the same
//! manifest — that implication is the analyzer's soundness contract, and
//! this file checks it property-style: random NF kind, random build
//! seed, random packet mix, with the ownership map carved so that every
//! byte *outside* the granted windows belongs to a neighbor. Any stray
//! access would surface as a `P2-CROSS-DOMAIN-REF` finding.
//!
//! The companion test at the bottom shows the lint has teeth: a
//! hand-built stream that wanders outside the windows is flagged, so the
//! silence above is discrimination, not blindness.

use proptest::prelude::*;
use snic::analyze::analyze;
use snic::mem::guard::{AccessKind as PhysAccessKind, AccessRecord, Principal};
use snic::nf::{record_stream, NfKind};
use snic::types::packet::PacketBuilder;
use snic::types::{AccelKind, CoreId, NfId, Packet, Protocol};
use snic::uarch::stream::AccessKind as VaAccessKind;
use snic::verify::{BusSpec, DeviceSpec, EnforcementMode, TraceLinter};

/// The device the linter checks against. NIC-OS metadata sits below the
/// NF virtual layout, so no legitimate NF reference can read it.
fn spec() -> DeviceSpec {
    DeviceSpec {
        mode: EnforcementMode::Snic,
        dram: 2 << 30,
        nf_region_base: 0x0800_0000,
        nic_os: vec![(0x0010_0000, 0x2_0000)],
        cores: 16,
        core_tlb_entries: 64,
        accel: vec![(AccelKind::Crypto, 8), (AccelKind::Dpi, 8)],
        rx_capacity: 64 << 20,
        tx_capacity: 64 << 20,
        bus: BusSpec::Temporal { epoch: 96 },
    }
}

/// Ownership map derived from the *same* manifest Pass 0 verified:
/// every granted window belongs to `me`, and the entire complement of
/// the granted span belongs to `neighbor`, so any reference outside the
/// windows is a cross-domain hit.
fn domains_from_manifest(
    regions: &[(u64, u64)],
    me: NfId,
    neighbor: NfId,
) -> Vec<(u64, u64, NfId)> {
    let lo = regions.iter().map(|&(b, _)| b).min().unwrap_or(0);
    let hi = regions
        .iter()
        .map(|&(b, l)| b.saturating_add(l))
        .max()
        .unwrap_or(0);
    let mut domains: Vec<(u64, u64, NfId)> = regions.iter().map(|&(b, l)| (b, l, me)).collect();
    domains.push((0, lo, neighbor));
    domains.push((hi, u64::MAX - hi, neighbor));
    domains
}

/// Identity VA→PA: the recorded virtual stream *is* the physical trace,
/// attributed to the NF under test. One-byte attribution records the
/// touched address exactly (the sink does not carry access width).
fn to_trace(stream: &[snic::uarch::stream::Access], me: NfId) -> Vec<AccessRecord> {
    stream
        .iter()
        .map(|a| AccessRecord {
            who: Principal::Nf(me, CoreId(0)),
            addr: a.addr,
            len: 1,
            kind: match a.kind {
                VaAccessKind::Load => PhysAccessKind::Load,
                VaAccessKind::Store => PhysAccessKind::Store,
            },
            granted: true,
        })
        .collect()
}

fn packet(flow: u32, port: u16, payload_len: usize) -> Packet {
    let proto = if flow.is_multiple_of(3) {
        Protocol::Udp
    } else {
        Protocol::Tcp
    };
    PacketBuilder::new(
        0x0a00_0000 + flow,
        0xc633_0001 + (flow % 5),
        proto,
        9_000 + port,
        80,
    )
    .payload(vec![0xab; payload_len])
    .build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 18, ..ProptestConfig::default() })]

    /// Pass 0 clean ⇒ Pass 2 memory lints silent, for every paper NF,
    /// any build seed, any packet mix.
    #[test]
    fn pass0_clean_implies_silent_memory_lint(
        kind_idx in 0usize..NfKind::ALL.len(),
        seed in 0u64..1_000,
        flows in proptest::collection::vec((0u32..64, 0u16..1_024, 0usize..96), 1..40),
    ) {
        let kind = NfKind::ALL[kind_idx];
        let mut nf = snic::nf::build(kind, seed);
        let submission = snic::nf::launch_analysis(nf.as_ref())
            .expect("every paper NF lowers to dataflow IR");

        // The static side: the IR verifies against its manifest.
        let report = analyze(&submission.program, &submission.manifest);
        prop_assert!(
            report.is_clean(),
            "{kind:?} (seed {seed}) failed Pass 0: {report}"
        );

        // The dynamic side: run real packets, lint the real stream under
        // the *same* granted windows.
        let packets: Vec<Packet> = flows
            .iter()
            .map(|&(flow, port, len)| packet(flow, port, len))
            .collect();
        let stream = record_stream(nf.as_mut(), &packets);
        let (me, neighbor) = (NfId(1), NfId(2));
        let linter = TraceLinter::new(
            &spec(),
            domains_from_manifest(&submission.manifest.regions, me, neighbor),
        );
        let findings = linter.lint_memory(&to_trace(&stream, me));
        prop_assert!(
            findings.is_empty(),
            "{kind:?} (seed {seed}) passed Pass 0 but tripped Pass 2 over \
             {} accesses: {findings:?}",
            stream.len()
        );
    }
}

/// The lint is not vacuously quiet: the same linter configuration flags
/// a stream that strays one byte past the granted span.
#[test]
fn stray_access_outside_granted_windows_is_flagged() {
    let nf = snic::nf::build(NfKind::Firewall, 7);
    let submission = snic::nf::launch_analysis(nf.as_ref()).unwrap();
    let (me, neighbor) = (NfId(1), NfId(2));
    let linter = TraceLinter::new(
        &spec(),
        domains_from_manifest(&submission.manifest.regions, me, neighbor),
    );
    let hi = submission
        .manifest
        .regions
        .iter()
        .map(|&(b, l)| b + l)
        .max()
        .unwrap();
    let stray = vec![AccessRecord {
        who: Principal::Nf(me, CoreId(0)),
        addr: hi, // first byte past the last granted window
        len: 1,
        kind: PhysAccessKind::Load,
        granted: true,
    }];
    let findings = linter.lint_memory(&stray);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].kind.code(), "P2-CROSS-DOMAIN-REF");
}
