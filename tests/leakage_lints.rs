//! Cross-check: the leakage matrix and the Pass 2 trace linters agree
//! (ISSUE 9 satellite).
//!
//! Two independent subsystems judge the same engine runs: the
//! `snic-leakage` decoder measures capacity end-to-end, and
//! `snic-verify`'s Pass 2 lints flag the enabling contention patterns
//! in the recorded trace. They must never disagree about whether a
//! channel exists — a commodity point with positive measured capacity
//! must show at least one finding on its own trace, and every S-NIC
//! point must lint clean no matter what the sender transmits.

use snic::leakage::channel::{machine_config, receiver_stream, sender_stream};
use snic::leakage::{payload_bits, Channel, ChannelFamily, Confusion, Geometry, Mode};
use snic::types::{AccelKind, NfId};
use snic::uarch::bus::BusKind;
use snic::uarch::run_reference_traced;
use snic::uarch::stream::{EventSource, ReplayStream};
use snic::verify::spec::{BusSpec, DeviceSpec, EnforcementMode};
use snic::verify::trace::{TraceBundle, TraceLinter};

const GEOM: Geometry = Geometry {
    ways: 16,
    sets: 512,
};
const EPOCH: u64 = 96;

/// Minimal device spec whose bus discipline matches the uarch machine;
/// the trace lints only consult `bus` and `nic_os`.
fn linter_for(mode: Mode) -> TraceLinter {
    let cfg = machine_config(GEOM, EPOCH, mode);
    let bus = match cfg.bus {
        BusKind::Fcfs => BusSpec::Fcfs,
        BusKind::Temporal { .. } => BusSpec::Temporal {
            epoch: cfg.epoch_cycles,
        },
    };
    let mb = 1u64 << 20;
    let spec = DeviceSpec {
        mode: match mode {
            Mode::Commodity => EnforcementMode::Commodity,
            Mode::Snic => EnforcementMode::Snic,
        },
        dram: 256 * mb,
        nf_region_base: 0x0800_0000,
        nic_os: vec![],
        cores: 2,
        core_tlb_entries: 8,
        accel: vec![(AccelKind::Crypto, 2)],
        rx_capacity: 8 * mb,
        tx_capacity: 8 * mb,
        bus,
    };
    let domains = vec![
        (0x0800_0000, 2 * mb, NfId(1)),
        (0x0800_0000 + 2 * mb, 2 * mb, NfId(2)),
    ];
    TraceLinter::new(&spec, domains).with_cache(cfg.l2, cfg.l2_partition.clone())
}

/// Record the colocated bit-1 run of `family` under `mode` and lint it.
fn lint_bit_one(family: ChannelFamily, mode: Mode) -> Vec<snic::verify::report::Finding> {
    let cfg = machine_config(GEOM, EPOCH, mode);
    let streams = vec![
        EventSource::Replay(ReplayStream::new(receiver_stream(family, GEOM))),
        EventSource::Replay(ReplayStream::new(sender_stream(family, true, GEOM))),
    ];
    let (_, trace) = run_reference_traced(&cfg, streams);
    linter_for(mode).lint(&TraceBundle::from_uarch(&trace))
}

/// Measure the channel's capacity the same way the matrix does.
fn capacity(family: ChannelFamily, mode: Mode) -> f64 {
    let ch = Channel::new(family, GEOM, EPOCH, mode);
    let mut conf = Confusion::default();
    for bit in payload_bits(0x1ea6_c0de, 16) {
        conf.record(bit, ch.transmit(bit).decoded);
    }
    conf.mutual_information()
}

#[test]
fn commodity_capacity_implies_pass2_findings() {
    for family in ChannelFamily::ALL {
        let mi = capacity(family, Mode::Commodity);
        assert!(
            mi > 0.0,
            "{family:?}: commodity channel on an exploitable geometry must carry bits"
        );
        let findings = lint_bit_one(family, Mode::Commodity);
        assert!(
            !findings.is_empty(),
            "{family:?}: measured {mi:.3} bits/use but Pass 2 found nothing on the trace"
        );
    }
}

#[test]
fn snic_points_lint_clean_for_both_payloads() {
    for family in ChannelFamily::ALL {
        assert_eq!(
            capacity(family, Mode::Snic),
            0.0,
            "{family:?}: S-NIC capacity must be exactly zero"
        );
        for bit in [false, true] {
            let cfg = machine_config(GEOM, EPOCH, Mode::Snic);
            let streams = vec![
                EventSource::Replay(ReplayStream::new(receiver_stream(family, GEOM))),
                EventSource::Replay(ReplayStream::new(sender_stream(family, bit, GEOM))),
            ];
            let (_, trace) = run_reference_traced(&cfg, streams);
            let findings = linter_for(Mode::Snic).lint(&TraceBundle::from_uarch(&trace));
            assert!(
                findings.is_empty(),
                "{family:?} bit {bit}: S-NIC trace must lint clean, got {findings:#?}"
            );
        }
    }
}

/// The linters see the *pattern*, not the payload: a 0-bit commodity
/// cache run (sender stays off the probed sets) must not raise the
/// co-residency finding the 1-bit run raises.
#[test]
fn lint_findings_track_the_transmitted_bit_on_the_cache_channel() {
    let cfg = machine_config(GEOM, EPOCH, Mode::Commodity);
    let streams = vec![
        EventSource::Replay(ReplayStream::new(receiver_stream(
            ChannelFamily::Cache,
            GEOM,
        ))),
        EventSource::Replay(ReplayStream::new(sender_stream(
            ChannelFamily::Cache,
            false,
            GEOM,
        ))),
    ];
    let (_, trace) = run_reference_traced(&cfg, streams);
    let findings = linter_for(Mode::Commodity).lint(&TraceBundle::from_uarch(&trace));
    assert!(
        findings.is_empty(),
        "0-bit cache sender must leave no co-residency signal, got {findings:#?}"
    );
}
