//! Differential crash-safe-restart tests for `snicd`.
//!
//! The contract under test: a daemon restored from a snapshot image is
//! indistinguishable from one that never stopped. For *every* split
//! point of an eventful request history — launches, overload sheds, an
//! injected NF crash and freeze, a reclaim, and a power loss mid-scrub
//! that leaves a watermarked scrub ticket behind — snapshotting at the
//! split, restoring, and replaying the suffix must reproduce the
//! uninterrupted run byte for byte: every response line, the full
//! serve transcript, and the device-state fingerprint (which includes
//! pending scrub watermarks).

use snic::serve::daemon::{Daemon, DaemonConfig};
use snic::serve::snapshot::{render_image, restore};

fn config() -> DaemonConfig {
    DaemonConfig {
        seed: 0x1757A7,
        // Service is driven by explicit `step` lines so the fixture
        // can actually build queues and shed.
        auto_steps: 0,
        ..DaemonConfig::default()
    }
}

/// An eventful history: multi-tenant traffic, an overload burst, an
/// injected NF crash (freeze + reclaim), and a power loss mid-scrub
/// whose watermarked ticket must survive a restart.
fn history() -> Vec<String> {
    let mut id = 0u64;
    let mut lines = Vec::new();
    let mut l = |s: &str| {
        id += 1;
        lines.push(s.replace("{id}", &id.to_string()));
    };
    l(r#"{"op":"register","tenant":"a","id":{id},"queue_depth":2,"burst":3,"refill_ps":5000000}"#);
    l(r#"{"op":"launch","tenant":"a","id":{id},"name":"fw","mem":8,"port":80}"#);
    l(r#"{"op":"step","id":{id},"n":1}"#);
    l(r#"{"op":"launch","tenant":"b","id":{id},"name":"ids","mem":8,"port":81}"#);
    l(r#"{"op":"step","id":{id},"n":1}"#);
    l(r#"{"op":"send","tenant":"a","id":{id},"count":5,"port":80}"#);
    l(r#"{"op":"send","tenant":"b","id":{id},"count":3,"port":81}"#);
    l(r#"{"op":"step","id":{id},"n":2}"#);
    l(r#"{"op":"poll","tenant":"a","id":{id},"name":"fw"}"#);
    l(r#"{"op":"step","id":{id},"n":1}"#);
    // Refill a's bucket to its burst of 3, then burst 5 requests with
    // no service in between: 2 admitted (queue depth 2), 1 shed
    // SERVE-OVERLOADED on a token, 2 shed SERVE-RATE-LIMITED dry.
    l(r#"{"op":"advance","id":{id},"us":50}"#);
    for _ in 0..5 {
        l(r#"{"op":"send","tenant":"a","id":{id},"count":1,"port":80}"#);
    }
    l(r#"{"op":"step","id":{id},"n":4}"#);
    l(r#"{"op":"stats","tenant":"a","id":{id},"name":"fw"}"#);
    l(r#"{"op":"step","id":{id},"n":1}"#);
    // Crash b's NF on the next delivered packet: freeze with one
    // request still queued, shed the next at admission, then reclaim.
    l(r#"{"op":"inject-fault","id":{id},"site":"rx","kind":"nf-crash","after":1}"#);
    l(r#"{"op":"send","tenant":"b","id":{id},"count":1,"port":81}"#);
    l(r#"{"op":"send","tenant":"b","id":{id},"count":1,"port":81}"#);
    l(r#"{"op":"step","id":{id},"n":2}"#);
    l(r#"{"op":"send","tenant":"b","id":{id},"count":1,"port":81}"#);
    l(r#"{"op":"health","id":{id}}"#);
    l(r#"{"op":"reclaim","tenant":"b","id":{id}}"#);
    // Power loss on the third scrub chunk of the next teardown: the
    // request fails typed, the region keeps a watermarked scrub
    // ticket, and the device keeps serving.
    l(r#"{"op":"inject-fault","id":{id},"site":"scrub","kind":"power-loss","after":3}"#);
    l(r#"{"op":"teardown","tenant":"a","id":{id},"name":"fw"}"#);
    l(r#"{"op":"step","id":{id},"n":1}"#);
    l(r#"{"op":"health","id":{id}}"#);
    l(r#"{"op":"launch","tenant":"b","id":{id},"name":"ids2","mem":4,"port":82}"#);
    l(r#"{"op":"send","tenant":"b","id":{id},"count":2,"port":82}"#);
    l(r#"{"op":"step","id":{id},"n":2}"#);
    l(r#"{"op":"resume-scrubs","id":{id}}"#);
    l(r#"{"op":"snapshot","id":{id}}"#);
    l(r#"{"op":"verify","id":{id}}"#);
    l(r#"{"op":"drain","id":{id}}"#);
    lines
}

fn run_uninterrupted(lines: &[String]) -> (Daemon, Vec<String>) {
    let mut d = Daemon::new(config());
    let mut responses = Vec::new();
    for line in lines {
        responses.extend(d.ingest(line));
    }
    (d, responses)
}

#[test]
fn the_history_is_actually_eventful() {
    // Guard the fixture itself: if a refactor makes the schedule
    // boring, the differential below stops proving anything.
    let (d, responses) = run_uninterrupted(&history());
    let all = responses.join("\n");
    assert!(all.contains("SERVE-OVERLOADED"), "no overload shed:\n{all}");
    assert!(all.contains("SERVE-RATE-LIMITED"), "no rate shed:\n{all}");
    assert!(all.contains("SERVE-FROZEN"), "no freeze shed:\n{all}");
    assert!(all.contains("\"thawed\":true"), "no reclaim thaw:\n{all}");
    assert!(all.contains("SERVE-FAULT"), "no power-loss fault:\n{all}");
    assert!(
        all.contains("\"pending_scrubs\":1"),
        "no watermarked scrub ticket observed:\n{all}"
    );
    assert!(d.lint().is_empty(), "Pass 4: {:?}", d.lint());
}

#[test]
fn every_split_point_restarts_byte_identically() {
    let lines = history();
    let (reference, want_responses) = run_uninterrupted(&lines);
    let want_state = reference.state_fingerprint();

    for split in 0..=lines.len() {
        // Run the prefix, "crash", restore from the image, replay.
        let mut first = Daemon::new(config());
        let mut responses = Vec::new();
        for line in &lines[..split] {
            responses.extend(first.ingest(line));
        }
        let image = render_image(&first);
        let prefix_state = first.state_fingerprint();
        drop(first);

        let (mut second, replayed) =
            restore(&image).unwrap_or_else(|e| panic!("restore at split {split}: {e}"));
        assert_eq!(replayed, responses, "replayed prefix at split {split}");
        assert_eq!(
            second.state_fingerprint(),
            prefix_state,
            "restored state at split {split}"
        );
        let mut all = replayed;
        for line in &lines[split..] {
            all.extend(second.ingest(line));
        }
        assert_eq!(all, want_responses, "full responses at split {split}");
        assert_eq!(
            second.state_fingerprint(),
            want_state,
            "final state at split {split}"
        );
    }
}

#[test]
fn pending_scrub_watermarks_round_trip_through_restore() {
    // Split immediately after the power-loss teardown, while the
    // interrupted region still holds a watermarked scrub ticket.
    let lines = history();
    // inject-fault line, then the teardown request, then the `step`
    // that executes it.
    let power_loss_at = lines
        .iter()
        .position(|l| l.contains("\"site\":\"scrub\""))
        .expect("scrub power-loss line")
        + 3;
    let mut d = Daemon::new(config());
    for line in &lines[..power_loss_at] {
        d.ingest(line);
    }
    let tickets: Vec<_> = d.nic().pending_scrubs().to_vec();
    assert_eq!(tickets.len(), 1, "the interrupted scrub left its ticket");
    assert!(
        tickets[0].watermark > 0,
        "partial scrub progress recorded: {tickets:?}"
    );

    let (restored, _) = restore(&render_image(&d)).expect("restore");
    let restored_tickets: Vec<_> = restored.nic().pending_scrubs().to_vec();
    assert_eq!(
        format!("{tickets:?}"),
        format!("{restored_tickets:?}"),
        "scrub tickets (base, len, watermark) must survive restart"
    );
    assert_eq!(restored.state_fingerprint(), d.state_fingerprint());
}
