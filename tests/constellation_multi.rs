//! Figure 4b: a constellation spanning multiple untrusted hosts, each
//! with its own S-NIC and host enclave, inside an untrusted cloud.

use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::constellation::Constellation;
use snic::core::device::SmartNic;
use snic::core::enclave::HostEnclave;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::dh::DhParams;
use snic::crypto::keys::VendorCa;
use snic::types::{ByteSize, CoreId, NfId};

struct Host {
    nic: SmartNic,
    nf: NfId,
    measurement: [u8; 32],
    enclave: HostEnclave,
}

fn build_host(
    rng: &mut rand::rngs::StdRng,
    nic_vendor: &VendorCa,
    cpu_vendor: &VendorCa,
    name: &str,
    seed: u64,
) -> Host {
    let mut nic = SmartNic::new(
        NicConfig {
            seed,
            ..NicConfig::small(NicMode::Snic)
        },
        nic_vendor,
    );
    let receipt = nic
        .nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(4),
            NfImage {
                code: format!("{name}-nf").into_bytes(),
                config: vec![],
            },
        ))
        .expect("launch");
    let enclave = HostEnclave::load(rng, cpu_vendor, format!("{name}-enclave").as_bytes());
    Host {
        nf: receipt.nf_id,
        measurement: receipt.measurement,
        nic,
        enclave,
    }
}

#[test]
fn three_host_constellation_full_mesh() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfe11);
    let nic_vendor = VendorCa::new(&mut rng);
    let cpu_vendor = VendorCa::new(&mut rng);

    let mut hosts: Vec<Host> = (0..3)
        .map(|i| {
            build_host(
                &mut rng,
                &nic_vendor,
                &cpu_vendor,
                &format!("host{i}"),
                100 + i,
            )
        })
        .collect();

    let mut constellation = Constellation::new(DhParams::tiny_test_group());
    for (i, h) in hosts.iter().enumerate() {
        constellation.register(format!("nf{i}"), nic_vendor.public().clone(), h.measurement);
        constellation.register(
            format!("enclave{i}"),
            cpu_vendor.public().clone(),
            h.enclave.measurement,
        );
    }

    // Pairwise attestation: each NF attested by every other host's
    // enclave name (the verifier side), plus each local enclave.
    for i in 0..3 {
        for (j, host) in hosts.iter_mut().enumerate() {
            if i == j {
                continue;
            }
            constellation
                .attest_nf(
                    &mut rng,
                    &format!("enclave{i}"),
                    &format!("nf{j}"),
                    &mut host.nic,
                    host.nf,
                )
                .unwrap_or_else(|e| panic!("attest nf{j} from enclave{i}: {e}"));
        }
        let enclave = &hosts[i].enclave;
        constellation
            .attest_enclave(&mut rng, &format!("nf{i}"), &format!("enclave{i}"), enclave)
            .expect("local enclave attestation");
    }

    // A message hops host0's enclave → host1's NF → host2's NF, sealed
    // and re-sealed on each attested pair.
    let secret = b"cross-host replicated state update";
    let mut tx01 = constellation
        .channel("enclave0", "nf1")
        .expect("channel 0->1");
    let mut rx01 = constellation
        .channel("nf1", "enclave0")
        .expect("channel 1<-0");
    let hop1 = rx01.open(&tx01.seal(secret)).expect("hop 1");

    let mut tx12 = constellation
        .channel("enclave1", "nf2")
        .expect("channel 1->2");
    let mut rx12 = constellation
        .channel("nf2", "enclave1")
        .expect("channel 2<-1");
    let hop2 = rx12.open(&tx12.seal(&hop1)).expect("hop 2");
    assert_eq!(hop2, secret);

    // An endpoint outside the constellation cannot read the traffic.
    let sealed = tx01.seal(secret);
    let outsider_key = [0u8; 32];
    let mut outsider = snic::core::channel::SecureChannel::new(&outsider_key, false);
    assert!(outsider.open(&sealed).is_err());
}

#[test]
fn distinct_nics_have_distinct_attestation_identities() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfe12);
    let nic_vendor = VendorCa::new(&mut rng);
    let cpu_vendor = VendorCa::new(&mut rng);
    let a = build_host(&mut rng, &nic_vendor, &cpu_vendor, "a", 1);
    let b = build_host(&mut rng, &nic_vendor, &cpu_vendor, "b", 2);
    // Different images → different measurements; different seeds →
    // different attestation keys.
    assert_ne!(a.measurement, b.measurement);
    assert_ne!(
        a.nic.ak_endorsement().subject.to_bytes(),
        b.nic.ak_endorsement().subject.to_bytes()
    );
    // But both chain to the same vendor.
    assert!(a.nic.ek_certificate().verify(nic_vendor.public()));
    assert!(b.nic.ek_certificate().verify(nic_vendor.public()));
}
