//! Property-based lifecycle invariants under fault interleavings.
//!
//! Random interleavings of launch, teardown, NF crashes, power loss
//! mid-scrub, scrub resumption and full power cycles must never
//! violate: an allocator free list that stays sorted and coalesced, no
//! region handed out while its teardown scrub is pending, and every
//! (re)launched region reading back as zeros — even when the previous
//! tenant's scrub was interrupted by power loss.

use proptest::prelude::*;
use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::keys::VendorCa;
use snic::faults::{FaultKind, FaultPlan, FaultSite};
use snic::types::{ByteSize, CoreId, NfId, NfState, SnicError};

fn nic() -> SmartNic {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x11fe);
    SmartNic::new(NicConfig::small(NicMode::Snic), &VendorCa::new(&mut rng))
}

/// Marker offset: past the image, inside even the smallest (2 MiB)
/// region. Every live NF gets a dirty marker written here, so a
/// relaunch over a recycled region can prove the scrub ran.
const MARK_OFF: u64 = 1 << 20;
const MARK: [u8; 16] = [0x77; 16];

#[derive(Debug, Clone)]
enum Op {
    Launch { core: u8, mem_mib: u8 },
    Teardown { slot: u8 },
    CrashNf { slot: u8 },
    PowerLossTeardown { slot: u8 },
    ResumeScrubs,
    PowerCycle,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u8..10).prop_map(|(core, mem_mib)| Op::Launch { core, mem_mib }),
        (0u8..4, 1u8..10).prop_map(|(core, mem_mib)| Op::Launch { core, mem_mib }),
        (0u8..6).prop_map(|slot| Op::Teardown { slot }),
        (0u8..6).prop_map(|slot| Op::CrashNf { slot }),
        (0u8..6).prop_map(|slot| Op::PowerLossTeardown { slot }),
        Just(Op::ResumeScrubs),
        Just(Op::PowerCycle),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn lifecycle_invariants_hold_under_fault_interleavings(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut device = nic();
        // Live slots: (id, core, region base, operational?).
        let mut live: Vec<(NfId, CoreId, u64, bool)> = Vec::new();

        for op in ops {
            match op {
                Op::Launch { core, mem_mib } => {
                    let request = LaunchRequest::minimal(
                        CoreId(u16::from(core)),
                        ByteSize::mib(u64::from(mem_mib)),
                        NfImage { code: vec![core; 64], config: vec![] },
                    );
                    let before = device.resource_snapshot();
                    match device.nf_launch(request) {
                        Ok(receipt) => {
                            let id = receipt.nf_id;
                            let c = CoreId(u16::from(core));
                            let base = device.record_of(id).unwrap().region.0;
                            // Invariant: a (re)used region reads back
                            // zeroed, no matter how its previous tenant
                            // died.
                            let mut buf = [0xffu8; 16];
                            device.nf_read(id, c, MARK_OFF, &mut buf).expect("own read");
                            prop_assert_eq!(buf, [0u8; 16], "region handed out dirty");
                            device.nf_write(id, c, MARK_OFF, &MARK).expect("own write");
                            live.push((id, c, base, true));
                        }
                        Err(e) => {
                            prop_assert!(
                                matches!(
                                    e,
                                    SnicError::CoreBusy(_)
                                        | SnicError::InvalidConfig(_)
                                        | SnicError::ScrubPending { .. }
                                        | SnicError::Transient(_)
                                ),
                                "unexpected launch error {:?}", e
                            );
                            // Invariant: a failed launch rolls back to a
                            // bit-identical resource snapshot.
                            prop_assert_eq!(&before, &device.resource_snapshot());
                        }
                    }
                }
                Op::Teardown { slot } => {
                    if live.is_empty() { continue; }
                    let (id, _, _, _) = live.remove(usize::from(slot) % live.len());
                    device.nf_teardown(id).expect("teardown of live NF");
                }
                Op::CrashNf { slot } => {
                    if live.is_empty() { continue; }
                    let idx = usize::from(slot) % live.len();
                    let (id, core, _, ref mut operational) = live[idx];
                    device.fault_nf(id).expect("fault of live NF");
                    *operational = false;
                    // Invariant: a faulted NF is frozen — state is
                    // `Faulted` and the data path refuses it.
                    prop_assert_eq!(device.state_of(id).unwrap(), NfState::Faulted);
                    let err = device.nf_write(id, core, MARK_OFF, &MARK).unwrap_err();
                    prop_assert!(matches!(err, SnicError::NfFaulted(_)));
                }
                Op::PowerLossTeardown { slot } => {
                    if live.is_empty() { continue; }
                    let (id, _, base, _) = live.remove(usize::from(slot) % live.len());
                    device.inject_faults(
                        FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss),
                    );
                    let err = device.nf_teardown(id).expect_err("armed power loss");
                    prop_assert!(matches!(err, SnicError::PowerLoss));
                    device.restore_power();
                    // Invariant: the interrupted region sits in the
                    // pending-scrub queue, not on the free list.
                    prop_assert!(
                        device.pending_scrubs().iter().any(|t| t.base == base),
                        "interrupted scrub lost its ticket"
                    );
                }
                Op::ResumeScrubs => {
                    device.resume_scrubs();
                    prop_assert!(device.pending_scrubs().is_empty());
                }
                Op::PowerCycle => {
                    device.power_cycle();
                    prop_assert_eq!(device.live_nfs(), 0);
                    prop_assert!(device.pending_scrubs().is_empty());
                    prop_assert!(!device.is_crashed());
                    live.clear();
                }
            }

            // Global invariants, after every operation:
            // the free list is sorted, coalesced, and disjoint from
            // pending-scrub regions (§4.6: dirty memory is never free).
            let free = device.free_regions();
            for w in free.windows(2) {
                prop_assert!(
                    w[0].0 + w[0].1 < w[1].0,
                    "free list not sorted+coalesced: {:?}", free
                );
            }
            for t in device.pending_scrubs() {
                prop_assert!(
                    free.iter().all(|&(b, l)| b + l <= t.base || t.base + t.len <= b),
                    "pending-scrub region {:#x} overlaps the free list {:?}", t.base, free
                );
            }
            prop_assert_eq!(device.live_nfs(), live.len());
        }
    }

    #[test]
    fn power_cycle_always_restores_a_quiescent_device(
        ops in proptest::collection::vec(op_strategy(), 1..30),
    ) {
        let mut device = nic();
        let mut live: Vec<NfId> = Vec::new();
        for op in ops {
            match op {
                Op::Launch { core, mem_mib } => {
                    if let Ok(r) = device.nf_launch(LaunchRequest::minimal(
                        CoreId(u16::from(core)),
                        ByteSize::mib(u64::from(mem_mib)),
                        NfImage::default(),
                    )) {
                        live.push(r.nf_id);
                    }
                }
                Op::Teardown { slot } | Op::CrashNf { slot } | Op::PowerLossTeardown { slot } => {
                    if live.is_empty() { continue; }
                    let id = live.remove(usize::from(slot) % live.len());
                    if matches!(op, Op::PowerLossTeardown { .. }) {
                        device.inject_faults(
                            FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss),
                        );
                        let _ = device.nf_teardown(id);
                        device.restore_power();
                    } else if matches!(op, Op::CrashNf { .. }) {
                        device.fault_nf(id).expect("fault of live NF");
                        live.push(id); // still holds resources until teardown
                    } else {
                        device.nf_teardown(id).expect("teardown of live NF");
                    }
                }
                Op::ResumeScrubs => { device.resume_scrubs(); }
                Op::PowerCycle => { device.power_cycle(); live.clear(); }
            }
        }
        // However the run ended, one power cycle yields a device that
        // admits a full-size tenant again.
        device.power_cycle();
        prop_assert_eq!(device.live_nfs(), 0);
        prop_assert!(device.pending_scrubs().is_empty());
        let r = device.nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(64),
            NfImage::default(),
        ));
        prop_assert!(r.is_ok(), "post-cycle launch failed: {:?}", r.err());
    }
}
