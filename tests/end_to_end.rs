//! End-to-end integration: multiple tenants' NFs on one S-NIC, real
//! traffic through the switching rules and VPPs, real NF processing,
//! attestation, and teardown/relaunch.

use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::keys::VendorCa;
use snic::nf::{build, NetworkFunction, NfKind, NullSink, Verdict};
use snic::pktio::rules::{RuleMatch, SwitchRule};
use snic::trace::{IctfConfig, IctfLikeTrace};
use snic::types::{ByteSize, CoreId, FiveTuple, NfId};

fn vendor() -> VendorCa {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xe2e);
    VendorCa::new(&mut rng)
}

fn launch(nic: &mut SmartNic, core: u16, port: u16, name: &str) -> NfId {
    let request = LaunchRequest {
        rules: vec![SwitchRule {
            dst_port: RuleMatch::Exact(port),
            priority: 10,
            ..SwitchRule::any(NfId(0))
        }],
        ..LaunchRequest::minimal(
            CoreId(core),
            ByteSize::mib(8),
            NfImage {
                code: name.as_bytes().to_vec(),
                config: vec![],
            },
        )
    };
    nic.nf_launch(request).expect("launch").nf_id
}

#[test]
fn four_tenants_process_disjoint_traffic() {
    let v = vendor();
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
    let kinds = [
        NfKind::Firewall,
        NfKind::Nat,
        NfKind::LoadBalancer,
        NfKind::Monitor,
    ];
    let ports = [80u16, 8080, 443, 53];
    let ids: Vec<NfId> = kinds
        .iter()
        .zip(ports)
        .enumerate()
        .map(|(i, (k, port))| launch(&mut nic, i as u16, port, k.name()))
        .collect();

    // Generate realistic traffic and force the dst ports to rotate over
    // the four tenants.
    let mut trace = IctfLikeTrace::new(IctfConfig {
        flows: 500,
        ..IctfConfig::default()
    });
    let mut sent = [0u32; 4];
    for i in 0..600 {
        let mut pkt = trace.next_packet();
        // Rewrite the destination port to steer deterministically.
        let slot = i % 4;
        let mut raw = pkt.data.to_vec();
        let l4 = pkt.l4_offset();
        raw[l4 + 2..l4 + 4].copy_from_slice(&ports[slot].to_be_bytes());
        pkt = snic::types::Packet::from_bytes(bytes::Bytes::from(raw));
        if nic.rx_packet(&pkt).expect("rx") == Some(ids[slot]) {
            sent[slot] += 1;
        }
    }
    assert_eq!(sent, [150, 150, 150, 150]);

    // Each tenant's NF processes its own queue with real semantics.
    // (The firewall may legitimately drop packets that match deny rules;
    // the others should never drop well-formed traffic.)
    for (i, (&id, kind)) in ids.iter().zip(kinds).enumerate() {
        let mut nf = build(kind, 42);
        let mut processed = 0;
        while let Some(pkt) = nic.poll_packet(id).expect("poll") {
            let verdict = nf.process(&pkt, &mut NullSink);
            if kind != NfKind::Firewall {
                assert_ne!(verdict, Verdict::Drop, "tenant {i} dropped: {verdict:?}");
            }
            processed += 1;
        }
        assert_eq!(processed, 150, "tenant {i}");
    }
}

#[test]
fn teardown_then_relaunch_reuses_resources() {
    let v = vendor();
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
    for round in 0..5 {
        let ids: Vec<NfId> = (0..4)
            .map(|i| launch(&mut nic, i, 1000 + i, &format!("round{round}-{i}")))
            .collect();
        assert_eq!(nic.live_nfs(), 4);
        for id in ids {
            nic.nf_teardown(id).expect("teardown");
        }
        assert_eq!(nic.live_nfs(), 0);
    }
}

#[test]
fn measurement_changes_with_rules() {
    // The cumulative hash covers switching rules (§4.6), so two launches
    // differing only in rules must measure differently.
    let v = vendor();
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
    let a = launch(&mut nic, 0, 80, "same-code");
    let b = launch(&mut nic, 1, 81, "same-code");
    let ma = nic.measurement_of(a).unwrap();
    let mb = nic.measurement_of(b).unwrap();
    assert_ne!(ma, mb);
}

#[test]
fn nat_rewrites_survive_the_tx_path() {
    let v = vendor();
    let mut nic = SmartNic::new(NicConfig::small(NicMode::Snic), &v);
    let id = launch(&mut nic, 0, 80, "nat");
    let mut nat = snic::nf::NatNf::with_defaults(0);

    let pkt = snic::types::packet::PacketBuilder::new(
        0x0a00_0001,
        0xc633_0001,
        snic::types::Protocol::Tcp,
        5555,
        80,
    )
    .payload(b"data".to_vec())
    .build();
    nic.rx_packet(&pkt).expect("rx");
    let delivered = nic.poll_packet(id).expect("poll").expect("queued");
    let Verdict::Rewritten(out) = nat.process(&delivered, &mut NullSink) else {
        panic!("expected rewrite");
    };
    nic.tx_packet(id, out).expect("tx");
    let on_wire = nic.wire_pop().expect("wire");
    let ft = FiveTuple::from_packet(&on_wire).unwrap();
    assert_eq!(ft.src_ip, 0xc0a8_0001, "NAT external address on the wire");
    assert!(on_wire.ipv4().unwrap().checksum_ok());
}
