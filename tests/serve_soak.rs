//! The `snicd` soak acceptance suite (ISSUE 8 gate).
//!
//! Runs the seeded ~30-simulated-second multi-tenant overload schedule
//! with its mid-run fault plan and enforces the acceptance criteria:
//! under seeded overload plus a NIC-OS-crash schedule, non-faulted
//! tenants see zero failed requests, the faulted tenant's queue is
//! frozen and then reclaimed, and a snapshot/restart mid-soak yields a
//! byte-identical transcript. The rendered summary is also pinned as a
//! golden snapshot (regenerate intentionally with `SNIC_BLESS=1`).

use snic::serve::soak;

const SEED: u64 = 0xBEEF;

fn summary(report: &soak::SoakReport) -> String {
    format!(
        "# snicd soak golden (seed {seed:#x})\n{table}victim: {victim:?}\ndigest: {digest}\n",
        seed = report.seed,
        table = report.table(),
        victim = report.victim,
        digest = report.digest()
    )
}

#[test]
fn soak_meets_the_acceptance_gate() {
    let report = soak::run(SEED);
    report.gate().expect("soak acceptance gate");

    // Spot-check the specific acceptance wording over the raw numbers,
    // independent of gate()'s own implementation.
    let get = |t: &str| {
        report
            .tenants
            .iter()
            .find(|(n, _)| n == t)
            .map(|(_, s)| *s)
            .expect("tenant present")
    };
    let (alpha, bravo, flood) = (get("alpha"), get("bravo"), get("flood"));
    assert_eq!(alpha.failed, 0, "non-faulted tenant saw failures");
    assert_eq!(alpha.shed, 0, "non-faulted tenant was shed");
    assert_eq!(alpha.expired, 0, "non-faulted tenant expired");
    assert_eq!(flood.failed, 0, "overloaded but non-faulted tenant failed");
    assert!(flood.shed > 0, "backpressure never engaged");
    assert!(report.victim.frozen && report.victim.thawed);
    assert!(
        report.victim.held_shed > 0,
        "frozen queue was not reclaimed"
    );
    assert!(bravo.reclaimed > 0, "reclaim accounting missing");
    assert!(report.findings.is_empty(), "Pass 4: {:?}", report.findings);
}

#[test]
fn mid_soak_restart_transcript_is_byte_identical() {
    let n = soak::schedule(SEED).len();
    // One restart in the thick of the overload phase and one right
    // after the fault plan has frozen the victim.
    for split in [n / 3, (2 * n) / 3] {
        let (a, b) = soak::run_with_restart(SEED, split).expect("restart");
        assert_eq!(a.responses, b.responses, "responses at split {split}");
        assert_eq!(a.transcript, b.transcript, "transcript at split {split}");
        assert_eq!(a.state, b.state, "device state at split {split}");
        b.gate().expect("restarted run still passes the gate");
    }
}

#[test]
fn soak_summary_matches_golden() {
    let actual = summary(&soak::run(SEED));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/soak.txt");
    if std::env::var("SNIC_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden snapshot tests/golden/soak.txt ({e}); regenerate with SNIC_BLESS=1")
    });
    assert_eq!(
        expected, actual,
        "\nsoak golden diverged; if intentional, regenerate with SNIC_BLESS=1 and review\n"
    );
}
