//! Integration coverage of the paper's extension points: NF chaining via
//! cross-VPP links (§4.8) and SecDCP cache partitioning (§4.2, option 2).

use snic::core::chain::{ChainLink, LINK_LATENCY};
use snic::nf::{DpiNf, NatNf, NetworkFunction, NullSink, Verdict};
use snic::types::packet::PacketBuilder;
use snic::types::{NfId, Picos, Protocol};
use snic::uarch::cache::{Cache, CacheConfig, Partition};
use snic::uarch::config::MachineConfig;
use snic::uarch::engine::run_colocated;
use snic::uarch::stream::{EventSource, SyntheticStream};

#[test]
fn nat_to_dpi_chain_over_link() {
    // Chain: NAT (NfId 1) → DPI (NfId 2) through the isolation-preserving
    // link. The NAT rewrites, the DPI inspects the rewritten packet.
    let mut link = ChainLink::new(NfId(1), NfId(2), 16);
    let mut nat = NatNf::with_defaults(0);
    let mut dpi = DpiNf::new(&[b"exfiltrate".to_vec()]);

    let mut now = Picos::ZERO;
    let mut matched_total = 0u32;
    for i in 0..20u32 {
        let payload = if i % 5 == 0 {
            b"exfiltrate the data".to_vec()
        } else {
            b"benign".to_vec()
        };
        let pkt = PacketBuilder::new(0x0a00_0000 + i, 0xc633_0001, Protocol::Tcp, 10_000, 80)
            .payload(payload)
            .build();
        let Verdict::Rewritten(rewritten) = nat.process(&pkt, &mut NullSink) else {
            panic!("NAT should rewrite");
        };
        let ready = link.send(NfId(1), now, rewritten).expect("link capacity");
        now = ready;
        let delivered = link
            .recv(NfId(2), now)
            .expect("receiver ok")
            .expect("message ready");
        // NAT's rewrite survived the link.
        assert_eq!(delivered.ipv4().unwrap().src, 0xc0a8_0001);
        if let Verdict::Matched(m) = dpi.process(&delivered, &mut NullSink) {
            matched_total += m;
        }
        now += LINK_LATENCY;
    }
    assert_eq!(matched_total, 4, "every 5th packet carries the signature");
    assert_eq!(link.transferred(), 20);
}

#[test]
fn secdcp_allows_asymmetric_allocations() {
    // A memory-hungry NF paired with a light one: SecDCP can shift ways
    // toward the heavy tenant and beat the static 50/50 split for it,
    // without giving the light tenant a probe channel (its slice is
    // still exclusively its own).
    let heavy = || EventSource::from(SyntheticStream::new(3 << 20, 6, 4, 40_000, 11));
    let light = || EventSource::from(SyntheticStream::new(16 << 10, 6, 4, 40_000, 22));

    let static_cfg = MachineConfig::snic(2, 2 << 20);
    let secdcp_cfg = MachineConfig::snic_secdcp(vec![14, 2], 2 << 20);
    let static_run = run_colocated(&static_cfg, vec![heavy(), light()]);
    let secdcp_run = run_colocated(&secdcp_cfg, vec![heavy(), light()]);
    assert!(
        secdcp_run.nfs[0].l2_misses <= static_run.nfs[0].l2_misses,
        "14/16 ways should not miss more than 8/16: {} vs {}",
        secdcp_run.nfs[0].l2_misses,
        static_run.nfs[0].l2_misses
    );
}

#[test]
fn secdcp_resize_cannot_leak_via_stale_lines() {
    // After shrinking a tenant's allocation, its stranded lines must not
    // be observable by the tenant that inherits the ways.
    let mut cache = Cache::new(
        CacheConfig {
            size: 64 << 10,
            ways: 8,
            line: 64,
        },
        Partition::SecDcp {
            allocation: vec![6, 2],
        },
    );
    // Tenant 0 fills its 6 ways in set 0.
    let sets = 64 * 1024 / (8 * 64);
    let stride = (sets * 64) as u64;
    for i in 0..6u64 {
        cache.access(0, i * stride);
    }
    // Repartition: tenant 1 now owns 6 ways.
    cache.secdcp_resize(vec![2, 6]);
    // Tenant 1 probing its new ways must see only misses (no residue).
    for i in 0..6u64 {
        assert!(
            !cache.access(1, i * stride),
            "tenant 1 hit a stale line at {i}"
        );
    }
}
