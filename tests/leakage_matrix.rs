//! The leakage-bandwidth matrix golden and its differential security
//! bounds (ISSUE 9 acceptance).
//!
//! The full sweep — 3 channel families × 4 geometries × 3 epoch
//! lengths × {commodity, S-NIC} — is pinned byte-for-byte against
//! `tests/golden/leakage.txt` (regenerate intentionally with
//! `SNIC_BLESS=1`). On top of the snapshot, the *differential*
//! assertions hold unconditionally: every S-NIC cell sits under the
//! hard capacity ceiling, every exploitable commodity cell clears the
//! floor, and each family has at least one commodity cell transmitting
//! above 1 bit per simulated second. The smoke subset (the lint-gate
//! form) must measure byte-identically serial vs parallel and diff
//! clean against the full golden.

use snic::leakage::{
    full_specs, smoke_specs, ChannelFamily, LeakageMatrix, Mode, CELL_BITS,
    COMMODITY_CAPACITY_FLOOR_BPS,
};
use snic::sim::Exec;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/leakage.txt")
}

#[test]
fn leakage_matrix_matches_golden_and_security_bounds() {
    let matrix = LeakageMatrix::measure(full_specs(), Exec::Parallel, CELL_BITS);
    let actual = matrix.to_text();

    // The bounds hold regardless of what the golden says: they are the
    // quantitative isolation claim itself.
    let violations = matrix.check_bounds();
    assert!(
        violations.is_empty(),
        "security bounds violated: {violations:#?}"
    );
    for family in ChannelFamily::ALL {
        assert!(
            matrix.cells.iter().any(|c| c.spec.family == family
                && c.spec.mode == Mode::Commodity
                && c.capacity_bps > COMMODITY_CAPACITY_FLOOR_BPS),
            "family {family:?} has no commodity cell above \
             {COMMODITY_CAPACITY_FLOOR_BPS} bit/s"
        );
    }

    let path = golden_path();
    if std::env::var("SNIC_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot tests/golden/leakage.txt ({e}); regenerate with SNIC_BLESS=1"
        )
    });
    assert_eq!(
        expected, actual,
        "\nleakage matrix diverged from golden; if intentional, regenerate with SNIC_BLESS=1 and review\n"
    );
}

#[test]
fn smoke_subset_is_serial_parallel_identical_and_diffs_clean_against_golden() {
    let serial = LeakageMatrix::measure(smoke_specs(), Exec::Serial, CELL_BITS);
    let parallel = LeakageMatrix::measure(smoke_specs(), Exec::Parallel, CELL_BITS);
    assert_eq!(
        serial.to_text(),
        parallel.to_text(),
        "smoke sweep must be byte-identical serial vs parallel"
    );

    // The smoke rows are a strict subset of the full sweep and must
    // measure to exactly the golden's values (this is what the lint
    // gate relies on).
    if let Ok(text) = std::fs::read_to_string(golden_path()) {
        let golden = LeakageMatrix::from_text(&text).expect("parse golden");
        let mismatches = serial.diff(&golden);
        assert!(mismatches.is_empty(), "smoke vs golden: {mismatches:#?}");
    }
}
