//! Recoverable-lifecycle regressions at the public API surface.
//!
//! Each test injects a deterministic fault ([`snic::faults::FaultPlan`])
//! and checks the §4.6 recovery contract: failed launches roll back to
//! a bit-identical resource snapshot, a power cycle after a mid-teardown
//! power loss leaks nothing, the untrusted NIC OS restarts without
//! touching running functions, transient admission failures back off in
//! simulated time, and a region interrupted mid-scrub is never reused
//! before zeroization completes.

use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::core::nicos::{NicOs, RetryPolicy};
use snic::crypto::keys::VendorCa;
use snic::faults::{FaultEventKind, FaultKind, FaultPlan, FaultSite};
use snic::mem::guard::Principal;
use snic::types::{ByteSize, CoreId, SnicError};

fn nic(mode: NicMode) -> SmartNic {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xfa17);
    SmartNic::new(NicConfig::small(mode), &VendorCa::new(&mut rng))
}

fn request(core: u16, mem_mib: u64) -> LaunchRequest {
    LaunchRequest::minimal(
        CoreId(core),
        ByteSize::mib(mem_mib),
        NfImage {
            code: vec![core as u8; 64],
            config: vec![],
        },
    )
}

/// Satellite: every `nf_launch` error path must restore the allocator
/// snapshot exactly — no leaked regions, cores, clusters, or buffer
/// reservations, and no bump-pointer fragmentation.
#[test]
fn failed_launches_roll_back_to_an_identical_snapshot() {
    let mut device = nic(NicMode::Snic);
    let first = device.nf_launch(request(0, 4)).expect("seed launch");
    let first_base = device.record_of(first.nf_id).unwrap().region.0;

    // (error label, request) pairs, each expected to fail.
    let mut overlap = request(1, 4);
    overlap.region_base = Some(first_base);
    let cases: Vec<(&str, LaunchRequest)> = vec![
        ("core busy", request(0, 4)),
        ("zero memory", request(1, 0)),
        ("DRAM exhausted", request(1, 100_000)),
        ("hinted overlap", overlap),
    ];
    for (label, req) in cases {
        let before = device.resource_snapshot();
        let err = device.nf_launch(req).expect_err(label);
        assert!(
            matches!(
                err,
                SnicError::CoreBusy(_)
                    | SnicError::InvalidConfig(_)
                    | SnicError::PageOwned { .. }
                    | SnicError::Verification(_)
            ),
            "{label}: unexpected error {err:?}"
        );
        assert_eq!(
            before,
            device.resource_snapshot(),
            "{label}: failed launch leaked resources"
        );
    }

    // Injected transient exhaustion must also leave the snapshot intact.
    device.inject_faults(
        FaultPlan::none()
            .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
            .on_nth(FaultSite::Launch, 2, FaultKind::AccelPoolExhaustion),
    );
    for label in ["injected DRAM exhaustion", "injected accel exhaustion"] {
        let before = device.resource_snapshot();
        let err = device.nf_launch(request(1, 4)).expect_err(label);
        assert!(err.is_retryable(), "{label}: {err:?} should be retryable");
        assert_eq!(before, device.resource_snapshot(), "{label}: leak");
    }
    // The injector is exhausted: the identical request now succeeds.
    device.nf_launch(request(1, 4)).expect("post-fault launch");
}

/// Satellite: a power cycle after a power loss mid-teardown reclaims
/// everything — the resulting snapshot is identical to a device that
/// tore the same functions down cleanly.
#[test]
fn power_cycle_after_mid_teardown_power_loss_leaks_nothing() {
    // Clean twin: same launches, orderly teardowns.
    let mut clean = nic(NicMode::Snic);
    let a = clean.nf_launch(request(0, 4)).unwrap().nf_id;
    let b = clean.nf_launch(request(1, 8)).unwrap().nf_id;
    clean.nf_teardown(a).unwrap();
    clean.nf_teardown(b).unwrap();
    let want = clean.resource_snapshot();

    // Faulted device: power dies on the first scrub chunk of `a`'s
    // teardown; the cycle must finish the job.
    let mut device = nic(NicMode::Snic);
    let a = device.nf_launch(request(0, 4)).unwrap().nf_id;
    let _b = device.nf_launch(request(1, 8)).unwrap().nf_id;
    device.inject_faults(FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss));
    let err = device.nf_teardown(a).expect_err("power loss mid-scrub");
    assert!(matches!(err, SnicError::PowerLoss), "{err:?}");
    assert!(device.is_crashed());

    device.power_cycle();
    assert!(!device.is_crashed());
    assert_eq!(device.live_nfs(), 0);
    assert!(device.pending_scrubs().is_empty());
    assert_eq!(
        want,
        device.resource_snapshot(),
        "power cycle after interrupted teardown leaked resources"
    );
}

/// §4.6: the NIC OS is untrusted and restartable — a crash mid-
/// management-call restarts the OS in place, surfaces a retryable
/// error, and leaves every running function (state, memory, bindings)
/// untouched.
#[test]
fn nicos_crash_restart_leaves_running_nfs_untouched() {
    let mut device = nic(NicMode::Snic);
    let mut os = NicOs::new(&mut device);
    let a = os.nf_create(request(0, 4)).unwrap().nf_id;
    let b = os.nf_create(request(1, 4)).unwrap().nf_id;
    os.device()
        .nf_write(a, CoreId(0), 128, b"survives")
        .unwrap();

    os.device()
        .inject_faults(FaultPlan::none().on_nth(FaultSite::NicOs, 1, FaultKind::NicOsCrash));
    let err = os.nf_create(request(2, 4)).expect_err("OS crash");
    assert!(matches!(
        err,
        SnicError::Transient(snic::types::TransientResource::NicOs)
    ));
    // The in-place restart rebuilt the managed list from the device.
    assert_eq!(os.managed(), &[a, b]);
    // Re-issuing the interrupted call succeeds.
    let c = os.nf_create(request(2, 4)).unwrap().nf_id;
    assert_eq!(os.managed(), &[a, b, c]);

    // A fresh OS instance recovers the same view, and the functions'
    // memory survived both restarts.
    drop(os);
    let mut os = NicOs::recover(&mut device);
    assert_eq!(os.managed(), &[a, b, c]);
    let mut buf = [0u8; 8];
    os.device().nf_read(a, CoreId(0), 128, &mut buf).unwrap();
    assert_eq!(&buf, b"survives");
}

/// Transient admission failures retry with capped exponential backoff
/// in *simulated* time: the clock advances by the backoff schedule and
/// the transcript records each retry.
#[test]
fn retry_backoff_advances_simulated_time() {
    let mut device = nic(NicMode::Snic);
    device.inject_faults(
        FaultPlan::none()
            .on_nth(FaultSite::Launch, 1, FaultKind::DramExhaustion)
            .on_nth(FaultSite::Launch, 2, FaultKind::DramExhaustion),
    );
    let t0 = device.now();
    let policy = RetryPolicy::default();
    let mut os = NicOs::new(&mut device);
    os.nf_create_with_retry(request(0, 4), policy)
        .expect("third attempt succeeds");
    let elapsed = device.now() - t0;
    // Two backoffs: initial + doubled (both under the cap), plus the
    // successful launch's own instruction latency.
    let floor = policy.initial_backoff + snic::types::Picos(policy.initial_backoff.0 * 2);
    assert!(
        elapsed >= floor,
        "clock advanced {elapsed:?}, backoff floor {floor:?}"
    );
    let retries = device
        .fault_log()
        .iter()
        .filter(|r| matches!(r.kind, FaultEventKind::RetryBackoff { .. }))
        .count();
    assert_eq!(retries, 2, "transcript records each backoff");
}

/// §4.6's crash-consistency contract: a region whose teardown scrub was
/// interrupted by power loss is refused to every launch (even a hinted
/// one) until the resumed scrub finishes zeroizing from its watermark.
#[test]
fn power_loss_mid_scrub_blocks_reuse_until_zeroized() {
    let mut device = nic(NicMode::Snic);
    let nf = device.nf_launch(request(0, 4)).unwrap().nf_id;
    let base = device.record_of(nf).unwrap().region.0;
    // Plant a secret deep in the region, past the first scrub chunk.
    device
        .nf_write(nf, CoreId(0), 1 << 20, &[0x5e; 64])
        .unwrap();

    device.inject_faults(FaultPlan::none().on_nth(FaultSite::Scrub, 1, FaultKind::PowerLoss));
    let err = device.nf_teardown(nf).expect_err("power loss mid-scrub");
    assert!(matches!(err, SnicError::PowerLoss));
    let ticket = device.pending_scrubs()[0];
    assert_eq!(ticket.base, base, "watermark ticket survives the crash");

    device.restore_power();
    // The dirty region is refused, even with a placement hint.
    let mut hinted = request(1, 4);
    hinted.region_base = Some(base);
    let err = device.nf_launch(hinted.clone()).expect_err("dirty reuse");
    assert!(matches!(err, SnicError::ScrubPending { base: b } if b == base));
    // Still denylisted: not even the management plane may read it.
    let mut buf = [0xffu8; 64];
    assert!(device
        .mem_read(Principal::Management, base + (1 << 20), &mut buf)
        .is_err());

    // Resume from the watermark; the region comes back zeroed and the
    // hinted relaunch is admitted.
    assert!(device.resume_scrubs() >= 1);
    device
        .mem_read(Principal::Management, base + (1 << 20), &mut buf)
        .unwrap();
    assert_eq!(buf, [0u8; 64], "secret must not survive the resumed scrub");
    device
        .nf_launch(hinted)
        .expect("region reusable once zeroed");
}
