//! Property-based admission-control invariants for the `snicd` daemon.
//!
//! Random interleavings of requests, explicit service steps, time
//! advances, quota registrations and an injected NF crash must never:
//!
//! - grow a tenant's bounded queue past its configured depth,
//! - break the request-accounting conservation laws
//!   (`submitted == admitted + shed`,
//!   `admitted == served + expired + reclaimed + queued`),
//! - starve a non-faulted tenant: however the schedule interleaves,
//!   pumping the daemon dry serves every unfrozen queue to empty,
//! - produce a transcript Pass 4 objects to.

use proptest::prelude::*;
use snic::serve::daemon::{Daemon, DaemonConfig};
use snic::serve::TenantQuota;

const TENANTS: [&str; 3] = ["t0", "t1", "t2"];

fn daemon() -> Daemon {
    // Service is driven entirely by explicit `step` ops, so schedules
    // control the arrival/service ratio and can actually build queues.
    Daemon::new(DaemonConfig {
        auto_steps: 0,
        quota: TenantQuota {
            queue_depth: 3,
            max_live_nfs: 2,
            burst: 4,
            refill_ps: 400_000,
        },
        ..DaemonConfig::default()
    })
}

#[derive(Debug, Clone)]
enum Op {
    /// A data-plane request (send to an unbound port: never freezes).
    Send { tenant: u8, deadline_us: u16 },
    /// A control-plane request.
    Launch { tenant: u8 },
    /// Serve up to `n` queued requests round-robin.
    Step { n: u8 },
    /// Advance simulated time (refills token buckets, expires
    /// deadlines).
    Advance { us: u16 },
    /// Re-register one tenant with a different queue bound.
    Requota { tenant: u8, depth: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..3, 0u16..200).prop_map(|(tenant, deadline_us)| Op::Send {
            tenant,
            deadline_us
        }),
        (0u8..3, 0u16..200).prop_map(|(tenant, deadline_us)| Op::Send {
            tenant,
            deadline_us
        }),
        (0u8..3).prop_map(|tenant| Op::Launch { tenant }),
        (0u8..4).prop_map(|n| Op::Step { n }),
        (1u16..2000).prop_map(|us| Op::Advance { us }),
        (0u8..3, 1u8..5).prop_map(|(tenant, depth)| Op::Requota { tenant, depth }),
    ]
}

/// Feed one op to the daemon as a protocol line.
fn ingest_op(d: &mut Daemon, id: &mut u64, op: &Op) {
    *id += 1;
    let line = match op {
        Op::Send {
            tenant,
            deadline_us,
        } => {
            let t = TENANTS[usize::from(*tenant)];
            let dl = if *deadline_us == 0 {
                String::new()
            } else {
                format!(",\"deadline_us\":{deadline_us}")
            };
            format!(r#"{{"op":"send","tenant":"{t}","id":{id},"count":1,"port":7{dl}}}"#)
        }
        Op::Launch { tenant } => {
            let t = TENANTS[usize::from(*tenant)];
            format!(r#"{{"op":"launch","tenant":"{t}","id":{id},"name":"nf{id}","mem":2}}"#)
        }
        Op::Step { n } => format!(r#"{{"op":"step","id":{id},"n":{n}}}"#),
        Op::Advance { us } => format!(r#"{{"op":"advance","id":{id},"us":{us}}}"#),
        Op::Requota { tenant, depth } => {
            let t = TENANTS[usize::from(*tenant)];
            format!(r#"{{"op":"register","tenant":"{t}","id":{id},"queue_depth":{depth}}}"#)
        }
    };
    d.ingest(&line);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bounded_queues_and_conservation_laws(
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut d = daemon();
        let mut id = 0u64;
        let mut prev_depth = std::collections::HashMap::new();
        for op in &ops {
            ingest_op(&mut d, &mut id, op);
            // Invariants hold after *every* op, not just at the end.
            for t in TENANTS {
                let depth = d.queue_depth(t) as u64;
                if let Some(bound) = d.queue_bound(t) {
                    // A `register` may shrink the bound below the
                    // current depth; the queue must then only drain —
                    // no admission ever *grows* it past the bound.
                    let prev = prev_depth.insert(t, depth).unwrap_or(0);
                    prop_assert!(
                        depth <= u64::from(bound).max(prev),
                        "tenant {t} queue grew to {depth} past bound {bound}"
                    );
                }
                if let Some(s) = d.tenant_stats(t) {
                    prop_assert_eq!(
                        s.submitted, s.admitted + s.shed,
                        "tenant {} lost a submission", t
                    );
                    prop_assert_eq!(
                        s.admitted, s.served + s.expired + s.reclaimed + depth,
                        "tenant {} admission accounting leaks", t
                    );
                    prop_assert!(s.failed <= s.served, "failures are served requests");
                }
            }
        }
        // However the schedule ended, Pass 4 has nothing to object to.
        prop_assert!(d.lint().is_empty(), "lint findings: {:?}", d.lint());
    }

    #[test]
    fn non_faulted_tenants_are_never_starved(
        ops in proptest::collection::vec(op_strategy(), 1..50),
        crash_at in 0usize..50,
    ) {
        let mut d = daemon();
        let mut id = 0u64;
        // The victim gets an NF on a real port, then an injected crash
        // on the next packet freezes it partway through the schedule.
        for line in [
            r#"{"op":"launch","tenant":"t1","id":9001,"name":"victim","mem":2,"port":80}"#,
            r#"{"op":"step","id":9002,"n":1}"#,
        ] {
            d.ingest(line);
        }
        let mut crashed = false;
        for (i, op) in ops.iter().enumerate() {
            if i == crash_at.min(ops.len() - 1) {
                for line in [
                    // Quiesce first: refill the victim's token bucket
                    // and drain every queue, so the crashing send is
                    // guaranteed to be admitted and served next.
                    r#"{"op":"advance","id":9003,"us":5000}"#,
                    r#"{"op":"step","id":9004,"n":16}"#,
                    r#"{"op":"inject-fault","id":9005,"site":"rx","kind":"nf-crash","after":1}"#,
                    r#"{"op":"send","tenant":"t1","id":9006,"count":1,"port":80}"#,
                    r#"{"op":"step","id":9007,"n":1}"#,
                ] {
                    d.ingest(line);
                }
                crashed = true;
            }
            ingest_op(&mut d, &mut id, op);
        }
        prop_assert!(!crashed || d.is_frozen("t1"), "victim must be frozen");

        // Starvation freedom: pumping the daemon dry serves every
        // unfrozen queue to empty, no matter what the schedule left
        // behind; the frozen queue is untouched (its requests are held
        // for `reclaim`, not lost).
        let frozen_depth = d.queue_depth("t1");
        let mut out = Vec::new();
        d.pump_dry(&mut out);
        for t in TENANTS {
            if d.is_frozen(t) {
                prop_assert_eq!(d.queue_depth(t), frozen_depth, "frozen queue must hold");
            } else {
                prop_assert_eq!(d.queue_depth(t), 0, "unfrozen tenant {} starved", t);
            }
        }
        // And the freeze never leaked service: Pass 4 stays clean.
        prop_assert!(d.lint().is_empty(), "lint findings: {:?}", d.lint());
    }
}
