//! Property-based isolation invariants of the S-NIC device model.
//!
//! Random launch/teardown/traffic sequences must never violate:
//! single-owner RAM, management denylisting, NF physical-address
//! blindness, scrub-on-teardown, and crash-free S-NIC bus behaviour.

use proptest::prelude::*;
use rand::SeedableRng;
use snic::core::config::{NicConfig, NicMode};
use snic::core::device::SmartNic;
use snic::core::instr::{LaunchRequest, NfImage};
use snic::crypto::keys::VendorCa;
use snic::mem::guard::Principal;
use snic::types::{ByteSize, CoreId, NfId, SnicError};

fn nic(mode: NicMode) -> SmartNic {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x150);
    SmartNic::new(NicConfig::small(mode), &VendorCa::new(&mut rng))
}

#[derive(Debug, Clone)]
enum Op {
    Launch { core: u8, mem_mib: u8 },
    Teardown { slot: u8 },
    NfWrite { slot: u8, off: u16 },
    ForeignRead { slot: u8 },
    BusFlood { slot: u8, ops: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4, 1u8..12).prop_map(|(core, mem_mib)| Op::Launch { core, mem_mib }),
        (0u8..6).prop_map(|slot| Op::Teardown { slot }),
        (0u8..6, 0u16..4096).prop_map(|(slot, off)| Op::NfWrite { slot, off }),
        (0u8..6).prop_map(|slot| Op::ForeignRead { slot }),
        (0u8..6, 0u32..5_000_000).prop_map(|(slot, ops)| Op::BusFlood { slot, ops }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn snic_invariants_hold_under_random_sequences(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut device = nic(NicMode::Snic);
        let mut live: Vec<(NfId, CoreId, u64)> = Vec::new(); // (id, core, region base)

        for op in ops {
            match op {
                Op::Launch { core, mem_mib } => {
                    let request = LaunchRequest::minimal(
                        CoreId(u16::from(core)),
                        ByteSize::mib(u64::from(mem_mib)),
                        NfImage { code: vec![core; 64], config: vec![] },
                    );
                    match device.nf_launch(request) {
                        Ok(receipt) => {
                            let base = device.record_of(receipt.nf_id).unwrap().region.0;
                            // Invariant: no two live NFs share a region base.
                            prop_assert!(live.iter().all(|&(_, _, b)| b != base));
                            live.push((receipt.nf_id, CoreId(u16::from(core)), base));
                        }
                        Err(SnicError::CoreBusy(c)) => {
                            prop_assert!(live.iter().any(|&(_, lc, _)| lc == c));
                        }
                        Err(SnicError::InvalidConfig(_)) | Err(SnicError::PageOwned { .. }) => {}
                        Err(e) => prop_assert!(false, "unexpected launch error {e:?}"),
                    }
                }
                Op::Teardown { slot } => {
                    if live.is_empty() { continue; }
                    let idx = usize::from(slot) % live.len();
                    let (id, _, base) = live.remove(idx);
                    device.nf_teardown(id).expect("teardown of live NF");
                    // Invariant: scrubbed and management-readable again.
                    let mut buf = [0xffu8; 32];
                    device.mem_read(Principal::Management, base, &mut buf).expect("allowlisted");
                    prop_assert!(buf.iter().all(|&b| b == 0), "teardown must scrub");
                }
                Op::NfWrite { slot, off } => {
                    if live.is_empty() { continue; }
                    let (id, core, _) = live[usize::from(slot) % live.len()];
                    device.nf_write(id, core, u64::from(off), b"x").expect("own-region write");
                }
                Op::ForeignRead { slot } => {
                    if live.len() < 2 { continue; }
                    let a = usize::from(slot) % live.len();
                    let b = (a + 1) % live.len();
                    let (attacker, core, _) = live[a];
                    let (_, _, victim_base) = live[b];
                    // Invariant: physical reads by an NF always fail.
                    let mut buf = [0u8; 8];
                    let err = device
                        .mem_read(Principal::Nf(attacker, core), victim_base, &mut buf)
                        .unwrap_err();
                    prop_assert!(matches!(err, SnicError::Isolation(_)));
                    // And management reads of live regions fail too.
                    let err = device
                        .mem_read(Principal::Management, victim_base, &mut buf)
                        .unwrap_err();
                    prop_assert!(matches!(err, SnicError::Isolation(_)));
                }
                Op::BusFlood { slot, ops } => {
                    if live.is_empty() { continue; }
                    let (id, _, _) = live[usize::from(slot) % live.len()];
                    // Invariant: S-NIC never crashes from a flood.
                    device.bus_flood(id, u64::from(ops)).expect("temporal arbiter");
                    prop_assert!(!device.is_crashed());
                }
            }
        }
    }

    #[test]
    fn nf_writes_never_escape_their_region(
        mem_mib in 2u8..10,
        offsets in proptest::collection::vec(0u64..32 << 20, 1..20),
    ) {
        let mut device = nic(NicMode::Snic);
        let receipt = device
            .nf_launch(LaunchRequest::minimal(
                CoreId(0),
                ByteSize::mib(u64::from(mem_mib)),
                NfImage::default(),
            ))
            .unwrap();
        let region = ByteSize::mib(u64::from(mem_mib)).align_up(2 << 20).bytes();
        for off in offsets {
            let result = device.nf_write(receipt.nf_id, CoreId(0), off, b"y");
            if off < region {
                prop_assert!(result.is_ok(), "in-region write at {off} failed");
            } else {
                prop_assert!(result.is_err(), "out-of-region write at {off} allowed");
            }
        }
    }
}

#[test]
fn commodity_mode_is_permissive_by_contrast() {
    // Sanity inversion: the same foreign read that S-NIC blocks succeeds
    // on commodity hardware.
    let mut device = nic(NicMode::Commodity);
    let a = device
        .nf_launch(LaunchRequest::minimal(
            CoreId(0),
            ByteSize::mib(4),
            NfImage::default(),
        ))
        .unwrap()
        .nf_id;
    let b = device
        .nf_launch(LaunchRequest::minimal(
            CoreId(1),
            ByteSize::mib(4),
            NfImage::default(),
        ))
        .unwrap()
        .nf_id;
    let victim_base = device.record_of(a).unwrap().region.0;
    let mut buf = [0u8; 8];
    device
        .mem_read(Principal::Nf(b, CoreId(1)), victim_base, &mut buf)
        .unwrap();
}
