//! Cross-crate checks of the paper's quantitative claims — the
//! "shape holds" assertions behind EXPERIMENTS.md.

use snic::accel::dpi::{DpiAccel, DpiAccelConfig};
use snic::cost::overhead::{snic_overhead, OverheadConfig};
use snic::cost::tco::{tco_report, TcoInputs};
use snic::mem::planner::PagePolicy;
use snic::nf::dpi::synth_patterns;
use snic::nf::{paper_profile, NfKind};

#[test]
fn silicon_overhead_headline() {
    let o = snic_overhead(&OverheadConfig::default());
    let area = o.total_area_pct();
    let power = o.total_power_pct();
    // Paper: +8.89% area, +11.45% power.
    assert!((area - 8.89).abs() < 0.9, "area {area:.2}%");
    assert!((power - 11.45).abs() < 1.2, "power {power:.2}%");
}

#[test]
fn tco_headline() {
    let r = tco_report(&TcoInputs::default());
    assert!((r.nic_per_core - 38.97).abs() < 0.05);
    assert!((r.host_per_core - 163.56).abs() < 0.1);
    assert!((r.snic_per_core - 42.53).abs() < 0.1);
    assert!((r.advantage_decrease - 0.0837).abs() < 0.002);
}

#[test]
fn table6_tlb_columns() {
    let equal: Vec<u64> = NfKind::ALL
        .iter()
        .map(|&k| paper_profile(k).tlb_entries(&PagePolicy::Equal))
        .collect();
    assert_eq!(equal, vec![11, 28, 25, 10, 37, 183]);
    let flex_high: Vec<u64> = NfKind::ALL
        .iter()
        .map(|&k| paper_profile(k).tlb_entries(&PagePolicy::FlexHigh))
        .collect();
    assert_eq!(flex_high, vec![11, 13, 10, 10, 7, 12]);
}

#[test]
fn figure8_shape() {
    let accel = DpiAccel::new(&synth_patterns(1_000, 1), DpiAccelConfig::default());
    // 64B flat at the frontend cap; 9KB scales ~2x from 16→32 threads.
    let flat64 = (accel.throughput_pps(16, 64) - accel.throughput_pps(48, 64)).abs();
    assert!(flat64 < 1.0);
    let t16 = accel.throughput_pps(16, 9000);
    let t32 = accel.throughput_pps(32, 9000);
    assert!(t32 / t16 > 1.8 && t32 / t16 < 2.2);
}

#[test]
fn figure5_trend_quick() {
    // Degradation grows with cotenancy at 4 MB L2 and the 4-NF point
    // stays small (the paper's 0.93% median / 1.66% p99 neighborhood).
    use snic_bench::{fig5, Scale};
    let scale = Scale {
        flows: 5_000,
        packets: 6_000,
        patterns: 400,
        fw_rules: 200,
        lpm_prefixes: 1_000,
        monitor_ms: 20,
    };
    let rows = fig5::fig5b(&scale, &[2, 8], 4 << 20);
    let means: Vec<f64> = rows
        .iter()
        .map(|(_, pts)| fig5::headline_stats(pts).0)
        .collect();
    assert!(
        means[1] > means[0],
        "8NF {:.3}% vs 2NF {:.3}%",
        means[1],
        means[0]
    );
    assert!(
        means[1] > 0.05,
        "8NF degradation should be visible: {:.3}%",
        means[1]
    );
    assert!(
        means[1] < 25.0,
        "8NF degradation implausibly large: {:.2}%",
        means[1]
    );
    assert!(
        means[0] >= -1.0 && means[0] < 3.0,
        "2NF should be near-zero: {:.3}%",
        means[0]
    );
}

#[test]
fn attack_matrix_inverts_between_modes() {
    use snic::attacks::run_all;
    use snic::core::config::NicMode;
    let commodity: Vec<bool> = run_all(NicMode::Commodity)
        .into_iter()
        .map(|o| o.succeeded)
        .collect();
    let snic: Vec<bool> = run_all(NicMode::Snic)
        .into_iter()
        .map(|o| o.succeeded)
        .collect();
    assert_eq!(commodity, vec![true, true, true, true]);
    assert_eq!(snic, vec![false, false, false, false]);
}

#[test]
fn instruction_latency_claims() {
    use snic_bench::fig6;
    let rows = fig6::run();
    for r in &rows {
        // Digesting dominates launch; scrubbing dominates destroy
        // ("memory scrubbing takes 99.99% of the time").
        assert!(r.launch.sha_digest.0 > r.launch.tlb_setup.0 + r.launch.denylisting.0);
        let scrub_frac = r.teardown.scrub.0 as f64 / r.teardown.total().0 as f64;
        assert!(
            scrub_frac > 0.95,
            "{:?}: scrub fraction {scrub_frac:.4}",
            r.kind
        );
    }
}
